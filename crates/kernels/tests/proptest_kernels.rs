//! Property-style tests for the dense kernels: every optimized kernel must
//! agree with its naive reference (or reconstruct its input) on random
//! shapes, strides and values. Cases are driven by a deterministic
//! seeded parameter sweep (no external test-case framework), so failures
//! reproduce exactly.

use dagfact_kernels::gemm::{gemm, Trans};
use dagfact_kernels::scalar::{Scalar, C64};
use dagfact_kernels::smallblas::{naive_gemm, reconstruct_ldlt, reconstruct_llt, reconstruct_lu};
use dagfact_kernels::trsm::{trsm, Diag, Side, Uplo};
use dagfact_kernels::update::{update_scatter_direct, update_via_buffer, Scatter};
use dagfact_kernels::{getrf, ldlt, potrf};

/// Deterministic parameter source (SplitMix64).
struct Params {
    state: u64,
}

impl Params {
    fn new(case: u64) -> Params {
        Params {
            state: 0xD1F7_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// The `small_val` strategy of the original suite: multiples of 0.02
    /// in [-2, 2].
    fn small_val(&mut self) -> f64 {
        (self.range(0, 201) as i64 - 100) as f64 / 50.0
    }

    fn trans(&mut self) -> Trans {
        match self.next_u64() % 3 {
            0 => Trans::NoTrans,
            1 => Trans::Trans,
            _ => Trans::ConjTrans,
        }
    }

    fn seed(&mut self) -> u64 {
        self.next_u64() % 1_000_000
    }
}

const CASES: u64 = 64;

#[test]
fn gemm_matches_naive() {
    for case in 0..CASES {
        let mut p = Params::new(case);
        let (m, n, k) = (p.range(1, 12), p.range(1, 12), p.range(0, 12));
        let (ta, tb) = (p.trans(), p.trans());
        let (alpha, beta) = (p.small_val(), p.small_val());
        let seed = p.seed();
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 200) as f64 / 100.0 - 1.0
        };
        let (ar, ac) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
        let lda = ar.max(1) + 2;
        let ldb = br.max(1) + 1;
        let ldc = m + 3;
        let a: Vec<f64> = (0..lda * ac.max(1)).map(|_| next()).collect();
        let b: Vec<f64> = (0..ldb * bc.max(1)).map(|_| next()).collect();
        let c0: Vec<f64> = (0..ldc * n).map(|_| next()).collect();
        let mut c = c0.clone();
        let mut cref = c0;
        gemm(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc);
        naive_gemm(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut cref, ldc);
        for (x, y) in c.iter().zip(cref.iter()) {
            assert!((x - y).abs() < 1e-10, "case {case}");
        }
    }
}

#[test]
fn gemm_complex_matches_naive() {
    for case in 0..CASES {
        let mut p = Params::new(1000 + case);
        let (m, n, k) = (p.range(1, 8), p.range(1, 8), p.range(0, 8));
        let (ta, tb) = (p.trans(), p.trans());
        let seed = p.seed();
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            C64::new(
                (s % 200) as f64 / 100.0 - 1.0,
                ((s >> 9) % 200) as f64 / 100.0 - 1.0,
            )
        };
        let (ar, ac) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
        let lda = ar.max(1);
        let ldb = br.max(1);
        let a: Vec<C64> = (0..lda * ac.max(1)).map(|_| next()).collect();
        let b: Vec<C64> = (0..ldb * bc.max(1)).map(|_| next()).collect();
        let c0: Vec<C64> = (0..m * n).map(|_| next()).collect();
        let alpha = C64::new(0.5, -0.25);
        let beta = C64::new(-1.0, 0.75);
        let mut c = c0.clone();
        let mut cref = c0;
        gemm(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, m);
        naive_gemm(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut cref, m);
        for (x, y) in c.iter().zip(cref.iter()) {
            assert!((*x - *y).modulus() < 1e-10, "case {case}");
        }
    }
}

#[test]
fn trsm_inverts_triangular_multiply() {
    for case in 0..CASES {
        let mut p = Params::new(2000 + case);
        let (m, n) = (p.range(1, 10), p.range(1, 10));
        let (lower, left, transposed, unit) = (p.bool(), p.bool(), p.bool(), p.bool());
        let seed = p.seed();
        let side = if left { Side::Left } else { Side::Right };
        let uplo = if lower { Uplo::Lower } else { Uplo::Upper };
        let trans = if transposed { Trans::Trans } else { Trans::NoTrans };
        let diag = if unit { Diag::Unit } else { Diag::NonUnit };
        let k = if left { m } else { n };
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 200) as f64 / 100.0 - 1.0
        };
        // Well-conditioned triangle.
        let mut t = vec![0.0f64; k * k];
        for j in 0..k {
            for i in 0..k {
                let inside = if lower { i >= j } else { i <= j };
                if inside {
                    t[j * k + i] = if i == j { 3.0 + next().abs() } else { 0.25 * next() };
                }
            }
        }
        let x0: Vec<f64> = (0..m * n).map(|_| next()).collect();
        // B = op(T)·X or X·op(T) computed densely, then solve back.
        let mut full = vec![0.0f64; k * k];
        for j in 0..k {
            for i in 0..k {
                let inside = if lower { i >= j } else { i <= j };
                if inside {
                    full[j * k + i] = if i == j && unit { 1.0 } else { t[j * k + i] };
                }
            }
        }
        let opt = if transposed {
            let mut tr = vec![0.0; k * k];
            for j in 0..k {
                for i in 0..k {
                    tr[j * k + i] = full[i * k + j];
                }
            }
            tr
        } else {
            full
        };
        let mut b = vec![0.0f64; m * n];
        match side {
            Side::Left => naive_gemm(
                Trans::NoTrans, Trans::NoTrans, m, n, m, 1.0, &opt, m, &x0, m, 0.0, &mut b, m,
            ),
            Side::Right => naive_gemm(
                Trans::NoTrans, Trans::NoTrans, m, n, n, 1.0, &x0, m, &opt, n, 0.0, &mut b, m,
            ),
        }
        trsm(side, uplo, trans, diag, m, n, &t, k, &mut b, m);
        for (x, y) in b.iter().zip(x0.iter()) {
            assert!(
                (x - y).abs() < 1e-8,
                "case {case}: {side:?} {uplo:?} {trans:?} {diag:?}"
            );
        }
    }
}

#[test]
fn potrf_roundtrip_random_spd() {
    for case in 0..CASES {
        let mut p = Params::new(3000 + case);
        let n = p.range(1, 24);
        let seed = p.seed();
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 200) as f64 / 100.0 - 1.0
        };
        let b: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let mut a = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += b[k * n + i] * b[k * n + j];
                }
                a[j * n + i] = acc + if i == j { n as f64 } else { 0.0 };
            }
        }
        let mut l = a.clone();
        potrf(n, &mut l, n).unwrap();
        let r = reconstruct_llt(n, &l, n);
        for j in 0..n {
            for i in j..n {
                assert!((r[j * n + i] - a[j * n + i]).abs() < 1e-8 * n as f64, "case {case}");
            }
        }
    }
}

#[test]
fn ldlt_roundtrip_random_indefinite() {
    for case in 0..CASES {
        let mut p = Params::new(4000 + case);
        let n = p.range(1, 20);
        let seed = p.seed();
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 200) as f64 / 100.0 - 1.0
        };
        let mut a = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..=j {
                let v = next() * 0.5;
                a[j * n + i] = v;
                a[i * n + j] = v;
            }
            a[j * n + j] = if j % 3 == 0 { -(n as f64) - 2.0 } else { n as f64 + 2.0 };
        }
        let a0 = a.clone();
        let mut d = vec![0.0f64; n];
        let repaired = ldlt(n, &mut a, n, &mut d, 0.0).unwrap();
        assert_eq!(repaired, 0, "case {case}");
        let r = reconstruct_ldlt(n, &a, n, &d);
        for j in 0..n {
            for i in j..n {
                assert!((r[j * n + i] - a0[j * n + i]).abs() < 1e-7 * n as f64, "case {case}");
            }
        }
    }
}

#[test]
fn getrf_roundtrip_random_dominant() {
    for case in 0..CASES {
        let mut p = Params::new(5000 + case);
        let n = p.range(1, 20);
        let seed = p.seed();
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 200) as f64 / 100.0 - 1.0
        };
        let mut a: Vec<f64> = (0..n * n).map(|_| next()).collect();
        for j in 0..n {
            a[j * n + j] = n as f64 + 1.5;
        }
        let a0 = a.clone();
        getrf(n, &mut a, n, 0.0).unwrap();
        let r = reconstruct_lu(n, &a, n);
        for (x, y) in r.iter().zip(a0.iter()) {
            assert!((x - y).abs() < 1e-8 * n as f64, "case {case}");
        }
    }
}

#[test]
fn update_variants_always_agree() {
    for case in 0..CASES {
        let mut p = Params::new(6000 + case);
        let (m, n, k) = (p.range(1, 10), p.range(1, 8), p.range(1, 8));
        let with_d = p.bool();
        let seed = p.seed();
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 200) as f64 / 100.0 - 1.0
        };
        let a1: Vec<f64> = (0..k * m).map(|_| next()).collect();
        let a2: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let d: Vec<f64> = (0..k).map(|_| next() + 2.0).collect();
        let dref = with_d.then_some(d.as_slice());
        // Random strictly-increasing row map into a taller panel.
        let ldc = m + 5;
        let mut row_map: Vec<usize> = (0..ldc).collect();
        // Simple deterministic shuffle-select of m rows.
        for i in 0..ldc {
            let j = (seed as usize + i * 7) % ldc;
            row_map.swap(i, j);
        }
        row_map.truncate(m);
        row_map.sort_unstable();
        let c0: Vec<f64> = (0..ldc * n).map(|_| next()).collect();
        let scatter = Scatter { row_map: &row_map, col_offset: 0 };
        let mut c1 = c0.clone();
        let mut work = Vec::new();
        update_via_buffer(m, n, k, -1.0, &a1, m, &a2, n, dref, &mut work, &mut c1, ldc, scatter);
        let mut c2 = c0;
        update_scatter_direct(m, n, k, -1.0, &a1, m, &a2, n, dref, &mut c2, ldc, scatter);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() < 1e-10, "case {case}");
        }
    }
}
