//! Differential fuzz: the SIMD tier against the portable kernels.
//!
//! The dispatched [`dagfact_kernels::gemm`] front door is compared against
//! [`dagfact_kernels::gemm_portable`] over a SplitMix64-seeded sweep of all
//! `Trans` combinations, the shape set `{0,1,2,3,7,8,9,31,32,33}` for each
//! of `m,n,k` (crossing register-tile edges 7/8/9 and cache-ish 31/32/33),
//! odd leading-dimension strides, and `alpha/beta ∈ {0,1,-1,0.5}`.
//!
//! Tolerance: where the dispatch *declines* (transposed-A arms, tiny `m`,
//! scalar hosts) both calls run the identical code path and must agree
//! **bitwise**. Where the AVX2 tier runs, the only licensed difference is
//! FMA contraction with the portable accumulation order preserved, so the
//! error is bounded by a few ulp *of the accumulated magnitude*: we assert
//! `|Δ| ≤ 4·ulp(|y|)` or `|Δ| ≤ 4ε·(|αβ|-scaled magnitude bound)` —
//! far below any indexing or tile-edge bug, which shows up at the
//! magnitude of the operands themselves.

use dagfact_kernels::gemm::{gemm, gemm_portable, Trans};
use dagfact_kernels::update::{
    pack_b, update_scatter_direct, update_scatter_packed, update_via_buffer,
    update_via_buffer_packed, Scatter,
};

/// SplitMix64 — the seeded generator of the sweep.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in (-1, 1), never exactly zero (keeps the skip-zero
    /// shortcuts of the portable kernel out of play).
    fn unit(&mut self) -> f64 {
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        let s = if self.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        s * (v * 0.999 + 0.001)
    }

    fn fill(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.unit()).collect()
    }
}

const SIZES: [usize; 10] = [0, 1, 2, 3, 7, 8, 9, 31, 32, 33];
const COEFFS: [f64; 4] = [0.0, 1.0, -1.0, 0.5];

/// `|x - y|` within 4 ulp of either value, or within a 4ε-scaled bound of
/// the accumulated magnitude `mag` (covers catastrophic cancellation,
/// where value-relative ulp comparison is meaningless).
fn close(x: f64, y: f64, mag: f64) -> bool {
    if x == y {
        return true;
    }
    let diff = (x - y).abs();
    let ulp = f64::EPSILON * x.abs().max(y.abs());
    diff <= 4.0 * ulp || diff <= 4.0 * f64::EPSILON * mag
}

/// Magnitude bound of one GEMM output element: `|α|·k·max|a|·max|b| +
/// |β|·max|c₀|`.
fn mag_bound(k: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c0: &[f64]) -> f64 {
    let amax = a.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let bmax = b.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let cmax = c0.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    alpha.abs() * k as f64 * amax * bmax + beta.abs() * cmax
}

#[test]
fn gemm_simd_matches_portable_across_shapes_trans_and_strides() {
    let trans = [Trans::NoTrans, Trans::Trans, Trans::ConjTrans];
    let mut rng = SplitMix64(0xDA6F_AC75_9E37_79B9);
    let mut coeff_ix = 0usize;
    let mut cases = 0usize;
    for &ta in &trans {
        for &tb in &trans {
            for &m in &SIZES {
                for &n in &SIZES {
                    for &k in &SIZES {
                        // Round-robin the coefficient grid so every
                        // (α, β) pair recurs many times across shapes.
                        let alpha = COEFFS[coeff_ix % 4];
                        let beta = COEFFS[(coeff_ix / 4) % 4];
                        coeff_ix += 1;
                        // Odd strides beyond the minimal leading dimension.
                        let pad = 1 + 2 * ((coeff_ix / 16) % 3); // 1, 3, 5
                        let (ar, ac) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
                        let (br, bc) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
                        let lda = ar + pad;
                        let ldb = br + pad;
                        let ldc = m + pad;
                        let a = rng.fill(lda * ac.max(1));
                        let b = rng.fill(ldb * bc.max(1));
                        let c0 = rng.fill(ldc * n.max(1));
                        let mut c_simd = c0.clone();
                        let mut c_port = c0.clone();
                        gemm(
                            ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_simd, ldc,
                        );
                        gemm_portable(
                            ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_port, ldc,
                        );
                        let mag = mag_bound(k, alpha, &a, &b, beta, &c0);
                        let shared_path = dagfact_kernels::isa() != dagfact_kernels::Isa::Avx2
                            || ta != Trans::NoTrans
                            || m < dagfact_kernels::simd::MR;
                        for (i, (&x, &y)) in c_simd.iter().zip(&c_port).enumerate() {
                            if shared_path {
                                assert!(
                                    x == y || (x.is_nan() && y.is_nan()),
                                    "shared path must be bitwise equal: \
                                     {ta:?}x{tb:?} m={m} n={n} k={k} @{i}: {x:?} vs {y:?}"
                                );
                            } else {
                                assert!(
                                    close(x, y, mag),
                                    "SIMD drift beyond bound: {ta:?}x{tb:?} m={m} n={n} k={k} \
                                     α={alpha} β={beta} @{i}: {x:?} vs {y:?} (mag {mag:e})"
                                );
                            }
                        }
                        cases += 1;
                    }
                }
            }
        }
    }
    assert_eq!(cases, 9 * SIZES.len().pow(3));
}

/// Build a strictly-increasing gappy row map of length `m` into `rows`
/// storage rows.
fn gappy_row_map(rng: &mut SplitMix64, m: usize, rows: usize) -> Vec<usize> {
    assert!(rows > 2 * m);
    let mut map = Vec::with_capacity(m);
    let mut next = 0usize;
    let slack = rows - 2 * m;
    for i in 0..m {
        next += (rng.next_u64() as usize % (slack / m.max(1) + 2)).min(2) + (i > 0) as usize;
        map.push(next.min(rows - (m - i)));
        next = *map.last().unwrap();
    }
    map
}

#[test]
fn update_scatter_direct_matches_buffer_variant_over_sweep() {
    let mut rng = SplitMix64(0x5EED_CAFE);
    for &m in &[1usize, 7, 8, 9, 16, 33] {
        for &n in &[1usize, 3, 4, 5, 32] {
            for &k in &[1usize, 2, 8, 31] {
                for d_present in [false, true] {
                    let lda1 = m + 1;
                    let lda2 = n + 3;
                    let a1 = rng.fill(lda1 * k);
                    let a2 = rng.fill(lda2 * k);
                    let d = rng.fill(k);
                    let dref = d_present.then_some(&d[..]);
                    let rows = 2 * m + 3;
                    let row_map = gappy_row_map(&mut rng, m, rows);
                    let ldc = rows;
                    let ncols = n + 2;
                    let c0 = rng.fill(ldc * ncols);
                    let scatter = Scatter { row_map: &row_map, col_offset: 1 };
                    let mut c_dir = c0.clone();
                    update_scatter_direct(
                        m, n, k, -1.0, &a1, lda1, &a2, lda2, dref, &mut c_dir, ldc, scatter,
                    );
                    let mut c_buf = c0.clone();
                    let mut work = Vec::new();
                    update_via_buffer(
                        m, n, k, -1.0, &a1, lda1, &a2, lda2, dref, &mut work, &mut c_buf, ldc,
                        scatter,
                    );
                    let mag = mag_bound(k, 1.0, &a1, &a2, 1.0, &c0)
                        * if d_present { 2.0 } else { 1.0 };
                    for (i, (&x, &y)) in c_dir.iter().zip(&c_buf).enumerate() {
                        assert!(
                            close(x, y, mag),
                            "direct vs buffer: m={m} n={n} k={k} d={d_present} @{i}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn packed_variants_match_unpacked_over_sweep() {
    let mut rng = SplitMix64(0xBADC_0FFE);
    for &m in &[1usize, 8, 9, 33] {
        for &n in &[1usize, 4, 5, 17] {
            for &k in &[1usize, 8, 31] {
                for d_present in [false, true] {
                    let lda1 = m + 3;
                    let lda2 = n + 1;
                    let a1 = rng.fill(lda1 * k);
                    let a2 = rng.fill(lda2 * k);
                    let d = rng.fill(k);
                    let dref = d_present.then_some(&d[..]);
                    let mut pack = vec![0.0f64; k * n];
                    pack_b(n, k, dref, &a2, lda2, &mut pack);
                    let rows = 2 * m + 2;
                    let row_map = gappy_row_map(&mut rng, m, rows);
                    let ldc = rows;
                    let c0 = rng.fill(ldc * (n + 1));
                    let scatter = Scatter { row_map: &row_map, col_offset: 0 };
                    let mag = mag_bound(k, 1.0, &a1, &a2, 1.0, &c0)
                        * if d_present { 2.0 } else { 1.0 };

                    // Buffered: packed vs unpacked.
                    let mut c_ref = c0.clone();
                    let mut work = Vec::new();
                    update_via_buffer(
                        m, n, k, -0.5, &a1, lda1, &a2, lda2, dref, &mut work, &mut c_ref, ldc,
                        scatter,
                    );
                    let mut c_pk = c0.clone();
                    let mut work2 = Vec::new();
                    update_via_buffer_packed(
                        m, n, k, -0.5, &a1, lda1, &pack, &mut work2, &mut c_pk, ldc, scatter,
                    );
                    for (i, (&x, &y)) in c_pk.iter().zip(&c_ref).enumerate() {
                        assert!(
                            close(x, y, mag),
                            "buffered packed: m={m} n={n} k={k} d={d_present} @{i}: {x} vs {y}"
                        );
                    }

                    // Direct-scatter: packed vs unpacked.
                    let mut c_dref = c0.clone();
                    update_scatter_direct(
                        m, n, k, -0.5, &a1, lda1, &a2, lda2, dref, &mut c_dref, ldc, scatter,
                    );
                    let mut c_dpk = c0.clone();
                    update_scatter_packed(
                        m, n, k, -0.5, &a1, lda1, &pack, &mut c_dpk, ldc, scatter,
                    );
                    for (i, (&x, &y)) in c_dpk.iter().zip(&c_dref).enumerate() {
                        assert!(
                            close(x, y, mag),
                            "scatter packed: m={m} n={n} k={k} d={d_present} @{i}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shape-contract regressions (the PR 9 bug burn-down)
// ---------------------------------------------------------------------

/// Pre-fix, a short `d` silently left stale pooled-workspace contents in
/// the tail of the D·Lᵀ staging block (`d.iter().take(k)` stops early);
/// the GEMM then consumed garbage. Post-fix it must refuse up front —
/// this test *fails* on the pre-fix code, which completes without
/// panicking.
#[test]
#[should_panic(expected = "update_via_buffer: d.len()")]
fn update_via_buffer_rejects_short_d() {
    let (m, n, k) = (4, 3, 5);
    let a1 = vec![1.0f64; m * k];
    let a2 = vec![1.0f64; n * k];
    let d_short = vec![2.0f64; k - 2];
    let row_map = [0usize, 1, 2, 3];
    // Poisoned pooled workspace: pre-fix these NaNs flowed into C.
    let mut work = vec![f64::NAN; m * n + k * n];
    let mut c = vec![0.0f64; 8 * n];
    update_via_buffer(
        m,
        n,
        k,
        -1.0,
        &a1,
        m,
        &a2,
        n,
        Some(&d_short),
        &mut work,
        &mut c,
        8,
        Scatter { row_map: &row_map, col_offset: 0 },
    );
}

/// Same audit on the direct-scatter variant: a short `d` would have
/// index-panicked mid-scatter *after* partially mutating C; it must fail
/// before the first write.
#[test]
#[should_panic(expected = "update_scatter_direct: d.len()")]
fn update_scatter_direct_rejects_short_d() {
    let (m, n, k) = (4, 2, 6);
    let a1 = vec![1.0f64; m * k];
    let a2 = vec![1.0f64; n * k];
    let d_short = vec![2.0f64; 1];
    let row_map = [0usize, 2, 3, 5];
    let mut c = vec![0.0f64; 6 * n];
    update_scatter_direct(
        m,
        n,
        k,
        -1.0,
        &a1,
        m,
        &a2,
        n,
        Some(&d_short),
        &mut c,
        6,
        Scatter { row_map: &row_map, col_offset: 0 },
    );
}

/// The `c.len()` contract is a real assert now: an undersized `C` with a
/// large `ldc` must fail before any element is written, not slice-panic
/// mid-update in release.
#[test]
#[should_panic(expected = "gemm: C buffer too small")]
fn gemm_rejects_undersized_c_before_writing() {
    let a = vec![1.0f64; 4];
    let b = vec![1.0f64; 4];
    // m=2, n=2 with ldc=100: needs 102 elements, only 4 supplied.
    let mut c = vec![0.0f64; 4];
    gemm(
        Trans::NoTrans,
        Trans::Trans,
        2,
        2,
        2,
        1.0,
        &a,
        2,
        &b,
        2,
        0.0,
        &mut c,
        100,
    );
}

/// Row-map / m mismatches fail up front on both variants.
#[test]
#[should_panic(expected = "row_map/m mismatch")]
fn update_scatter_direct_rejects_short_row_map() {
    let (m, n, k) = (4, 2, 2);
    let a1 = vec![1.0f64; m * k];
    let a2 = vec![1.0f64; n * k];
    let row_map = [0usize, 1]; // too short for m = 4
    let mut c = vec![0.0f64; 8 * n];
    update_scatter_direct(
        m,
        n,
        k,
        -1.0,
        &a1,
        m,
        &a2,
        n,
        None,
        &mut c,
        8,
        Scatter { row_map: &row_map, col_offset: 0 },
    );
}
