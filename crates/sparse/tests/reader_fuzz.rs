//! Mutation-fuzz and property tests for the untrusted-input readers
//! (Matrix Market and Harwell-Boeing): on *any* byte stream the readers
//! must return `Ok` or a typed [`SparseError`] — never panic, never
//! abort on an absurd declared size. Cases are driven by a deterministic
//! SplitMix64 sweep (the repo's no-external-framework property idiom),
//! so failures reproduce exactly from the printed seed.

use dagfact_sparse::hb::read_harwell_boeing;
use dagfact_sparse::mm::read_matrix_market;
use dagfact_sparse::CscMatrix;

/// Deterministic parameter source (SplitMix64).
struct Params {
    state: u64,
}

impl Params {
    fn new(case: u64) -> Params {
        Params {
            state: 0xF022_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo).max(1) as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Seed corpus: one valid exemplar per dialect
// ---------------------------------------------------------------------

const MM_CORPUS: &[&str] = &[
    "%%MatrixMarket matrix coordinate real general\n% c\n3 3 4\n1 1 2.0\n2 1 -1.0\n3 2 -1.5\n3 3 2.0\n",
    "%%MatrixMarket matrix coordinate real symmetric\n3 3 4\n1 1 2.0\n2 1 -1.0\n3 2 -1.0\n3 3 2.0\n",
    "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n",
    "%%MatrixMarket matrix coordinate complex symmetric\n2 2 2\n1 1 1.0 0.5\n2 1 -1.0 0.25\n",
    "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 2 7\n",
];

const HB_CORPUS: &[&str] = &[
    "title                                                                   KEY1
             3             1             1             1             0
RSA                        3             3             5             0
(16I5)          (16I5)          (5E16.8)
    1    3    5    6
    1    2    2    3    3
  2.00000000E+00 -1.00000000E+00  2.00000000E+00 -1.00000000E+00  2.00000000E+00
",
    "title                                                                   KEY2
             3             1             1             1
RUA                        2             2             3             0
(16I5)          (16I5)          (4E20.12)
    1    3    4
    1    2    2
  4.000000000000E+00 -1.000000000000E+00  3.000000000000E+00
",
    "title                                                                   KEY3
             2             1             1             0             0
PSA                        2             2             2             0
(16I5)          (16I5)
    1    2    3
    1    2
",
];

/// Tokens a fuzzer loves: overflow bait, signs, NaN, empty.
const EVIL_TOKENS: &[&str] = &[
    "18446744073709551615",
    "99999999999999999999999999",
    "-1",
    "0",
    "1e308",
    "NaN",
    "inf",
    "",
    "(",
    "%%MatrixMarket",
    "RSA",
    "1.0.0",
    "0x10",
];

/// Apply one random mutation to the text.
fn mutate(p: &mut Params, text: &mut Vec<u8>) {
    if text.is_empty() {
        text.extend_from_slice(b"1 1 1\n");
        return;
    }
    match p.next_u64() % 6 {
        // Flip a random byte to a random printable (or newline).
        0 => {
            let pos = p.range(0, text.len());
            text[pos] = match p.next_u64() % 4 {
                0 => b'\n',
                1 => b' ',
                2 => b'0' + (p.next_u64() % 10) as u8,
                _ => 0x21 + (p.next_u64() % 94) as u8,
            };
        }
        // Truncate at a random point.
        1 => {
            let pos = p.range(0, text.len());
            text.truncate(pos);
        }
        // Delete a random line.
        2 => {
            let lines: Vec<&[u8]> = text.split(|&b| b == b'\n').collect();
            if lines.len() > 1 {
                let skip = p.range(0, lines.len());
                let mut out = Vec::with_capacity(text.len());
                for (i, l) in lines.iter().enumerate() {
                    if i != skip {
                        out.extend_from_slice(l);
                        out.push(b'\n');
                    }
                }
                *text = out;
            }
        }
        // Duplicate a random line.
        3 => {
            let lines: Vec<Vec<u8>> =
                text.split(|&b| b == b'\n').map(|l| l.to_vec()).collect();
            if !lines.is_empty() {
                let dup = p.range(0, lines.len());
                let mut out = Vec::with_capacity(text.len() * 2);
                for (i, l) in lines.iter().enumerate() {
                    out.extend_from_slice(l);
                    out.push(b'\n');
                    if i == dup {
                        out.extend_from_slice(l);
                        out.push(b'\n');
                    }
                }
                *text = out;
            }
        }
        // Replace a whitespace-delimited token with an evil one.
        4 => {
            let s = String::from_utf8_lossy(text).into_owned();
            let tokens: Vec<&str> = s.split(' ').collect();
            if !tokens.is_empty() {
                let idx = p.range(0, tokens.len());
                let evil = EVIL_TOKENS[p.range(0, EVIL_TOKENS.len())];
                let mut out: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
                out[idx] = evil.to_string();
                *text = out.join(" ").into_bytes();
            }
        }
        // Insert random bytes (possibly invalid UTF-8).
        _ => {
            let pos = p.range(0, text.len());
            let n = p.range(1, 8);
            let junk: Vec<u8> = (0..n).map(|_| (p.next_u64() & 0xFF) as u8).collect();
            text.splice(pos..pos, junk);
        }
    }
}

fn assert_no_panic(kind: &str, case: u64, input: &[u8], f: impl FnOnce() + std::panic::UnwindSafe) {
    if std::panic::catch_unwind(f).is_err() {
        panic!(
            "{kind} reader panicked on fuzz case {case}; input:\n{}",
            String::from_utf8_lossy(input)
        );
    }
}

#[test]
fn matrix_market_reader_never_panics_on_mutated_input() {
    for case in 0..4000u64 {
        let mut p = Params::new(case);
        let mut text = MM_CORPUS[p.range(0, MM_CORPUS.len())].as_bytes().to_vec();
        for _ in 0..p.range(1, 5) {
            mutate(&mut p, &mut text);
        }
        let input = text.clone();
        assert_no_panic("matrix market", case, &input, move || {
            let _ = read_matrix_market::<f64, _>(&text[..]);
        });
    }
}

#[test]
fn harwell_boeing_reader_never_panics_on_mutated_input() {
    for case in 0..4000u64 {
        let mut p = Params::new(case ^ 0x4853_4253);
        let mut text = HB_CORPUS[p.range(0, HB_CORPUS.len())].as_bytes().to_vec();
        for _ in 0..p.range(1, 5) {
            mutate(&mut p, &mut text);
        }
        let input = text.clone();
        assert_no_panic("harwell-boeing", case, &input, move || {
            let _ = read_harwell_boeing::<f64, _>(&text[..]);
        });
    }
}

#[test]
fn successful_parses_of_mutated_input_are_structurally_sound() {
    // When a mutated file still parses, the result must be a coherent
    // matrix: canonical column order, in-bounds indices, finite-or-not
    // values but never an inconsistent structure.
    let mut parsed = 0usize;
    for case in 0..4000u64 {
        let mut p = Params::new(case ^ 0x5052_4F50);
        let mut text = MM_CORPUS[p.range(0, MM_CORPUS.len())].as_bytes().to_vec();
        mutate(&mut p, &mut text);
        if let Ok(a) = read_matrix_market::<f64, _>(&text[..]) {
            parsed += 1;
            for j in 0..a.ncols() {
                let rows = a.col_rows(j);
                assert!(rows.windows(2).all(|w| w[0] < w[1]), "case {case}: column {j} not strictly sorted");
                assert!(rows.iter().all(|&i| i < a.nrows()), "case {case}: row index out of bounds");
            }
        }
    }
    // The corpus is valid and single mutations often hit comments or
    // values, so a healthy fraction must still parse.
    assert!(parsed > 100, "only {parsed} cases parsed — corpus or mutator broken");
}

// ---------------------------------------------------------------------
// Targeted adversarial headers (the overflow/absurd-size corner cases)
// ---------------------------------------------------------------------

#[test]
fn absurd_declared_sizes_are_typed_errors() {
    let huge_nnz_sym = format!(
        "%%MatrixMarket matrix coordinate real symmetric\n3 3 {}\n1 1 1.0\n",
        usize::MAX
    );
    let huge_cols = format!(
        "%%MatrixMarket matrix coordinate real general\n1 {} 1\n1 1 1.0\n",
        usize::MAX
    );
    let huge_reserve = "%%MatrixMarket matrix coordinate real general\n\
                        1000000 1000000 123456789012345678\n1 1 1.0\n";
    for text in [huge_nnz_sym.as_str(), huge_cols.as_str(), huge_reserve] {
        match read_matrix_market::<f64, _>(text.as_bytes()) {
            Err(_) => {}
            Ok(_) => panic!("absurd header must not parse: {text:?}"),
        }
    }
    let huge_hb = format!(
        "t\n 3 1 1 1\nRSA {} {} {} 0\n(16I5) (16I5) (5E16.8)\n    1\n    1\n  1.0\n",
        usize::MAX,
        usize::MAX,
        usize::MAX
    );
    assert!(read_harwell_boeing::<f64, _>(huge_hb.as_bytes()).is_err());
}

#[test]
fn declared_entry_count_is_enforced_both_ways() {
    let extra = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n";
    assert!(read_matrix_market::<f64, _>(extra.as_bytes()).is_err());
    let missing = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
    assert!(read_matrix_market::<f64, _>(missing.as_bytes()).is_err());
}

#[test]
fn readers_agree_on_the_same_matrix() {
    // The HB exemplar is the 3-point Laplacian; its Matrix Market
    // transcription must produce the identical CscMatrix.
    let hb: CscMatrix<f64> = read_harwell_boeing(HB_CORPUS[0].as_bytes()).unwrap();
    let mm_text = "%%MatrixMarket matrix coordinate real symmetric\n\
                   3 3 5\n1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 2 -1.0\n3 3 2.0\n";
    let mm: CscMatrix<f64> = read_matrix_market(mm_text.as_bytes()).unwrap();
    assert_eq!(hb, mm);
}
