fn main() {
    let a = dagfact_sparse::gen::grid_laplacian_3d(10, 10, 10);
    dagfact_sparse::mm::write_matrix_market_file(&a, "/tmp/demo.mtx").unwrap();
}
