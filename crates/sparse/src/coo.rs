//! Coordinate-format (triplet) assembly.
//!
//! Finite-element style assembly pushes `(row, col, value)` contributions in
//! arbitrary order with duplicates; [`TripletBuilder::build`] sorts, sums
//! duplicates and produces a canonical [`CscMatrix`].

use crate::csc::CscMatrix;
use crate::pattern::SparsityPattern;
use crate::SparseError;
use dagfact_kernels::Scalar;

/// Accumulates `(row, col, value)` triplets and assembles a [`CscMatrix`].
#[derive(Debug, Clone)]
pub struct TripletBuilder<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> TripletBuilder<T> {
    /// New empty builder for an `nrows×ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletBuilder {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// New builder with pre-reserved capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        TripletBuilder {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Fallible variant of [`TripletBuilder::with_capacity`] for
    /// untrusted inputs (file readers): an absurd declared entry count
    /// becomes a typed error instead of an allocation abort.
    pub fn try_with_capacity(
        nrows: usize,
        ncols: usize,
        cap: usize,
    ) -> Result<Self, SparseError> {
        let mut entries = Vec::new();
        entries.try_reserve_exact(cap).map_err(|_| {
            SparseError::Parse(format!("cannot reserve {cap} matrix entries"))
        })?;
        Ok(TripletBuilder {
            nrows,
            ncols,
            entries,
        })
    }

    /// Add a contribution; duplicates are summed at build time. Panics on
    /// out-of-bounds indices.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet ({row},{col}) outside {}x{}",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, value));
    }

    /// Fallible [`TripletBuilder::push`]: out-of-bounds indices become a
    /// typed error instead of a panic. For readers of untrusted files.
    pub fn try_push(&mut self, row: usize, col: usize, value: T) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.entries.try_reserve(1).map_err(|_| {
            SparseError::Parse("out of memory growing the triplet buffer".into())
        })?;
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Number of raw (pre-merge) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no triplet has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assemble into CSC form, summing duplicate coordinates. Entries whose
    /// sum is exactly zero are *kept* (explicit zeros preserve the
    /// structural information the analysis relies on).
    pub fn build(self) -> CscMatrix<T> {
        self.try_build().expect("triplet assembly failed")
    }

    /// Fallible [`TripletBuilder::build`]: dimension-count overflow or a
    /// failed allocation becomes a typed error instead of a panic/abort.
    pub fn try_build(mut self) -> Result<CscMatrix<T>, SparseError> {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| (c, r));
        let ptr_len = self.ncols.checked_add(1).ok_or_else(|| {
            SparseError::Parse(format!("column count {} overflows", self.ncols))
        })?;
        let mut colptr = Vec::new();
        colptr.try_reserve_exact(ptr_len).map_err(|_| {
            SparseError::Parse(format!("cannot reserve {ptr_len} column pointers"))
        })?;
        colptr.push(0usize);
        let mut rowind: Vec<usize> = Vec::new();
        let mut values: Vec<T> = Vec::new();
        rowind
            .try_reserve_exact(self.entries.len())
            .and_then(|()| values.try_reserve_exact(self.entries.len()))
            .map_err(|_| {
                SparseError::Parse(format!(
                    "cannot reserve {} assembled entries",
                    self.entries.len()
                ))
            })?;
        let mut cur_col = 0usize;
        for (r, c, v) in self.entries {
            while cur_col < c {
                colptr.push(rowind.len());
                cur_col += 1;
            }
            // Merge with the previous entry when it has the same
            // coordinates (sorting made duplicates adjacent); the bound
            // check keeps merges within the current column.
            if rowind.len() > *colptr.last().unwrap() && *rowind.last().unwrap() == r {
                *values.last_mut().unwrap() += v;
            } else {
                rowind.push(r);
                values.push(v);
            }
        }
        while cur_col < self.ncols {
            colptr.push(rowind.len());
            cur_col += 1;
        }
        let pattern = SparsityPattern::from_csc(self.nrows, self.ncols, colptr, rowind);
        Ok(CscMatrix::new(pattern, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(2, 1, 5.0);
        b.push(0, 0, 2.5);
        b.push(2, 1, -5.0);
        let a = b.build();
        assert_eq!(a.get(0, 0), 3.5);
        // Cancelling duplicates keep an explicit zero entry.
        assert_eq!(a.get(2, 1), 0.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn arbitrary_order_assembly() {
        let mut b = TripletBuilder::new(4, 4);
        let entries = [(3usize, 0usize, 1.0), (0, 3, 2.0), (1, 1, 3.0), (0, 0, 4.0), (2, 3, 5.0)];
        for &(r, c, v) in entries.iter().rev() {
            b.push(r, c, v);
        }
        let a = b.build();
        for &(r, c, v) in &entries {
            assert_eq!(a.get(r, c), v, "({r},{c})");
        }
        assert_eq!(a.nnz(), entries.len());
        // Canonical ordering inside columns.
        assert_eq!(a.col_rows(3), &[0, 2]);
    }

    #[test]
    fn empty_columns_are_handled() {
        let mut b = TripletBuilder::new(3, 5);
        b.push(1, 4, 9.0);
        let a = b.build();
        assert_eq!(a.ncols(), 5);
        for j in 0..4 {
            assert!(a.col_rows(j).is_empty());
        }
        assert_eq!(a.get(1, 4), 9.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_panics() {
        let mut b = TripletBuilder::<f64>::new(2, 2);
        b.push(0, 2, 1.0);
    }
}
