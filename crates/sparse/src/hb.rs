//! Minimal Harwell-Boeing reader.
//!
//! The University of Florida collection the paper draws its nine test
//! matrices from is historically distributed in Harwell-Boeing (`.rua`,
//! `.rsa`, `.psa`) form. This module reads the assembled point dialect:
//! real or pattern values, symmetric or unsymmetric, fixed-width FORTRAN
//! data cards. Elemental matrices, right-hand sides and complex values
//! are out of scope and rejected with a typed error.
//!
//! Every failure mode on untrusted input — truncated cards, malformed
//! FORTRAN format strings, out-of-range indices, non-monotone column
//! pointers, overflowing header counts — is a [`SparseError`], never a
//! panic: the reader is exercised by the mutation-fuzz suite in
//! `tests/reader_fuzz.rs`.

use crate::coo::TripletBuilder;
use crate::csc::CscMatrix;
use crate::SparseError;
use dagfact_kernels::Scalar;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// A parsed FORTRAN edit descriptor like `(16I8)` or `(3E26.18)`:
/// `per_line` fields of `width` characters each.
struct CardFormat {
    per_line: usize,
    width: usize,
}

fn parse_fortran_format(spec: &str) -> Result<CardFormat, SparseError> {
    let bad = || SparseError::Parse(format!("bad FORTRAN format {spec:?}"));
    let inner = spec
        .trim()
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(bad)?;
    // Strip scale factors like the `1P` in `(1P,3E26.18)` or `(1P3E26.18)`.
    let inner = match inner.find(['I', 'i', 'E', 'e', 'D', 'd', 'F', 'f', 'G', 'g']) {
        Some(pos) => {
            let head = &inner[..pos];
            let repeat_start = head.rfind(|c: char| !c.is_ascii_digit()).map_or(0, |p| p + 1);
            &inner[repeat_start..]
        }
        None => return Err(bad()),
    };
    let letter_pos = inner
        .find(|c: char| c.is_ascii_alphabetic())
        .ok_or_else(bad)?;
    let per_line: usize = if letter_pos == 0 {
        1
    } else {
        inner[..letter_pos].parse().map_err(|_| bad())?
    };
    let rest = &inner[letter_pos + 1..];
    let width_digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    let width: usize = width_digits.parse().map_err(|_| bad())?;
    if per_line == 0 || width == 0 {
        return Err(bad());
    }
    Ok(CardFormat { per_line, width })
}

/// Split one fixed-width card line into trimmed, non-empty fields.
fn card_fields<'l>(line: &'l str, fmt: &CardFormat, out: &mut Vec<&'l str>) {
    out.clear();
    let bytes = line.as_bytes();
    for f in 0..fmt.per_line {
        let start = f * fmt.width;
        if start >= bytes.len() {
            break;
        }
        let end = (start + fmt.width).min(bytes.len());
        // HB cards are ASCII; a non-ASCII mutation must not split a
        // UTF-8 sequence, so fall back to lossy trimming of the chunk.
        let Some(chunk) = line.get(start..end) else {
            continue;
        };
        let t = chunk.trim();
        if !t.is_empty() {
            out.push(t);
        }
    }
}

/// Read `count` numbers spread over `cards` fixed-width lines.
fn read_card_block<F, N>(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
    cards: usize,
    count: usize,
    fmt: &CardFormat,
    what: &str,
    parse: F,
) -> Result<Vec<N>, SparseError>
where
    F: Fn(&str) -> Result<N, SparseError>,
{
    let mut out = Vec::new();
    out.try_reserve_exact(count.min(1 << 20)).map_err(|_| {
        SparseError::Parse(format!("cannot reserve {count} {what} entries"))
    })?;
    for _ in 0..cards {
        let line = lines
            .next()
            .ok_or_else(|| SparseError::Parse(format!("truncated {what} section")))??;
        let mut fields = Vec::with_capacity(fmt.per_line);
        card_fields(&line, fmt, &mut fields);
        for tok in &fields {
            if out.len() == count {
                return Err(SparseError::Parse(format!(
                    "{what} section holds more than {count} entries"
                )));
            }
            out.try_reserve(1).map_err(|_| {
                SparseError::Parse(format!("out of memory reading {what}"))
            })?;
            out.push(parse(tok)?);
        }
    }
    if out.len() != count {
        return Err(SparseError::Parse(format!(
            "{what} section holds {} entries, header declared {count}",
            out.len()
        )));
    }
    Ok(out)
}

fn parse_hb_int(tok: &str) -> Result<usize, SparseError> {
    tok.parse::<usize>()
        .map_err(|e| SparseError::Parse(format!("bad integer {tok:?}: {e}")))
}

fn parse_hb_real(tok: &str) -> Result<f64, SparseError> {
    // FORTRAN floats may carry D exponents: 1.5D+02.
    let fixed = tok.replace(['D', 'd'], "E");
    fixed
        .parse::<f64>()
        .map_err(|e| SparseError::Parse(format!("bad real {tok:?}: {e}")))
}

/// Parse an assembled Harwell-Boeing stream into a [`CscMatrix`].
///
/// Supports matrix types `R_A` (real) and `P_A` (pattern, unit values)
/// with symmetry `S` (lower triangle stored, mirrored on read) or `U`.
/// Any right-hand-side section is ignored.
pub fn read_harwell_boeing<T: Scalar, R: Read>(reader: R) -> Result<CscMatrix<T>, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let mut next_line = |what: &str| -> Result<String, SparseError> {
        lines
            .next()
            .ok_or_else(|| SparseError::Parse(format!("missing {what} line")))?
            .map_err(SparseError::Io)
    };

    let _title = next_line("title")?;
    let counts_line = next_line("card-count")?;
    let counts: Vec<usize> = counts_line
        .split_whitespace()
        .map(parse_hb_int)
        .collect::<Result<_, _>>()?;
    if counts.len() < 4 {
        return Err(SparseError::Parse(format!(
            "bad card-count line {counts_line:?}"
        )));
    }
    let (ptrcrd, indcrd, valcrd) = (counts[1], counts[2], counts[3]);

    let type_line = next_line("matrix-type")?;
    let mut tokens = type_line.split_whitespace();
    let mxtype = tokens
        .next()
        .ok_or_else(|| SparseError::Parse("empty matrix-type line".into()))?
        .to_ascii_uppercase();
    let dims: Vec<usize> = tokens.map(parse_hb_int).collect::<Result<_, _>>()?;
    if mxtype.len() != 3 || dims.len() < 3 {
        return Err(SparseError::Parse(format!(
            "bad matrix-type line {type_line:?}"
        )));
    }
    let (nrow, ncol, nnz) = (dims[0], dims[1], dims[2]);
    let mut ty = mxtype.chars();
    let (value_kind, symmetry, assembled) =
        (ty.next().unwrap(), ty.next().unwrap(), ty.next().unwrap());
    let pattern_only = match value_kind {
        'R' => false,
        'P' => true,
        'C' => {
            return Err(SparseError::Parse(
                "complex Harwell-Boeing matrices are not supported".into(),
            ))
        }
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported HB value type {other:?}"
            )))
        }
    };
    let mirror = match symmetry {
        'S' => true,
        'U' | 'R' => false,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported HB symmetry {other:?} (S/U only)"
            )))
        }
    };
    if assembled != 'A' {
        return Err(SparseError::Parse(
            "elemental (unassembled) HB matrices are not supported".into(),
        ));
    }
    if pattern_only && valcrd > 0 {
        return Err(SparseError::Parse(
            "pattern matrix declares value cards".into(),
        ));
    }

    let fmt_line = next_line("format")?;
    let mut fmts = fmt_line.split_whitespace();
    let bad_fmt = || SparseError::Parse(format!("bad format line {fmt_line:?}"));
    let ptrfmt = parse_fortran_format(fmts.next().ok_or_else(bad_fmt)?)?;
    let indfmt = parse_fortran_format(fmts.next().ok_or_else(bad_fmt)?)?;
    let valfmt = if valcrd > 0 {
        Some(parse_fortran_format(fmts.next().ok_or_else(bad_fmt)?)?)
    } else {
        None
    };
    if counts.len() >= 5 && counts[4] > 0 {
        // RHSCRD > 0: a fifth header line describes the right-hand sides.
        let _rhs_header = next_line("rhs-header")?;
    }

    let ptr_len = ncol.checked_add(1).ok_or_else(|| {
        SparseError::Parse(format!("column count {ncol} overflows"))
    })?;
    let colptr = read_card_block(&mut lines, ptrcrd, ptr_len, &ptrfmt, "pointer", parse_hb_int)?;
    let rowind = read_card_block(&mut lines, indcrd, nnz, &indfmt, "row-index", parse_hb_int)?;
    let values: Vec<f64> = match &valfmt {
        Some(f) => read_card_block(&mut lines, valcrd, nnz, f, "value", parse_hb_real)?,
        None => Vec::new(),
    };
    if !pattern_only && values.len() != nnz {
        return Err(SparseError::Parse(format!(
            "real matrix with {nnz} entries but {} values (VALCRD = {valcrd})",
            values.len()
        )));
    }

    // Column pointers are 1-based, monotone, and must cover exactly nnz.
    if colptr.first() != Some(&1) || colptr.last() != Some(&nnz.wrapping_add(1)) {
        return Err(SparseError::Parse(format!(
            "column pointers must run from 1 to nnz+1, got {:?}..{:?}",
            colptr.first(),
            colptr.last()
        )));
    }
    if colptr.windows(2).any(|w| w[1] < w[0]) {
        return Err(SparseError::Parse("column pointers must be monotone".into()));
    }

    let cap = if mirror {
        nnz.checked_mul(2).ok_or_else(|| {
            SparseError::Parse(format!("entry count {nnz} overflows when mirrored"))
        })?
    } else {
        nnz
    };
    let mut builder = TripletBuilder::try_with_capacity(nrow, ncol, cap.min(1 << 20))?;
    for j in 0..ncol {
        for k in colptr[j] - 1..colptr[j + 1] - 1 {
            let i = rowind[k];
            if i == 0 || i > nrow {
                return Err(SparseError::Parse(format!(
                    "row index {i} outside 1..={nrow} in column {}",
                    j + 1
                )));
            }
            let v = if pattern_only {
                T::one()
            } else {
                T::from_f64(values[k])
            };
            builder.try_push(i - 1, j, v)?;
            if mirror && i - 1 != j {
                builder.try_push(j, i - 1, v)?;
            }
        }
    }
    builder.try_build()
}

/// Read a Harwell-Boeing file from disk.
pub fn read_harwell_boeing_file<T: Scalar>(
    path: impl AsRef<Path>,
) -> Result<CscMatrix<T>, SparseError> {
    read_harwell_boeing(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 3×3 tridiagonal Laplacian in RSA form (lower triangle stored),
    /// hand-laid-out with the fixed-width cards a FORTRAN writer emits.
    const RSA: &str = "\
1D Laplacian test matrix                                                LAP3
             3             1             1             1             0
RSA                        3             3             5             0
(16I5)          (16I5)          (5E16.8)
    1    3    5    6
    1    2    2    3    3
  2.00000000E+00 -1.00000000E+00  2.00000000E+00 -1.00000000E+00  2.00000000E+00
";

    /// Unsymmetric 2×2 in RUA form.
    const RUA: &str = "\
tiny unsymmetric                                                        TINY
             3             1             1             1
RUA                        2             2             3             0
(16I5)          (16I5)          (4E20.12)
    1    3    4
    1    2    2
  4.000000000000E+00 -1.000000000000E+00  3.000000000000E+00
";

    /// Pattern-only symmetric matrix: no value cards at all.
    const PSA: &str = "\
pattern only                                                            PAT2
             2             1             1             0             0
PSA                        2             2             2             0
(16I5)          (16I5)
    1    2    3
    1    2
";

    #[test]
    fn reads_symmetric_rsa_and_mirrors() {
        let a: CscMatrix<f64> = read_harwell_boeing(RSA.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert!(a.is_symmetric());
    }

    #[test]
    fn reads_unsymmetric_rua() {
        let a: CscMatrix<f64> = read_harwell_boeing(RUA.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn reads_pattern_psa_with_unit_values() {
        let a: CscMatrix<f64> = read_harwell_boeing(PSA.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn fortran_d_exponents_parse() {
        let src = RSA.replace("E+00", "D+00");
        let a: CscMatrix<f64> = read_harwell_boeing(src.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 2.0);
    }

    #[test]
    fn format_parser_handles_common_specs() {
        for (spec, per, width) in [
            ("(16I5)", 16, 5),
            ("(10I8)", 10, 8),
            ("(5E16.8)", 5, 16),
            ("(1P,3E26.18)", 3, 26),
            ("(1P3E26.18)", 3, 26),
            ("(F20.12)", 1, 20),
            ("(4D25.17)", 4, 25),
        ] {
            let f = parse_fortran_format(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!((f.per_line, f.width), (per, width), "{spec}");
        }
        for bad in ["", "16I5", "(I)", "(XQ9)", "(0I5)", "(5I0)"] {
            assert!(parse_fortran_format(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rejects_elemental_complex_and_unknown_types() {
        for (from, to) in [("RSA", "RSE"), ("RSA", "CSA"), ("RSA", "XSA"), ("RSA", "RZA")] {
            let src = RSA.replace(from, to);
            assert!(
                read_harwell_boeing::<f64, _>(src.as_bytes()).is_err(),
                "{to} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_truncated_and_inconsistent_sections() {
        // Drop the value card entirely.
        let truncated: String = RSA.lines().take(6).map(|l| format!("{l}\n")).collect();
        assert!(read_harwell_boeing::<f64, _>(truncated.as_bytes()).is_err());
        // Row index out of range.
        let oob = RSA.replace("    2    3    3", "    2    3    9");
        assert!(read_harwell_boeing::<f64, _>(oob.as_bytes()).is_err());
        // Non-monotone column pointers.
        let nonmono = RSA.replace("    1    3    5    6", "    1    5    3    6");
        assert!(read_harwell_boeing::<f64, _>(nonmono.as_bytes()).is_err());
    }
}
