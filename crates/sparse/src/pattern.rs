//! Compressed-column sparsity pattern (structure without values).
//!
//! The analysis half of a sparse direct solver works purely on structure:
//! symmetrization, permutation, elimination trees and symbolic
//! factorization never look at numerical values. [`SparsityPattern`] is the
//! shared currency between `dagfact-sparse`, `dagfact-order` and
//! `dagfact-symbolic`.

/// Compressed sparse column structure. Row indices within each column are
/// kept **sorted and unique**; every constructor enforces this invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
}

impl SparsityPattern {
    /// Build from raw CSC arrays. Rows within each column are sorted and
    /// deduplicated; panics if an index is out of bounds or `colptr` is
    /// malformed.
    pub fn from_csc(nrows: usize, ncols: usize, colptr: Vec<usize>, mut rowind: Vec<usize>) -> Self {
        assert_eq!(colptr.len(), ncols + 1, "colptr must have ncols+1 entries");
        assert_eq!(*colptr.last().unwrap(), rowind.len());
        assert!(colptr.windows(2).all(|w| w[0] <= w[1]), "colptr must be monotone");
        let mut write = 0usize;
        let mut new_colptr = Vec::with_capacity(ncols + 1);
        new_colptr.push(0);
        let mut scratch: Vec<usize> = Vec::new();
        for j in 0..ncols {
            scratch.clear();
            scratch.extend_from_slice(&rowind[colptr[j]..colptr[j + 1]]);
            scratch.sort_unstable();
            scratch.dedup();
            for &r in &scratch {
                assert!(r < nrows, "row index {r} out of bounds in column {j}");
                rowind[write] = r;
                write += 1;
            }
            new_colptr.push(write);
        }
        rowind.truncate(write);
        SparsityPattern {
            nrows,
            ncols,
            colptr: new_colptr,
            rowind,
        }
    }

    /// Build a pattern from an iterator of `(row, col)` entries (duplicates
    /// allowed).
    pub fn from_entries(nrows: usize, ncols: usize, entries: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut per_col: Vec<Vec<usize>> = vec![Vec::new(); ncols];
        for (r, c) in entries {
            assert!(r < nrows && c < ncols, "entry ({r},{c}) out of bounds");
            per_col[c].push(r);
        }
        let mut colptr = Vec::with_capacity(ncols + 1);
        colptr.push(0);
        let mut rowind = Vec::new();
        for col in &mut per_col {
            col.sort_unstable();
            col.dedup();
            rowind.extend_from_slice(col);
            colptr.push(rowind.len());
        }
        SparsityPattern {
            nrows,
            ncols,
            colptr,
            rowind,
        }
    }

    /// An empty `n×n` diagonal-free pattern.
    pub fn empty(n: usize) -> Self {
        SparsityPattern {
            nrows: n,
            ncols: n,
            colptr: vec![0; n + 1],
            rowind: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Concatenated row indices.
    pub fn rowind(&self) -> &[usize] {
        &self.rowind
    }

    /// Sorted row indices of column `j`.
    pub fn col(&self, j: usize) -> &[usize] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Structural transpose.
    pub fn transpose(&self) -> SparsityPattern {
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rowind {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let colptr = counts.clone();
        let mut rowind = vec![0usize; self.nnz()];
        let mut next = counts;
        for j in 0..self.ncols {
            for &r in self.col(j) {
                rowind[next[r]] = j;
                next[r] += 1;
            }
        }
        // Rows are emitted in increasing j per column, so already sorted.
        SparsityPattern {
            nrows: self.ncols,
            ncols: self.nrows,
            colptr,
            rowind,
        }
    }

    /// Pattern of `A + Aᵀ` **with a full diagonal** — the symmetric
    /// structure PaStiX factorizes ("PASTIX works on the matrix A + Aᵀ,
    /// which produces a symmetric pattern", §III). Requires a square
    /// pattern.
    pub fn symmetrize(&self) -> SparsityPattern {
        assert_eq!(self.nrows, self.ncols, "symmetrize requires a square pattern");
        let n = self.ncols;
        let at = self.transpose();
        let mut colptr = Vec::with_capacity(n + 1);
        colptr.push(0usize);
        let mut rowind = Vec::with_capacity(self.nnz() * 2 + n);
        for j in 0..n {
            // Merge the two sorted columns plus the diagonal entry.
            let a = self.col(j);
            let b = at.col(j);
            let (mut ia, mut ib) = (0, 0);
            let mut diag_done = false;
            let push = |r: usize, rowind: &mut Vec<usize>, diag_done: &mut bool| {
                if r == j {
                    *diag_done = true;
                }
                if !*diag_done && r > j {
                    rowind.push(j);
                    *diag_done = true;
                }
                rowind.push(r);
            };
            while ia < a.len() || ib < b.len() {
                let ra = a.get(ia).copied().unwrap_or(usize::MAX);
                let rb = b.get(ib).copied().unwrap_or(usize::MAX);
                let r = ra.min(rb);
                if ra == r {
                    ia += 1;
                }
                if rb == r {
                    ib += 1;
                }
                push(r, &mut rowind, &mut diag_done);
            }
            if !diag_done {
                rowind.push(j);
            }
            colptr.push(rowind.len());
        }
        SparsityPattern {
            nrows: n,
            ncols: n,
            colptr,
            rowind,
        }
    }

    /// `true` if the pattern is structurally symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.nrows == self.ncols && *self == self.transpose()
    }

    /// Symmetric permutation `P·A·Pᵀ`: entry `(i, j)` moves to
    /// `(perm[i], perm[j])` where `perm[old] = new`.
    pub fn permute_symmetric(&self, perm: &[usize]) -> SparsityPattern {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(perm.len(), self.ncols);
        let n = self.ncols;
        let mut iperm = vec![0usize; n];
        for (old, &new) in perm.iter().enumerate() {
            iperm[new] = old;
        }
        let mut colptr = Vec::with_capacity(n + 1);
        colptr.push(0usize);
        let mut rowind = Vec::with_capacity(self.nnz());
        let mut scratch = Vec::new();
        for &oldj in iperm.iter().take(n) {
            scratch.clear();
            scratch.extend(self.col(oldj).iter().map(|&r| perm[r]));
            scratch.sort_unstable();
            rowind.extend_from_slice(&scratch);
            colptr.push(rowind.len());
        }
        SparsityPattern {
            nrows: n,
            ncols: n,
            colptr,
            rowind,
        }
    }

    /// `true` if `(i, j)` is a stored entry.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.col(j).binary_search(&i).is_ok()
    }

    /// Strictly-lower-triangular restriction of a square pattern (used by
    /// elimination-tree construction).
    pub fn lower_strict(&self) -> SparsityPattern {
        assert_eq!(self.nrows, self.ncols);
        let n = self.ncols;
        let mut colptr = Vec::with_capacity(n + 1);
        colptr.push(0usize);
        let mut rowind = Vec::new();
        for j in 0..n {
            for &r in self.col(j) {
                if r > j {
                    rowind.push(r);
                }
            }
            colptr.push(rowind.len());
        }
        SparsityPattern {
            nrows: n,
            ncols: n,
            colptr,
            rowind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SparsityPattern {
        // 4x4:
        // x . . x
        // x x . .
        // . . x .
        // . x . x
        SparsityPattern::from_entries(
            4,
            4,
            vec![(0, 0), (1, 0), (1, 1), (3, 1), (2, 2), (0, 3), (3, 3)],
        )
    }

    #[test]
    fn from_csc_sorts_and_dedups() {
        let p = SparsityPattern::from_csc(3, 2, vec![0, 3, 4], vec![2, 0, 2, 1]);
        assert_eq!(p.col(0), &[0, 2]);
        assert_eq!(p.col(1), &[1]);
        assert_eq!(p.nnz(), 3);
    }

    #[test]
    fn transpose_involution() {
        let p = toy();
        assert_eq!(p.transpose().transpose(), p);
        assert!(p.transpose().contains(3, 0)); // A(0,3) mirrored
        assert!(!p.transpose().contains(2, 0)); // A(0,2) is empty
    }

    #[test]
    fn symmetrize_adds_mirror_and_diagonal() {
        let p = toy();
        let s = p.symmetrize();
        assert!(s.is_symmetric());
        // Every original entry and its mirror present.
        for j in 0..4 {
            for &i in p.col(j) {
                assert!(s.contains(i, j));
                assert!(s.contains(j, i));
            }
        }
        // Full diagonal.
        for j in 0..4 {
            assert!(s.contains(j, j), "diagonal {j}");
        }
        // Entry (2,2) column has only the diagonal.
        assert_eq!(s.col(2), &[2]);
    }

    #[test]
    fn symmetrize_idempotent_on_symmetric() {
        let s = toy().symmetrize();
        assert_eq!(s.symmetrize(), s);
    }

    #[test]
    fn permutation_relabels_entries() {
        let p = toy();
        let perm = vec![2, 0, 3, 1]; // old -> new
        let q = p.permute_symmetric(&perm);
        assert_eq!(q.nnz(), p.nnz());
        for j in 0..4 {
            for &i in p.col(j) {
                assert!(q.contains(perm[i], perm[j]), "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn identity_permutation_is_noop() {
        let p = toy();
        assert_eq!(p.permute_symmetric(&[0, 1, 2, 3]), p);
    }

    #[test]
    fn lower_strict_drops_upper_and_diag() {
        let s = toy().symmetrize();
        let l = s.lower_strict();
        for j in 0..4 {
            for &i in l.col(j) {
                assert!(i > j);
            }
        }
        assert!(l.contains(1, 0));
        assert!(!l.contains(0, 1));
        assert!(!l.contains(0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_entry_panics() {
        SparsityPattern::from_entries(2, 2, vec![(2, 0)]);
    }
}
