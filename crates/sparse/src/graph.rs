//! Adjacency-graph view of a symmetric sparsity pattern.
//!
//! Nested dissection (the SCOTCH substitute in `dagfact-order`) operates on
//! the undirected connectivity graph of `A + Aᵀ` with self-loops removed.
//! This module provides that view plus the classic traversals: BFS level
//! structures, pseudo-peripheral vertex search, and connected components.

use crate::pattern::SparsityPattern;

/// Undirected graph in CSR-like adjacency form (no self-loops; every edge
/// stored in both directions).
#[derive(Debug, Clone)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
}

impl Graph {
    /// Build the connectivity graph of a square pattern: symmetrizes and
    /// drops the diagonal.
    pub fn from_pattern(pattern: &SparsityPattern) -> Self {
        let sym = if pattern.is_symmetric() {
            pattern.clone()
        } else {
            pattern.symmetrize()
        };
        let n = sym.ncols();
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        let mut adjncy = Vec::with_capacity(sym.nnz());
        for j in 0..n {
            for &i in sym.col(j) {
                if i != j {
                    adjncy.push(i);
                }
            }
            xadj.push(adjncy.len());
        }
        Graph { xadj, adjncy }
    }

    /// Build directly from adjacency arrays (must be symmetric and
    /// loop-free; only checked in debug builds).
    pub fn from_adjacency(xadj: Vec<usize>, adjncy: Vec<usize>) -> Self {
        debug_assert_eq!(*xadj.last().unwrap_or(&0), adjncy.len());
        Graph { xadj, adjncy }
    }

    /// Number of vertices.
    pub fn nvertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of directed adjacency entries (2× the undirected edge count).
    pub fn nadjacency(&self) -> usize {
        self.adjncy.len()
    }

    /// Neighbors of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Breadth-first level structure from `root`, restricted to the
    /// vertices where `mask[v] == true`. Returns `levels[v] = distance`
    /// (or `usize::MAX` if unreachable/masked) and the number of levels.
    pub fn bfs_levels(&self, root: usize, mask: &[bool]) -> (Vec<usize>, usize) {
        let n = self.nvertices();
        let mut levels = vec![usize::MAX; n];
        if !mask[root] {
            return (levels, 0);
        }
        let mut frontier = vec![root];
        levels[root] = 0;
        let mut depth = 0usize;
        let mut next = Vec::new();
        while !frontier.is_empty() {
            depth += 1;
            next.clear();
            for &v in &frontier {
                for &w in self.neighbors(v) {
                    if mask[w] && levels[w] == usize::MAX {
                        levels[w] = depth;
                        next.push(w);
                    }
                }
            }
            core::mem::swap(&mut frontier, &mut next);
        }
        (levels, depth)
    }

    /// Find a pseudo-peripheral vertex of the masked subgraph containing
    /// `start` (George-Liu iteration: repeatedly jump to a farthest
    /// minimum-degree vertex until eccentricity stops growing).
    pub fn pseudo_peripheral(&self, start: usize, mask: &[bool]) -> usize {
        let mut root = start;
        let (mut levels, mut ecc) = self.bfs_levels(root, mask);
        loop {
            // Farthest level, pick its minimum-degree vertex.
            let far = ecc.saturating_sub(1);
            let mut best: Option<usize> = None;
            for (v, &l) in levels.iter().enumerate() {
                if l == far
                    && mask[v]
                    && best.is_none_or(|b| self.degree(v) < self.degree(b))
                {
                    best = Some(v);
                }
            }
            let Some(candidate) = best else { return root };
            if candidate == root {
                return root;
            }
            let (nl, ne) = self.bfs_levels(candidate, mask);
            if ne > ecc {
                root = candidate;
                levels = nl;
                ecc = ne;
            } else {
                return candidate;
            }
        }
    }

    /// Connected components of the masked subgraph: returns
    /// `component[v]` (`usize::MAX` for masked-out vertices) and the
    /// component count.
    pub fn components(&self, mask: &[bool]) -> (Vec<usize>, usize) {
        let n = self.nvertices();
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0usize;
        let mut stack = Vec::new();
        for s in 0..n {
            if !mask[s] || comp[s] != usize::MAX {
                continue;
            }
            comp[s] = ncomp;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if mask[w] && comp[w] == usize::MAX {
                        comp[w] = ncomp;
                        stack.push(w);
                    }
                }
            }
            ncomp += 1;
        }
        (comp, ncomp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid_laplacian_2d;

    fn path_graph(n: usize) -> Graph {
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        for v in 0..n {
            if v > 0 {
                adj.push(v - 1);
            }
            if v + 1 < n {
                adj.push(v + 1);
            }
            xadj.push(adj.len());
        }
        Graph::from_adjacency(xadj, adj)
    }

    #[test]
    fn pattern_to_graph_drops_diagonal() {
        let a = grid_laplacian_2d(3, 3);
        let g = Graph::from_pattern(a.pattern());
        assert_eq!(g.nvertices(), 9);
        for v in 0..9 {
            assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
        }
        // Corner has 2 neighbors, center has 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(4), 4);
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path_graph(5);
        let mask = vec![true; 5];
        let (levels, depth) = g.bfs_levels(0, &mask);
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(depth, 5);
        // Masked vertex blocks traversal.
        let mut mask2 = vec![true; 5];
        mask2[2] = false;
        let (levels2, _) = g.bfs_levels(0, &mask2);
        assert_eq!(levels2[1], 1);
        assert_eq!(levels2[3], usize::MAX);
    }

    #[test]
    fn pseudo_peripheral_finds_path_end() {
        let g = path_graph(9);
        let mask = vec![true; 9];
        let p = g.pseudo_peripheral(4, &mask);
        assert!(p == 0 || p == 8, "got {p}");
    }

    #[test]
    fn components_counts_masked_islands() {
        let g = path_graph(6);
        let mut mask = vec![true; 6];
        mask[2] = false; // split into {0,1} and {3,4,5}
        let (comp, n) = g.components(&mask);
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[4]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(comp[2], usize::MAX);
    }
}
