//! # dagfact-sparse
//!
//! Sparse-matrix infrastructure for the `dagfact` supernodal solver: the
//! Rust substrate for what the paper gets from the Harwell-Boeing files of
//! the University of Florida collection and PaStiX's internal CSC handling.
//!
//! * [`SparsityPattern`] — compressed-column structure (no values), with
//!   transposition, permutation and the `A + Aᵀ` symmetrization that PaStiX
//!   applies to unsymmetric matrices (§III),
//! * [`CscMatrix`] — compressed sparse column matrix over any
//!   [`Scalar`](dagfact_kernels::Scalar),
//! * [`TripletBuilder`] — coordinate-format assembly (duplicates summed),
//! * [`graph::Graph`] — adjacency-graph view with the traversals used by
//!   the ordering crate,
//! * [`gen`] — synthetic problem generators standing in for the paper's
//!   nine UF matrices (2D/3D grid stencils, real/complex, SPD/indefinite/
//!   unsymmetric),
//! * [`mm`] — Matrix Market I/O for interoperability,
//! * [`hb`] — a minimal Harwell-Boeing reader (the collection's native
//!   distribution format).

pub mod coo;
pub mod csc;
pub mod gen;
pub mod graph;
pub mod hb;
pub mod mm;
pub mod pattern;

pub use coo::TripletBuilder;
pub use csc::CscMatrix;
pub use pattern::SparsityPattern;

/// Errors produced while constructing or reading sparse matrices.
#[derive(Debug)]
pub enum SparseError {
    /// An index was out of bounds for the declared dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// Malformed Matrix Market content.
    Parse(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl core::fmt::Display for SparseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(f, "entry ({row}, {col}) outside {nrows}x{ncols} matrix"),
            SparseError::Parse(msg) => write!(f, "matrix market parse error: {msg}"),
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}
