//! Synthetic problem generators.
//!
//! The paper evaluates on nine matrices from the University of Florida
//! collection (Table I). Those files are not redistributable inside this
//! repository, so the benchmark harness substitutes grid-based generators
//! with matching *character*: dimensionality (quasi-2D shell vs. 3D
//! volume), stencil density, arithmetic (real/complex) and the kind of
//! factorization they require (SPD → LLᵀ, symmetric indefinite → LDLᵀ,
//! unsymmetric values → LU). See `DESIGN.md` §2 for the mapping.
//!
//! All generators produce structurally symmetric matrices (the solver works
//! on `A + Aᵀ` anyway, §III) with deterministic values.

use crate::coo::TripletBuilder;
use crate::csc::CscMatrix;
use dagfact_kernels::{Scalar, C64};

/// Small deterministic PRNG (SplitMix64) for the random generators —
/// seedable, dependency-free, and identical across platforms.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n`.
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw in `[-1, 1)`.
    fn symmetric_unit(&mut self) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        2.0 * unit - 1.0
    }
}

/// Stencil connectivity for grid generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil {
    /// 5-point (2D) / 7-point (3D): axis neighbors only.
    Star,
    /// 9-point (2D) / 27-point (3D): full Moore neighborhood.
    Box,
}

fn neighbors_3d(stencil: Stencil) -> Vec<(i64, i64, i64)> {
    let mut out = Vec::new();
    for dz in -1i64..=1 {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if (dx, dy, dz) == (0, 0, 0) {
                    continue;
                }
                let manhattan = dx.abs() + dy.abs() + dz.abs();
                if stencil == Stencil::Star && manhattan != 1 {
                    continue;
                }
                out.push((dx, dy, dz));
            }
        }
    }
    out
}

/// Generic 3D grid operator: `nx×ny×nz` vertices, the given stencil, and a
/// caller-supplied value model `(i, j) -> T` for off-diagonal entries plus
/// `diag(i, degree) -> T` for the diagonal.
pub fn grid_operator_3d<T: Scalar>(
    nx: usize,
    ny: usize,
    nz: usize,
    stencil: Stencil,
    mut off: impl FnMut(usize, usize) -> T,
    mut diag: impl FnMut(usize, usize) -> T,
) -> CscMatrix<T> {
    let n = nx * ny * nz;
    let deltas = neighbors_3d(stencil);
    let mut b = TripletBuilder::with_capacity(n, n, n * (deltas.len() + 1));
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                let mut degree = 0usize;
                for &(dx, dy, dz) in &deltas {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx < 0
                        || yy < 0
                        || zz < 0
                        || xx >= nx as i64
                        || yy >= ny as i64
                        || zz >= nz as i64
                    {
                        continue;
                    }
                    let j = idx(xx as usize, yy as usize, zz as usize);
                    degree += 1;
                    b.push(i, j, off(i, j));
                }
                b.push(i, i, diag(i, degree));
            }
        }
    }
    b.build()
}

/// SPD Laplacian on a 2D grid (5-point stencil): the canonical quickstart
/// matrix. Diagonal is `degree + 1` so the operator is strictly positive
/// definite even with Neumann-like boundaries.
pub fn grid_laplacian_2d(nx: usize, ny: usize) -> CscMatrix<f64> {
    grid_laplacian_3d(nx, ny, 1)
}

/// SPD Laplacian on a 3D grid (7-point stencil).
pub fn grid_laplacian_3d(nx: usize, ny: usize, nz: usize) -> CscMatrix<f64> {
    grid_operator_3d(
        nx,
        ny,
        nz,
        Stencil::Star,
        |_, _| -1.0,
        |_, deg| deg as f64 + 1.0,
    )
}

/// SPD operator on a 3D grid with the dense 27-point stencil — the proxy
/// for mechanically-coupled problems like `audi`.
pub fn grid_laplacian_3d_box(nx: usize, ny: usize, nz: usize) -> CscMatrix<f64> {
    grid_operator_3d(
        nx,
        ny,
        nz,
        Stencil::Box,
        |_, _| -0.5,
        |_, deg| 0.5 * deg as f64 + 1.0,
    )
}

/// Symmetric **indefinite** 3D operator (shifted Laplacian): the proxy for
/// LDLᵀ problems like `Serena`. The negative shift pushes part of the
/// spectrum below zero while diagonal blocks stay comfortably invertible
/// without pivoting.
pub fn shifted_laplacian_3d(nx: usize, ny: usize, nz: usize, shift: f64) -> CscMatrix<f64> {
    grid_operator_3d(
        nx,
        ny,
        nz,
        Stencil::Star,
        |_, _| -1.0,
        move |i, deg| {
            // Alternate heavy positive/negative diagonal so the matrix is
            // indefinite yet strongly block-diagonally dominant.
            let sign = if i % 5 == 0 { -1.0 } else { 1.0 };
            sign * (deg as f64 + shift)
        },
    )
}

/// Complex *symmetric* Helmholtz-like operator (proxy for `pmlDF` and
/// `FilterV2`): `-Δ - (k² + iσ)I` discretized on a 3D grid. Symmetric, not
/// Hermitian, as produced by PML absorbing boundary layers.
pub fn helmholtz_3d(nx: usize, ny: usize, nz: usize, k2: f64, sigma: f64) -> CscMatrix<C64> {
    grid_operator_3d(
        nx,
        ny,
        nz,
        Stencil::Star,
        |_, _| C64::new(-1.0, 0.0),
        move |_, deg| C64::new(deg as f64 - k2 + 8.0, sigma),
    )
}

/// Unsymmetric-valued convection-diffusion operator on a 3D grid (proxy for
/// the LU problems `MHD`, `HOOK`, `afshell10`): symmetric pattern, but the
/// convective term skews upwind/downwind coefficients.
pub fn convection_diffusion_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    convection: f64,
) -> CscMatrix<f64> {
    grid_operator_3d(
        nx,
        ny,
        nz,
        Stencil::Star,
        move |i, j| {
            if j > i {
                -1.0 - convection
            } else {
                -1.0 + convection
            }
        },
        |_, deg| deg as f64 + 2.0,
    )
}

/// Complex unsymmetric operator (proxy for `FilterV2`'s Z LU problem).
pub fn complex_unsym_3d(nx: usize, ny: usize, nz: usize) -> CscMatrix<C64> {
    grid_operator_3d(
        nx,
        ny,
        nz,
        Stencil::Star,
        |i, j| {
            if j > i {
                C64::new(-1.0, 0.3)
            } else {
                C64::new(-1.0, -0.2)
            }
        },
        |_, deg| C64::new(deg as f64 + 2.0, 1.0),
    )
}

/// Random symmetric-pattern SPD matrix: `target_nnz_per_col` random
/// off-diagonal entries per column mirrored across the diagonal, with a
/// dominant diagonal. Used heavily by property tests.
pub fn random_spd(n: usize, target_nnz_per_col: usize, seed: u64) -> CscMatrix<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut b = TripletBuilder::with_capacity(n, n, n * (2 * target_nnz_per_col + 1));
    let mut rowsum = vec![0.0f64; n];
    for j in 0..n {
        for _ in 0..target_nnz_per_col {
            let i = rng.index(n);
            if i == j {
                continue;
            }
            let v = rng.symmetric_unit();
            b.push(i, j, v);
            b.push(j, i, v);
            rowsum[i] += v.abs();
            rowsum[j] += v.abs();
        }
    }
    for (j, &s) in rowsum.iter().enumerate() {
        b.push(j, j, 2.0 * s + 1.0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_2d_structure() {
        let a = grid_laplacian_2d(3, 3);
        assert_eq!(a.nrows(), 9);
        assert!(a.is_symmetric());
        // Interior point: 4 neighbors + diagonal.
        assert_eq!(a.col_rows(4).len(), 5);
        assert_eq!(a.get(4, 4), 5.0);
        assert_eq!(a.get(3, 4), -1.0);
        // Corner: 2 neighbors + diagonal.
        assert_eq!(a.col_rows(0).len(), 3);
    }

    #[test]
    fn laplacian_3d_box_has_27pt_interior() {
        let a = grid_laplacian_3d_box(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        // Center vertex (1,1,1) touches all 26 neighbors + itself.
        assert_eq!(a.col_rows(13).len(), 27);
        assert!(a.is_symmetric());
    }

    #[test]
    fn helmholtz_is_complex_symmetric_not_hermitian() {
        let a = helmholtz_3d(3, 2, 2, 4.0, 0.5);
        assert!(a.is_symmetric()); // plain transpose equality
        // Diagonal has nonzero imaginary part → not Hermitian.
        assert!(a.get(0, 0).im != 0.0);
    }

    #[test]
    fn convection_diffusion_is_structurally_symmetric_only() {
        let a = convection_diffusion_3d(3, 3, 2, 0.4);
        assert!(a.pattern().is_symmetric());
        assert!(!a.is_symmetric());
        assert_eq!(a.get(0, 1) + a.get(1, 0), -2.0); // -1±c pair
    }

    #[test]
    fn random_spd_is_diagonally_dominant() {
        let a = random_spd(50, 4, 42);
        assert!(a.is_symmetric());
        for j in 0..50 {
            let diag = a.get(j, j);
            let off: f64 = a
                .col_rows(j)
                .iter()
                .zip(a.col_values(j))
                .filter(|&(&i, _)| i != j)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "column {j} not dominant: {diag} vs {off}");
        }
    }

    #[test]
    fn shifted_laplacian_is_indefinite() {
        let a = shifted_laplacian_3d(4, 4, 4, 1.0);
        assert!(a.is_symmetric());
        let has_neg = (0..a.ncols()).any(|j| a.get(j, j) < 0.0);
        let has_pos = (0..a.ncols()).any(|j| a.get(j, j) > 0.0);
        assert!(has_neg && has_pos);
    }
}
