//! Compressed sparse column matrix with values.

use crate::pattern::SparsityPattern;
use dagfact_kernels::Scalar;

/// A sparse matrix in compressed-column form over any solver scalar.
///
/// Invariant: row indices within each column are sorted and unique (shared
/// with [`SparsityPattern`]); `values` runs parallel to the pattern's
/// `rowind`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T> {
    pattern: SparsityPattern,
    values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Build from a pattern and parallel values.
    pub fn new(pattern: SparsityPattern, values: Vec<T>) -> Self {
        assert_eq!(pattern.nnz(), values.len(), "values must match pattern nnz");
        CscMatrix { pattern, values }
    }

    /// Build from raw CSC arrays; rows within a column must be sorted and
    /// unique (use [`crate::TripletBuilder`] otherwise).
    pub fn from_csc(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        assert_eq!(rowind.len(), values.len());
        let pattern = SparsityPattern::from_csc(nrows, ncols, colptr, rowind);
        assert_eq!(
            pattern.nnz(),
            values.len(),
            "duplicate or unsorted rows: assemble via TripletBuilder instead"
        );
        CscMatrix { pattern, values }
    }

    /// Structure of the matrix.
    pub fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.pattern.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.pattern.ncols()
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// All stored values, column-major by construction.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Sorted row indices of column `j`.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        self.pattern.col(j)
    }

    /// Values of column `j`, parallel to [`Self::col_rows`].
    pub fn col_values(&self, j: usize) -> &[T] {
        &self.values[self.pattern.colptr()[j]..self.pattern.colptr()[j + 1]]
    }

    /// Value at `(i, j)`, or zero if not stored.
    pub fn get(&self, i: usize, j: usize) -> T {
        match self.col_rows(j).binary_search(&i) {
            Ok(pos) => self.values[self.pattern.colptr()[j] + pos],
            Err(_) => T::zero(),
        }
    }

    /// Sparse matrix-vector product `y = A·x`.
    pub fn spmv(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.ncols());
        assert_eq!(y.len(), self.nrows());
        for v in y.iter_mut() {
            *v = T::zero();
        }
        for (j, &xj) in x.iter().enumerate().take(self.ncols()) {
            if xj == T::zero() {
                continue;
            }
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                y[i] += v * xj;
            }
        }
    }

    /// Transposed product `y = Aᵀ·x` (no conjugation).
    pub fn spmv_transpose(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.nrows());
        assert_eq!(y.len(), self.ncols());
        for (j, yj) in y.iter_mut().enumerate() {
            let mut acc = T::zero();
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                acc += v * x[i];
            }
            *yj = acc;
        }
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> CscMatrix<T> {
        let tp = self.pattern.transpose();
        let mut values = vec![T::zero(); self.nnz()];
        let mut next: Vec<usize> = tp.colptr().to_vec();
        for j in 0..self.ncols() {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                values[next[i]] = v;
                next[i] += 1;
            }
        }
        CscMatrix {
            pattern: tp,
            values,
        }
    }

    /// Symmetric permutation `P·A·Pᵀ` (square matrices only); `perm[old] =
    /// new`.
    pub fn permute_symmetric(&self, perm: &[usize]) -> CscMatrix<T> {
        assert_eq!(self.nrows(), self.ncols());
        let n = self.ncols();
        assert_eq!(perm.len(), n);
        let mut iperm = vec![0usize; n];
        for (old, &new) in perm.iter().enumerate() {
            iperm[new] = old;
        }
        let mut colptr = Vec::with_capacity(n + 1);
        colptr.push(0usize);
        let mut rowind = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for &oldj in iperm.iter().take(n) {
            scratch.clear();
            scratch.extend(
                self.col_rows(oldj)
                    .iter()
                    .zip(self.col_values(oldj))
                    .map(|(&r, &v)| (perm[r], v)),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in &scratch {
                rowind.push(r);
                values.push(v);
            }
            colptr.push(rowind.len());
        }
        CscMatrix {
            pattern: SparsityPattern::from_csc(n, n, colptr, rowind),
            values,
        }
    }

    /// `true` when `A = Aᵀ` exactly (structure and values).
    pub fn is_symmetric(&self) -> bool {
        self.nrows() == self.ncols() && *self == self.transpose()
    }

    /// Infinity norm `max_i Σ_j |a_ij|`.
    pub fn norm_inf(&self) -> f64 {
        let mut rowsum = vec![0.0f64; self.nrows()];
        for j in 0..self.ncols() {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                rowsum[i] += v.modulus();
            }
        }
        rowsum.into_iter().fold(0.0, f64::max)
    }

    /// Densify into a column-major buffer (tests and tiny examples only).
    pub fn to_dense(&self) -> Vec<T> {
        let mut out = vec![T::zero(); self.nrows() * self.ncols()];
        for j in 0..self.ncols() {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                out[j * self.nrows() + i] = v;
            }
        }
        out
    }

    /// Mirror the strictly-lower triangle onto the upper one, producing a
    /// fully-stored symmetric matrix from lower-triangular storage
    /// (Matrix Market `symmetric` convention).
    pub fn symmetrize_from_lower(&self) -> CscMatrix<T> {
        assert_eq!(self.nrows(), self.ncols());
        let mut b = crate::TripletBuilder::new(self.nrows(), self.ncols());
        for j in 0..self.ncols() {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                b.push(i, j, v);
                if i != j {
                    b.push(j, i, v);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_kernels::C64;

    fn toy() -> CscMatrix<f64> {
        // [[2, 0, 1],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CscMatrix::from_csc(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![2.0, 4.0, 3.0, 1.0, 5.0],
        )
    }

    #[test]
    fn get_and_spmv() {
        let a = toy();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![2.0 + 3.0, 6.0, 4.0 + 15.0]);
        let mut yt = vec![0.0; 3];
        a.spmv_transpose(&x, &mut yt);
        assert_eq!(yt, vec![2.0 + 12.0, 6.0, 1.0 + 15.0]);
    }

    #[test]
    fn transpose_roundtrip_and_values() {
        let a = toy();
        let at = a.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(at.get(j, i), a.get(i, j));
            }
        }
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn symmetric_permutation_preserves_entries() {
        let a = toy();
        let perm = vec![1, 2, 0];
        let b = a.permute_symmetric(&perm);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.get(perm[i], perm[j]), a.get(i, j));
            }
        }
    }

    #[test]
    fn norm_inf_is_max_abs_row_sum() {
        let a = toy();
        assert_eq!(a.norm_inf(), 9.0); // row 2: 4 + 5
    }

    #[test]
    fn symmetrize_from_lower_mirrors() {
        let l = CscMatrix::from_csc(
            2,
            2,
            vec![0, 2, 3],
            vec![0, 1, 1],
            vec![4.0, -1.0, 4.0],
        );
        let s = l.symmetrize_from_lower();
        assert_eq!(s.get(0, 1), -1.0);
        assert_eq!(s.get(1, 0), -1.0);
        assert!(s.is_symmetric());
    }

    #[test]
    fn complex_matrix_basics() {
        let a = CscMatrix::from_csc(
            2,
            2,
            vec![0, 1, 2],
            vec![0, 1],
            vec![C64::new(1.0, 2.0), C64::new(0.0, -1.0)],
        );
        let x = vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0)];
        let mut y = vec![C64::new(0.0, 0.0); 2];
        a.spmv(&x, &mut y);
        assert_eq!(y[0], C64::new(1.0, 2.0));
        assert_eq!(y[1], C64::new(1.0, 0.0));
        assert!((a.norm_inf() - 5.0f64.sqrt()).abs() < 1e-15);
    }
}
