//! Matrix Market coordinate-format I/O.
//!
//! The paper's matrices come from the University of Florida collection,
//! distributed in Matrix Market / Harwell-Boeing form. This module
//! implements the coordinate Matrix Market dialect (`real`/`complex`/
//! `pattern` × `general`/`symmetric`) so users can run `dagfact` on the
//! genuine UF files when they have them.

use crate::coo::TripletBuilder;
use crate::csc::CscMatrix;
use crate::SparseError;
use dagfact_kernels::Scalar;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Matrix symmetry declared in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; mirrored on read.
    Symmetric,
}

/// Parse a Matrix Market stream into a [`CscMatrix`].
///
/// `pattern` fields get value 1; `complex` fields keep only what the
/// scalar type can represent (reading a complex file into `f64` is an
/// error). Symmetric files are expanded to full storage.
pub fn read_matrix_market<T: Scalar, R: Read>(reader: R) -> Result<CscMatrix<T>, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))??;
    let head_tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if head_tokens.len() < 5
        || head_tokens[0] != "%%matrixmarket"
        || head_tokens[1] != "matrix"
        || head_tokens[2] != "coordinate"
    {
        return Err(SparseError::Parse(format!(
            "unsupported header: {header:?} (only 'matrix coordinate' supported)"
        )));
    }
    let field = head_tokens[3].as_str();
    let value_kind = match field {
        "real" | "integer" => ValueKind::Real,
        "complex" => ValueKind::Complex,
        "pattern" => ValueKind::Pattern,
        other => {
            return Err(SparseError::Parse(format!("unsupported field {other:?}")));
        }
    };
    if value_kind == ValueKind::Complex && !T::IS_COMPLEX {
        return Err(SparseError::Parse(
            "complex matrix read into a real scalar type".into(),
        ));
    }
    let symmetry = match head_tokens[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported symmetry {other:?} (general/symmetric only)"
            )));
        }
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| SparseError::Parse(format!("bad size line {size_line:?}: {e}")))?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("bad size line {size_line:?}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    // Untrusted header: reserve fallibly and with overflow checks, so an
    // absurd declared size is a typed error, not an abort.
    let cap = if symmetry == MmSymmetry::Symmetric {
        nnz.checked_mul(2).ok_or_else(|| {
            SparseError::Parse(format!("entry count {nnz} overflows when mirrored"))
        })?
    } else {
        nnz
    };
    // Clamp the eager reservation: growth past this is driven by entries
    // actually present in the file (fallibly, via `try_push`), so a lying
    // header cannot force a huge up-front allocation.
    let mut builder = TripletBuilder::try_with_capacity(nrows, ncols, cap.min(1 << 20))?;
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = parse_tok(it.next(), t)?;
        let j: usize = parse_tok(it.next(), t)?;
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(SparseError::Parse(format!("entry out of bounds: {t:?}")));
        }
        let v: T = match value_kind {
            ValueKind::Pattern => T::one(),
            ValueKind::Real => {
                let re: f64 = parse_tok(it.next(), t)?;
                T::from_f64(re)
            }
            ValueKind::Complex => {
                let re: f64 = parse_tok(it.next(), t)?;
                let im: f64 = parse_tok(it.next(), t)?;
                T::from_parts(re, im)
            }
        };
        builder.try_push(i - 1, j - 1, v)?;
        if symmetry == MmSymmetry::Symmetric && i != j {
            builder.try_push(j - 1, i - 1, v)?;
        }
        seen += 1;
        if seen > nnz {
            return Err(SparseError::Parse(format!(
                "file contains more than the {nnz} declared entries"
            )));
        }
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "header declared {nnz} entries, file contained {seen}"
        )));
    }
    builder.try_build()
}

#[derive(PartialEq, Clone, Copy)]
enum ValueKind {
    Real,
    Complex,
    Pattern,
}

fn parse_tok<F: core::str::FromStr>(tok: Option<&str>, line: &str) -> Result<F, SparseError>
where
    F::Err: core::fmt::Display,
{
    tok.ok_or_else(|| SparseError::Parse(format!("truncated line {line:?}")))?
        .parse::<F>()
        .map_err(|e| SparseError::Parse(format!("bad token in {line:?}: {e}")))
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file<T: Scalar>(path: impl AsRef<Path>) -> Result<CscMatrix<T>, SparseError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write a matrix in `general` coordinate format (full storage, 1-based).
pub fn write_matrix_market<T: Scalar, W: Write>(
    matrix: &CscMatrix<T>,
    mut writer: W,
) -> Result<(), SparseError> {
    let field = if T::IS_COMPLEX { "complex" } else { "real" };
    writeln!(writer, "%%MatrixMarket matrix coordinate {field} general")?;
    writeln!(writer, "% written by dagfact-sparse")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz()
    )?;
    for j in 0..matrix.ncols() {
        for (&i, &v) in matrix.col_rows(j).iter().zip(matrix.col_values(j)) {
            if T::IS_COMPLEX {
                writeln!(writer, "{} {} {:.17e} {:.17e}", i + 1, j + 1, v.re(), v.im())?;
            } else {
                writeln!(writer, "{} {} {:.17e}", i + 1, j + 1, v.re())?;
            }
        }
    }
    Ok(())
}

/// Write a Matrix Market file to disk.
pub fn write_matrix_market_file<T: Scalar>(
    matrix: &CscMatrix<T>,
    path: impl AsRef<Path>,
) -> Result<(), SparseError> {
    write_matrix_market(matrix, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_laplacian_2d, helmholtz_3d};
    use dagfact_kernels::C64;

    #[test]
    fn real_roundtrip() {
        let a = grid_laplacian_2d(4, 3);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: CscMatrix<f64> = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn complex_roundtrip() {
        let a = helmholtz_3d(3, 2, 2, 1.0, 0.25);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: CscMatrix<C64> = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_storage_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment line\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 1 -1.0\n\
                    3 2 -1.0\n\
                    3 3 2.0\n";
        let a: CscMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 6);
        assert!(a.is_symmetric());
    }

    #[test]
    fn pattern_field_gets_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let a: CscMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_complex_into_real() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 2.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_counts_and_bounds() {
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(short.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(oob.as_bytes()).is_err());
    }
}
