//! The native (PaStiX-style) engine: static mapping + work stealing.
//!
//! PaStiX computes, at analyze time, a cost-model list schedule that pins
//! every 1D task to a worker ("this static scheduling associates ready
//! tasks with the first available resources", §III), then recovers from
//! model error at run time with work stealing \[1\]. This engine replays
//! exactly that: ready tasks go to their *assigned* worker's local priority
//! queue; a worker that runs dry steals the lowest-priority ready task of
//! the most loaded victim (stealing cold work preserves the owner's
//! locality).
//!
//! [`run_native_checked`] executes under the fault-tolerant layer of
//! [`crate::fault`]; [`run_native`] is the legacy path that panics on the
//! calling thread if the run fails.

use crate::fault::{EngineError, RunConfig, RunReport, Supervisor, TaskOutcome};
use crate::shared::release_pending;
use crate::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use crate::sync::Mutex;
use crate::trace::{Lane, SpanKind};
use crate::TaskId;
use std::collections::BinaryHeap;

/// A task in the native engine's statically-scheduled DAG.
#[derive(Debug, Clone)]
pub struct NativeTask {
    /// Worker the analyze-time schedule assigned this task to.
    pub owner: usize,
    /// Number of incoming dependencies.
    pub npred: u32,
    /// Tasks unlocked by this one's completion.
    pub succs: Vec<TaskId>,
    /// Critical-path priority (higher runs first).
    pub priority: f64,
}

#[derive(PartialEq)]
struct Entry {
    priority: f64,
    task: TaskId,
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // total_cmp: NaN priorities order deterministically instead of
        // panicking inside the scheduler.
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.task.cmp(&self.task))
    }
}

struct Queues {
    ready: Vec<Mutex<BinaryHeap<Entry>>>,
    /// Per-queue length mirrors, maintained under each queue's lock.
    /// They let `pop`'s empty check and `steal`'s victim scan run
    /// without touching any mutex — the lock-elided fast path.
    lens: Vec<AtomicUsize>,
}

impl Queues {
    /// Pre-size each worker's heap to the number of tasks statically
    /// owned by it: releases go to the successor's owner and retries
    /// return to the task's own owner, so a queue can never exceed its
    /// owner's task count and the heap never reallocates mid-run.
    fn with_owner_counts(tasks: &[NativeTask], nworkers: usize) -> Queues {
        let mut counts = vec![0usize; nworkers];
        for task in tasks {
            counts[task.owner % nworkers] += 1;
        }
        Queues {
            // ALLOC: once per run (engine setup), pooled for the whole
            // run — the per-task push path below never grows the heap.
            ready: counts
                .iter()
                .map(|&c| Mutex::new(BinaryHeap::with_capacity(c)))
                .collect(),
            lens: (0..nworkers).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    fn push(&self, w: usize, e: Entry) {
        // LOCK: per-owner queue mutex — the engine's ready-queue
        // protocol, model-checked in tests/loom_models.rs.
        let mut q = self.ready[w].lock();
        q.push(e);
        // ORDERING: Relaxed — the length mirror is a heuristic read by
        // lock-free scans; the mutex is the synchronization point for
        // the queue contents themselves.
        self.lens[w].store(q.len(), Ordering::Relaxed);
    }

    fn pop(&self, w: usize) -> Option<Entry> {
        // ORDERING: Relaxed empty pre-check elides the lock entirely
        // when the local queue is dry (the steal-bound worker's common
        // case); a racing push is observed on the next loop iteration —
        // the worker loop polls, so no wakeup is lost.
        if self.lens[w].load(Ordering::Relaxed) == 0 {
            return None;
        }
        // LOCK: per-owner queue mutex, uncontended in the static-map
        // common case.
        let mut q = self.ready[w].lock();
        let e = q.pop();
        // ORDERING: Relaxed — heuristic mirror, see `push`.
        self.lens[w].store(q.len(), Ordering::Relaxed);
        e
    }
}

/// Execute a statically-scheduled DAG on `nworkers` threads.
///
/// `execute(task, worker)` runs the task body; it is called exactly once
/// per task, only after all its predecessors completed. Panics on the
/// calling thread if a task panics; prefer [`run_native_checked`] for
/// structured errors.
pub fn run_native<F>(tasks: &[NativeTask], nworkers: usize, execute: F)
where
    F: Fn(TaskId, usize) + Sync,
{
    if let Err(e) = run_native_checked(tasks, nworkers, RunConfig::default(), execute) {
        panic!("native engine failed: {e}");
    }
}

/// Execute a statically-scheduled DAG under the fault-tolerant layer:
/// task panics become [`EngineError::TaskPanicked`], transient failures
/// are retried per `config.retry` (the task is re-queued on its owner),
/// and the watchdog converts a stalled scheduler into
/// [`EngineError::Stalled`].
pub fn run_native_checked<F>(
    tasks: &[NativeTask],
    nworkers: usize,
    config: RunConfig,
    execute: F,
) -> Result<RunReport, EngineError>
where
    F: Fn(TaskId, usize) + Sync,
{
    if nworkers == 0 {
        return Err(EngineError::NoWorkers);
    }
    let ntasks = tasks.len();
    let tracer = config.trace.clone();
    let sup = Supervisor::new(ntasks, config);
    if ntasks == 0 {
        return sup.finish();
    }
    let pending: Vec<AtomicU32> = tasks.iter().map(|t| AtomicU32::new(t.npred)).collect();
    let queues = Queues::with_owner_counts(tasks, nworkers);
    // Seed initially-ready tasks onto their owners' queues.
    for (t, task) in tasks.iter().enumerate() {
        if task.npred == 0 {
            queues.push(
                task.owner % nworkers,
                Entry {
                    priority: task.priority,
                    task: t,
                },
            );
        }
    }

    let supref = &sup;
    let traceref = tracer.as_deref();
    let body = |worker: usize| {
        let mut lane = Lane::new(traceref, worker);
        // Open interval of not-executing time; closed (as QueueWait or
        // Steal) when the next task is acquired.
        let mut wait_from = lane.now();
        loop {
            if supref.remaining() == 0 || supref.halted() {
                break;
            }
            // 0) Memory-pressure throttle: leave ready tasks queued when
            // the budget's admission width is saturated.
            if !supref.try_admit() {
                if supref.idle_check() {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            // 1) Own queue first (locality of the static mapping).
            let mine = queues.pop(worker);
            let (picked, stolen) = match mine {
                Some(e) => (Some(e.task), false),
                None => (steal(&queues, worker, nworkers), true),
            };
            let Some(t) = picked else {
                // Idle: service the watchdog, then yield to the OS.
                if supref.idle_check() {
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            let kind = if stolen { SpanKind::Steal } else { SpanKind::QueueWait };
            lane.record(kind, Some(t), wait_from);
            let exec_from = lane.now();
            let outcome = supref.run_task(t, || execute(t, worker));
            lane.record(SpanKind::Execute, Some(t), exec_from);
            wait_from = lane.now();
            match outcome {
                TaskOutcome::Completed => {
                    // Release successors onto their owners' queues via the
                    // checked fan-in decrement: an underflow (double
                    // release / corrupted npred) poisons the run instead
                    // of silently wrapping the counter.
                    let mut underflow = false;
                    for &s in &tasks[t].succs {
                        match release_pending(&pending[s], s) {
                            Ok(true) => {
                                queues.push(
                                    tasks[s].owner % nworkers,
                                    Entry {
                                        priority: tasks[s].priority,
                                        task: s,
                                    },
                                );
                            }
                            Ok(false) => {}
                            Err(e) => {
                                supref.poison_with(EngineError::ReleaseUnderflow { task: e.succ });
                                underflow = true;
                                break;
                            }
                        }
                    }
                    if underflow {
                        break;
                    }
                    supref.task_done(t);
                }
                TaskOutcome::Retry => {
                    // Backoff already applied; retry on the static owner.
                    queues.push(
                        tasks[t].owner % nworkers,
                        Entry {
                            priority: tasks[t].priority,
                            task: t,
                        },
                    );
                }
                TaskOutcome::Aborted => break,
            }
        }
    };

    if nworkers == 1 {
        body(0);
    } else {
        std::thread::scope(|scope| {
            for w in 1..nworkers {
                scope.spawn(move || body(w));
            }
            body(0);
        });
    }
    sup.finish()
}

/// Steal one ready task from the most loaded victim. PaStiX steals "cold"
/// work — the lowest-priority entry — so the owner keeps the critical
/// path.
fn steal(queues: &Queues, thief: usize, nworkers: usize) -> Option<TaskId> {
    // Lock-elided victim scan: read the atomic length mirrors instead of
    // locking every queue (the pre-fix scan serialized all workers on
    // each other's mutexes whenever anyone ran dry).
    let mut victim = None;
    let mut best_len = 0usize;
    for v in 0..nworkers {
        if v == thief {
            continue;
        }
        // ORDERING: Relaxed — victim choice is a heuristic; the victim's
        // mutex below is the synchronization point, and a stale length
        // only costs one wasted lock or one missed steal round.
        let len = queues.lens[v].load(Ordering::Relaxed);
        if len > best_len {
            best_len = len;
            victim = Some(v);
        }
    }
    let v = victim?;
    // LOCK: single victim mutex — the only lock the steal path takes.
    let mut q = queues.ready[v].lock();
    // Take the *lowest* priority entry: rebuild without the minimum.
    // Queues are short (panel counts), so the O(len) drain is noise.
    if q.is_empty() {
        return None;
    }
    // ALLOC: BinaryHeap → Vec → BinaryHeap round-trip reuses the heap's
    // own buffer (into_vec / into_iter().collect() are allocation-free
    // capacity moves); nothing is allocated per steal.
    let mut entries: Vec<Entry> = std::mem::take(&mut *q).into_vec();
    let (min_idx, _) = entries.iter().enumerate().min_by(|a, b| a.1.cmp(b.1))?;
    let stolen = entries.swap_remove(min_idx);
    *q = entries.into_iter().collect();
    // ORDERING: Relaxed — heuristic mirror, see `Queues::push`.
    queues.lens[v].store(q.len(), Ordering::Relaxed);
    Some(stolen.task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    /// Build a fork-join diamond: 0 -> {1..=w} -> w+1.
    fn diamond(width: usize) -> Vec<NativeTask> {
        let mut tasks = Vec::new();
        tasks.push(NativeTask {
            owner: 0,
            npred: 0,
            succs: (1..=width).collect(),
            priority: 10.0,
        });
        for i in 1..=width {
            tasks.push(NativeTask {
                owner: i % 3,
                npred: 1,
                succs: vec![width + 1],
                priority: 5.0,
            });
        }
        tasks.push(NativeTask {
            owner: 0,
            npred: width as u32,
            succs: vec![],
            priority: 1.0,
        });
        tasks
    }

    #[test]
    fn executes_every_task_once_respecting_deps() {
        for nworkers in [1, 2, 4] {
            let tasks = diamond(16);
            let n = tasks.len();
            let run_count: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let log = StdMutex::new(Vec::new());
            run_native(&tasks, nworkers, |t, _w| {
                run_count[t].fetch_add(1, Ordering::SeqCst);
                log.lock().unwrap().push(t);
            });
            for (t, c) in run_count.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "task {t} ran wrong count");
            }
            let log = log.into_inner().unwrap();
            let pos = |t: usize| log.iter().position(|&x| x == t).unwrap();
            // Source before everything, sink after everything.
            assert_eq!(pos(0), 0);
            assert_eq!(pos(n - 1), n - 1);
        }
    }

    #[test]
    fn chain_executes_in_order() {
        let n = 100;
        let tasks: Vec<NativeTask> = (0..n)
            .map(|i| NativeTask {
                owner: i % 4,
                npred: u32::from(i > 0),
                succs: if i + 1 < n { vec![i + 1] } else { vec![] },
                priority: (n - i) as f64,
            })
            .collect();
        let log = StdMutex::new(Vec::new());
        run_native(&tasks, 4, |t, _| log.lock().unwrap().push(t));
        let log = log.into_inner().unwrap();
        assert_eq!(log, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn work_stealing_rebalances_bad_static_mapping() {
        // All tasks statically mapped to worker 0; with 4 workers the
        // thieves must still participate (checked via per-worker counts).
        let width = 64;
        let mut tasks = diamond(width);
        for t in &mut tasks {
            t.owner = 0;
        }
        let worker_hits = [const { AtomicUsize::new(0) }; 4];
        run_native(&tasks, 4, |_t, w| {
            worker_hits[w].fetch_add(1, Ordering::SeqCst);
            // Make the middle tasks long enough for thieves to wake up.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        let total: usize = worker_hits.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        assert_eq!(total, width + 2);
        let thieves: usize = worker_hits[1..].iter().map(|c| c.load(Ordering::SeqCst)).sum();
        assert!(thieves > 0, "no stealing happened");
    }

    #[test]
    fn empty_dag_returns_immediately() {
        run_native(&[], 4, |_, _| panic!("no task to run"));
    }

    #[test]
    fn duplicate_successor_edge_reports_release_underflow() {
        // Task 0 lists task 1 twice but task 1 only counts one
        // predecessor: the second release used to wrap the counter to
        // u32::MAX and silently mask the corrupted graph.
        let tasks = vec![
            NativeTask {
                owner: 0,
                npred: 0,
                succs: vec![1, 1],
                priority: 1.0,
            },
            NativeTask {
                owner: 0,
                npred: 1,
                succs: vec![],
                priority: 0.0,
            },
        ];
        let err = run_native_checked(&tasks, 2, RunConfig::default(), |_, _| {}).unwrap_err();
        assert!(
            matches!(err, EngineError::ReleaseUnderflow { task: 1 }),
            "expected ReleaseUnderflow for task 1, got: {err}"
        );
    }

    #[test]
    fn checked_run_reports_success() {
        let tasks = diamond(8);
        let n = tasks.len();
        let count = AtomicUsize::new(0);
        let report = run_native_checked(&tasks, 4, RunConfig::default(), |_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(report.ntasks, n);
        assert_eq!(report.completed, n);
        assert_eq!(count.load(Ordering::SeqCst), n);
    }
}
