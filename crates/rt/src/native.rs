//! The native (PaStiX-style) engine: static mapping + work stealing.
//!
//! PaStiX computes, at analyze time, a cost-model list schedule that pins
//! every 1D task to a worker ("this static scheduling associates ready
//! tasks with the first available resources", §III), then recovers from
//! model error at run time with work stealing \[1\]. This engine replays
//! that policy on a **lock-free ready structure**: each worker owns a
//! bounded Chase-Lev deque ([`crate::deque`]), initially-ready tasks are
//! seeded onto their *assigned* owner's deque before the workers spawn,
//! and at run time a completing worker pushes the successors it unlocks
//! onto its *own* deque (work-first: the freshly written panel is hot in
//! its cache). A worker that runs dry drains the shared injector (seed
//! overflow spills), then steals a batch from the most loaded victim's
//! cold end.
//!
//! Priority ordering is a heuristic here, not an invariant: within one
//! release the unlocked successors are pushed in ascending priority
//! order, so the owner LIFO-pops the most critical one first and thieves
//! FIFO-steal the coldest — the same shape the old per-owner binary
//! heaps produced, without any per-task mutex. (`lint-sync`'s lock-order
//! graph documents the diff: the `Queues.ready` lock node is gone; the
//! only ready-path lock left is the seed/overflow `Injector.queue`.)
//!
//! [`run_native_checked`] executes under the fault-tolerant layer of
//! [`crate::fault`]; [`run_native`] is the legacy path that panics on the
//! calling thread if the run fails.

use crate::deque::{Injector, Stealer, WorkerDeque};
use crate::fault::{EngineError, RunConfig, RunReport, Supervisor, TaskOutcome};
use crate::shared::release_pending;
use crate::sync::atomic::AtomicU32;
use crate::trace::{Lane, SpanKind};
use crate::TaskId;

/// A task in the native engine's statically-scheduled DAG.
#[derive(Debug, Clone)]
pub struct NativeTask {
    /// Worker the analyze-time schedule assigned this task to.
    pub owner: usize,
    /// Number of incoming dependencies.
    pub npred: u32,
    /// Tasks unlocked by this one's completion.
    pub succs: Vec<TaskId>,
    /// Critical-path priority (higher runs first).
    pub priority: f64,
}

/// Upper bound on tasks moved per steal round: the first comes back to
/// run immediately, the rest land on the thief's deque so it does not
/// return to the victim scan after every single task.
const STEAL_BATCH: usize = 8;

/// Cap on the per-worker ring size; deeper backlogs spill to the
/// injector, which is correct (just slower) and keeps setup cost bounded
/// for huge DAGs.
const MAX_DEQUE_CAP: usize = 8192;

/// Execute a statically-scheduled DAG on `nworkers` threads.
///
/// `execute(task, worker)` runs the task body; it is called exactly once
/// per task, only after all its predecessors completed. Panics on the
/// calling thread if a task panics; prefer [`run_native_checked`] for
/// structured errors.
pub fn run_native<F>(tasks: &[NativeTask], nworkers: usize, execute: F)
where
    F: Fn(TaskId, usize) + Sync,
{
    if let Err(e) = run_native_checked(tasks, nworkers, RunConfig::default(), execute) {
        panic!("native engine failed: {e}");
    }
}

/// Execute a statically-scheduled DAG under the fault-tolerant layer:
/// task panics become [`EngineError::TaskPanicked`], transient failures
/// are retried per `config.retry` (the task is re-queued on the retrying
/// worker), and the watchdog converts a stalled scheduler into
/// [`EngineError::Stalled`].
pub fn run_native_checked<F>(
    tasks: &[NativeTask],
    nworkers: usize,
    config: RunConfig,
    execute: F,
) -> Result<RunReport, EngineError>
where
    F: Fn(TaskId, usize) + Sync,
{
    if nworkers == 0 {
        return Err(EngineError::NoWorkers);
    }
    let ntasks = tasks.len();
    // ALLOC: run setup — one tracer handle and one counter table per run.
    let tracer = config.trace.clone();
    let sup = Supervisor::new(ntasks, config);
    if ntasks == 0 {
        return sup.finish();
    }
    let pending: Vec<AtomicU32> = tasks.iter().map(|t| AtomicU32::new(t.npred)).collect();
    // ALLOC: once per run (engine setup) — the rings are bounded and the
    // per-task push/pop/steal paths below never allocate.
    let cap = ntasks.min(MAX_DEQUE_CAP);
    let deques: Vec<WorkerDeque> = (0..nworkers)
        .map(|_| WorkerDeque::with_capacity(cap))
        .collect();
    let stealers: Vec<Stealer> = deques.iter().map(WorkerDeque::stealer).collect();
    let injector: Injector<TaskId> = Injector::new();

    // Seed initially-ready tasks onto their owners' deques, in ascending
    // priority order so each owner LIFO-pops its most critical seed
    // first. Pushing into other workers' deques is an owner-side
    // operation, but no worker threads exist yet and `thread::scope`'s
    // spawn edge publishes the rings, so the single-threaded seed phase
    // is sound.
    // ALLOC: the seed list is built once, before any worker exists.
    // BOUNDS: seed ids come from the `0..ntasks` scan; owners are reduced
    // `% nworkers`.
    let mut seeds: Vec<TaskId> = (0..ntasks).filter(|&t| tasks[t].npred == 0).collect();
    seeds.sort_by(|&a, &b| tasks[a].priority.total_cmp(&tasks[b].priority));
    for t in seeds {
        if let Err(t) = deques[tasks[t].owner % nworkers].push(t) {
            injector.push(t);
        }
    }

    let supref = &sup;
    let traceref = tracer.as_deref();
    let deqref = &deques;
    let stealref = &stealers;
    let injref = &injector;
    let body = |worker: usize| {
        // BOUNDS: `worker` is the scope-spawn index, < nworkers == deqref.len().
        let local = &deqref[worker];
        // Reusable successor-release buffer: sorted so the highest
        // priority is pushed last (= popped first by the LIFO owner).
        // ALLOC: once per worker; `sort_unstable_by` is in-place and the
        // buffer keeps its high-water capacity across tasks.
        let mut unlocked: Vec<TaskId> = Vec::with_capacity(32);
        let mut lane = Lane::new(traceref, worker);
        // Open interval of not-executing time; closed (as QueueWait or
        // Steal) when the next task is acquired.
        let mut wait_from = lane.now();
        loop {
            if supref.remaining() == 0 || supref.halted() {
                break;
            }
            // 0) Memory-pressure throttle: leave ready tasks queued when
            // the budget's admission width is saturated.
            if !supref.try_admit() {
                if supref.idle_check() {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            // 1) Own deque first (locality of the static mapping +
            // work-first releases), 2) injector (seed/overflow spills),
            // 3) batch-steal from the most loaded victim.
            let (picked, stolen) = match local.pop() {
                Some(t) => (Some(t), false),
                None => match injref.steal() {
                    Some(t) => (Some(t), true),
                    None => (steal(stealref, local, injref, worker), true),
                },
            };
            let Some(t) = picked else {
                // Idle: service the watchdog, then yield to the OS.
                if supref.idle_check() {
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            let kind = if stolen { SpanKind::Steal } else { SpanKind::QueueWait };
            lane.record(kind, Some(t), wait_from);
            let exec_from = lane.now();
            let outcome = supref.run_task(t, || execute(t, worker));
            lane.record(SpanKind::Execute, Some(t), exec_from);
            wait_from = lane.now();
            match outcome {
                TaskOutcome::Completed => {
                    // Release successors via the checked fan-in
                    // decrement: an underflow (double release /
                    // corrupted npred) poisons the run instead of
                    // silently wrapping the counter. Unlocked tasks go
                    // to *this* worker's deque — only the owner may
                    // push, and the releaser's cache holds the panel the
                    // successors read.
                    let mut underflow = false;
                    unlocked.clear();
                    // BOUNDS: `t` and its successors are task ids < ntasks,
                    // indexing the pre-sized task/pending tables.
                    // ALLOC: `unlocked` reuses its high-water capacity.
                    for &s in &tasks[t].succs {
                        match release_pending(&pending[s], s) {
                            Ok(true) => unlocked.push(s),
                            Ok(false) => {}
                            Err(e) => {
                                supref.poison_with(EngineError::ReleaseUnderflow { task: e.succ });
                                underflow = true;
                                break;
                            }
                        }
                    }
                    if underflow {
                        break;
                    }
                    // BOUNDS: released ids < ntasks index the task table.
                    // ALLOC: ring pushes store into the preallocated ring;
                    // the injector push is the cold overflow-spill path.
                    unlocked
                        .sort_unstable_by(|&a, &b| tasks[a].priority.total_cmp(&tasks[b].priority));
                    for &s in &unlocked {
                        if let Err(s) = local.push(s) {
                            injref.push(s);
                        }
                    }
                    supref.task_done(t);
                }
                TaskOutcome::Retry => {
                    // Backoff already applied; retry where it failed.
                    // ALLOC: store-only ring push; injector only on overflow.
                    if let Err(t) = local.push(t) {
                        injref.push(t);
                    }
                }
                TaskOutcome::Aborted => break,
            }
        }
    };

    if nworkers == 1 {
        body(0);
    } else {
        std::thread::scope(|scope| {
            for w in 1..nworkers {
                scope.spawn(move || body(w));
            }
            body(0);
        });
    }
    sup.finish()
}

/// Steal a batch of ready tasks from the most loaded victim's cold
/// (FIFO) end: the first stolen task is returned to run now, the rest
/// land on the thief's own deque (spilling to the injector if it is
/// full, so no task is ever dropped). PaStiX steals "cold" work so the
/// owner keeps the critical path; here the cold end is the FIFO end by
/// construction.
fn steal(
    stealers: &[Stealer],
    local: &WorkerDeque,
    injector: &Injector<TaskId>,
    thief: usize,
) -> Option<TaskId> {
    // Victim scan on the racy length snapshots — no locks, no CAS until
    // a victim is chosen.
    let mut victim = None;
    let mut best_len = 0usize;
    for (v, s) in stealers.iter().enumerate() {
        if v == thief {
            continue;
        }
        let len = s.len();
        if len > best_len {
            best_len = len;
            victim = Some(s);
        }
    }
    victim?.steal_batch(STEAL_BATCH, |t| {
        // ALLOC: WorkerDeque::push only stores into the preallocated
        // ring; the injector push (amortized VecDeque growth) runs only
        // on the capacity-overflow spill path.
        if let Err(t) = local.push(t) {
            injector.push(t);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    /// Build a fork-join diamond: 0 -> {1..=w} -> w+1.
    fn diamond(width: usize) -> Vec<NativeTask> {
        let mut tasks = Vec::new();
        tasks.push(NativeTask {
            owner: 0,
            npred: 0,
            succs: (1..=width).collect(),
            priority: 10.0,
        });
        for i in 1..=width {
            tasks.push(NativeTask {
                owner: i % 3,
                npred: 1,
                succs: vec![width + 1],
                priority: 5.0,
            });
        }
        tasks.push(NativeTask {
            owner: 0,
            npred: width as u32,
            succs: vec![],
            priority: 1.0,
        });
        tasks
    }

    #[test]
    fn executes_every_task_once_respecting_deps() {
        for nworkers in [1, 2, 4] {
            let tasks = diamond(16);
            let n = tasks.len();
            let run_count: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let log = StdMutex::new(Vec::new());
            run_native(&tasks, nworkers, |t, _w| {
                run_count[t].fetch_add(1, Ordering::SeqCst);
                log.lock().unwrap().push(t);
            });
            for (t, c) in run_count.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "task {t} ran wrong count");
            }
            let log = log.into_inner().unwrap();
            let pos = |t: usize| log.iter().position(|&x| x == t).unwrap();
            // Source before everything, sink after everything.
            assert_eq!(pos(0), 0);
            assert_eq!(pos(n - 1), n - 1);
        }
    }

    #[test]
    fn chain_executes_in_order() {
        let n = 100;
        let tasks: Vec<NativeTask> = (0..n)
            .map(|i| NativeTask {
                owner: i % 4,
                npred: u32::from(i > 0),
                succs: if i + 1 < n { vec![i + 1] } else { vec![] },
                priority: (n - i) as f64,
            })
            .collect();
        let log = StdMutex::new(Vec::new());
        run_native(&tasks, 4, |t, _| log.lock().unwrap().push(t));
        let log = log.into_inner().unwrap();
        assert_eq!(log, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn work_stealing_rebalances_bad_static_mapping() {
        // All tasks statically mapped to worker 0; with 4 workers the
        // thieves must still participate (checked via per-worker counts).
        let width = 64;
        let mut tasks = diamond(width);
        for t in &mut tasks {
            t.owner = 0;
        }
        let worker_hits = [const { AtomicUsize::new(0) }; 4];
        run_native(&tasks, 4, |_t, w| {
            worker_hits[w].fetch_add(1, Ordering::SeqCst);
            // Make the middle tasks long enough for thieves to wake up.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        let total: usize = worker_hits.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        assert_eq!(total, width + 2);
        let thieves: usize = worker_hits[1..].iter().map(|c| c.load(Ordering::SeqCst)).sum();
        assert!(thieves > 0, "no stealing happened");
    }

    #[test]
    fn priority_guides_the_owner_within_a_release() {
        // One source unlocks 8 successors with distinct priorities, all
        // owned by worker 0 and run single-threaded: the owner must
        // LIFO-pop them most-critical-first.
        let width = 8usize;
        let mut tasks = vec![NativeTask {
            owner: 0,
            npred: 0,
            succs: (1..=width).collect(),
            priority: 100.0,
        }];
        for i in 1..=width {
            tasks.push(NativeTask {
                owner: 0,
                npred: 1,
                succs: vec![],
                priority: i as f64,
            });
        }
        let log = StdMutex::new(Vec::new());
        run_native(&tasks, 1, |t, _| log.lock().unwrap().push(t));
        let log = log.into_inner().unwrap();
        let expected: Vec<usize> = std::iter::once(0).chain((1..=width).rev()).collect();
        assert_eq!(log, expected, "successors must run highest-priority first");
    }

    #[test]
    fn deque_overflow_spills_to_injector_and_completes() {
        // 20k independent tasks on 2 workers: the per-worker ring caps at
        // MAX_DEQUE_CAP, so seeding alone must overflow into the
        // injector; every task still runs exactly once.
        let n = 20_000usize;
        let tasks: Vec<NativeTask> = (0..n)
            .map(|i| NativeTask {
                owner: i % 2,
                npred: 0,
                succs: vec![],
                priority: (i % 97) as f64,
            })
            .collect();
        assert!(n / 2 > MAX_DEQUE_CAP, "scenario must exercise the spill path");
        let run_count: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_native(&tasks, 2, |t, _| {
            run_count[t].fetch_add(1, Ordering::SeqCst);
        });
        for (t, c) in run_count.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "task {t} ran wrong count");
        }
    }

    #[test]
    fn empty_dag_returns_immediately() {
        run_native(&[], 4, |_, _| panic!("no task to run"));
    }

    #[test]
    fn duplicate_successor_edge_reports_release_underflow() {
        // Task 0 lists task 1 twice but task 1 only counts one
        // predecessor: the second release used to wrap the counter to
        // u32::MAX and silently mask the corrupted graph.
        let tasks = vec![
            NativeTask {
                owner: 0,
                npred: 0,
                succs: vec![1, 1],
                priority: 1.0,
            },
            NativeTask {
                owner: 0,
                npred: 1,
                succs: vec![],
                priority: 0.0,
            },
        ];
        let err = run_native_checked(&tasks, 2, RunConfig::default(), |_, _| {}).unwrap_err();
        assert!(
            matches!(err, EngineError::ReleaseUnderflow { task: 1 }),
            "expected ReleaseUnderflow for task 1, got: {err}"
        );
    }

    #[test]
    fn checked_run_reports_success() {
        let tasks = diamond(8);
        let n = tasks.len();
        let count = AtomicUsize::new(0);
        let report = run_native_checked(&tasks, 4, RunConfig::default(), |_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(report.ntasks, n);
        assert_eq!(report.completed, n);
        assert_eq!(count.load(Ordering::SeqCst), n);
    }
}
