//! Work-stealing deques for the task engines — Chase-Lev style,
//! lock-free on every per-task path.
//!
//! The engines want the classic owner-LIFO / thief-FIFO discipline: the
//! releasing worker pushes freshly-unlocked successors on the *hot* end
//! of its own deque (the written panel is still in cache) while idle
//! workers steal the *oldest* — coldest — entry from a victim. Earlier
//! revisions traded the lock-free protocol for a short critical section
//! around a `VecDeque`; on tiny-task DAGs (the afshell regime of
//! `bench/overhead`) that mutex was the dominant per-task cost, so the
//! ready structure is now a bounded Chase-Lev ring \[Chase & Lev 2005;
//! fence placement after Lê et al. 2013, with the fences expressed as
//! `SeqCst` accesses on `top`/`bottom`\]:
//!
//! * **`top`/`bottom` are monotone `u64` indices** into a power-of-two
//!   ring, so an index is never reused (no ABA) and emptiness is just
//!   `top >= bottom`.
//! * **Payloads are `usize` task ids stored in `AtomicUsize` slots** —
//!   a deliberately non-generic design: slot reads that lose the `top`
//!   CAS race read a value that is simply discarded, which is only
//!   memory-safe (without `unsafe`) because the slots are atomics.
//! * **The ring is bounded and never reallocates.** `push` returns the
//!   value back on overflow and the engines spill to the [`Injector`];
//!   correctness never depends on the capacity.
//! * **Thieves take one CAS per stolen item, even in a batch.** A
//!   single CAS advancing `top` by `k > 1` is unsound against a LIFO
//!   owner: the owner bypasses the `top` CAS whenever it observes at
//!   least two entries, so it may legally take `bottom - 1` *inside*
//!   the thief's claimed `[top, top+k)` window. The
//!   `deque_batched_steal_*` models in `tests/loom_models.rs` pin both
//!   sides: per-item CAS is exhaustively clean, the `k = 2` shortcut is
//!   caught double-taking.
//!
//! The owner/thief arbitration for the last element relies on the
//! sequentially-consistent order of the `bottom` store in `pop` against
//! the `top`/`bottom` loads in `steal` (a store-buffering idiom). The
//! model checker explores interleavings — sequentially consistent by
//! construction — so it verifies the protocol logic (take-exactly-once,
//! loss-freedom, the last-element race) but not the fence placement
//! itself; that placement follows the literature cited above.

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};
use std::collections::VecDeque;

/// Default ring capacity (entries). Deep local queues spill to the
/// injector; see [`WorkerDeque::push`].
const DEFAULT_CAP: usize = 1024;

/// The shared ring. Owner and thief handles delegate here so both sides
/// of the protocol live next to each other.
struct Ring {
    /// Steal index (monotone; thieves CAS it forward one item at a time,
    /// the owner CASes it only for the last-element race).
    top: AtomicU64,
    /// Push index (monotone net of pop's transient decrement; written by
    /// the owner only).
    bottom: AtomicU64,
    /// `capacity - 1`; capacity is a power of two.
    mask: u64,
    slots: Box<[AtomicUsize]>,
}

impl Ring {
    fn with_capacity(cap: usize) -> Ring {
        let cap = cap.max(2).next_power_of_two();
        Ring {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            mask: (cap - 1) as u64,
            // ALLOC: once per deque at engine setup; the ring never
            // grows, which is what makes the per-task paths
            // allocation-free (asserted by tests/alloc_counting.rs).
            slots: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Owner push at the LIFO end. `Err(v)` when the ring is full.
    fn push_bottom(&self, v: usize) -> Result<(), usize> {
        // ORDERING: Relaxed — `bottom` has a single writer (the owner,
        // which is this thread), so this read is of our own last store.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            return Err(v);
        }
        // ORDERING: Relaxed slot store — the Release store of `bottom`
        // below publishes it; a thief reads the slot only after an
        // Acquire load of `bottom` observes the new index.
        // BOUNDS: index is masked by the power-of-two ring mask, so it
        // is always < slots.len().
        self.slots[(b & self.mask) as usize].store(v, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner pop at the LIFO end.
    fn take_bottom(&self) -> Option<usize> {
        // ORDERING: Relaxed fast-path emptiness probe — only thieves
        // raise `top`, so a stale value under-reports steals and we
        // merely fall through to the synchronized path.
        let b = self.bottom.load(Ordering::Relaxed);
        if self.top.load(Ordering::Relaxed) >= b {
            return None;
        }
        let b = b - 1;
        // The SeqCst store/load pair is the pop side of the
        // store-buffering arbitration: publish the claim on slot `b`
        // *before* sampling `top`, so a thief that misses the claim is
        // ordered after it (see the module docs).
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t < b {
            // At least one entry remains for the thieves: slot `b` is
            // unambiguously ours.
            // ORDERING: Relaxed slot read — the owner itself wrote this
            // slot; thieves only read slots.
            // BOUNDS: index is masked by the ring mask, always in range.
            return Some(self.slots[(b & self.mask) as usize].load(Ordering::Relaxed));
        }
        if t == b {
            // Exactly one entry: arbitrate with the thieves on `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            // ORDERING: Relaxed — restores the canonical empty form
            // (`bottom == top`); the next push re-publishes with
            // Release.
            self.bottom.store(b + 1, Ordering::Relaxed);
            // ORDERING: Relaxed slot read — winning the CAS made the
            // slot exclusively ours, and the owner wrote it.
            // BOUNDS: index is masked by the ring mask, always in range.
            return won.then(|| self.slots[(b & self.mask) as usize].load(Ordering::Relaxed));
        }
        // t == b + 1: a thief drained the deque between the fast-path
        // probe and the claim.
        // ORDERING: Relaxed — canonical empty restore, see above.
        self.bottom.store(b + 1, Ordering::Relaxed);
        None
    }

    /// Thief take at the FIFO end. `None` on empty **or** on losing the
    /// `top` CAS — emptiness and contention are both "try again later"
    /// to the polling engines.
    fn take_top(&self) -> Option<usize> {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return None;
        }
        // ORDERING: Relaxed slot read *before* the claim: if the slot is
        // concurrently recycled by a wrapped-around push, that push saw
        // `top` already past `t`, so the CAS below fails and the value
        // is discarded. Monotone u64 indices rule out ABA on `top`.
        // BOUNDS: index is masked by the ring mask, always in range.
        let v = self.slots[(t & self.mask) as usize].load(Ordering::Relaxed);
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .ok()
            .map(|_| v)
    }

    /// Racy length snapshot.
    fn len(&self) -> usize {
        // ORDERING: Relaxed — victim-selection heuristic by contract; a
        // stale value costs one wasted probe or one missed steal round.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        b.saturating_sub(t) as usize
    }
}

/// The owner's end of a work-stealing deque of `usize` task ids.
pub struct WorkerDeque {
    ring: Arc<Ring>,
}

/// A thief's handle onto some worker's deque.
pub struct Stealer {
    ring: Arc<Ring>,
}

impl Clone for Stealer {
    fn clone(&self) -> Self {
        Stealer {
            ring: Arc::clone(&self.ring),
        }
    }
}

impl Default for WorkerDeque {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerDeque {
    /// New empty deque with the default capacity.
    pub fn new() -> WorkerDeque {
        Self::with_capacity(DEFAULT_CAP)
    }

    /// New empty deque holding at least `cap` entries (rounded up to a
    /// power of two).
    pub fn with_capacity(cap: usize) -> WorkerDeque {
        WorkerDeque {
            // ALLOC: one shared ring per deque, at engine setup only.
            ring: Arc::new(Ring::with_capacity(cap)),
        }
    }

    /// A stealer handle for other workers.
    pub fn stealer(&self) -> Stealer {
        Stealer {
            ring: Arc::clone(&self.ring),
        }
    }

    /// Owner push (LIFO end). The ring is bounded: on overflow the value
    /// comes back as `Err` and the caller spills it (the engines use the
    /// shared [`Injector`]); no task is ever dropped.
    pub fn push(&self, value: usize) -> Result<(), usize> {
        self.ring.push_bottom(value)
    }

    /// Owner pop (LIFO end): the most recently released task.
    pub fn pop(&self) -> Option<usize> {
        self.ring.take_bottom()
    }

    /// Free slots from the owner's point of view — a lower bound, since
    /// concurrent thieves only ever *create* space.
    pub fn spare(&self) -> usize {
        (self.ring.mask as usize + 1).saturating_sub(self.ring.len())
    }
}

impl Stealer {
    /// Steal from the FIFO end: the oldest (coldest) task. `None` means
    /// empty **or** lost a race — callers poll, so both are "not now".
    pub fn steal(&self) -> Option<usize> {
        self.ring.take_top()
    }

    /// Batched steal: take up to `limit` items (capped at half the
    /// observed backlog — the victim keeps its hot end), one CAS per
    /// item (see the module docs for why a single `k`-wide CAS is
    /// unsound). The first stolen item is returned to run now; the rest
    /// are handed to `sink` (typically `local.push` with an injector
    /// spill). Stops early on contention.
    pub fn steal_batch(&self, limit: usize, mut sink: impl FnMut(usize)) -> Option<usize> {
        let goal = limit.min(self.ring.len().div_ceil(2)).max(1);
        let first = self.ring.take_top()?;
        for _ in 1..goal {
            match self.ring.take_top() {
                Some(v) => sink(v),
                None => break,
            }
        }
        Some(first)
    }

    /// Number of queued tasks (racy snapshot, for victim selection).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A global MPMC queue seeding the initially-ready tasks and absorbing
/// deque overflow. Mutex-backed: it is touched once per task at seed
/// time and only on the (capacity-bounded) spill path afterwards, so it
/// is deliberately *not* part of the per-task steady state — the
/// lock-order graph in `results/lint-sync.json` carries `Injector.queue`
/// as the only remaining ready-path lock node.
#[derive(Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            // ALLOC: one overflow queue per engine run, at setup time.
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Enqueue at the back.
    pub fn push(&self, value: T) {
        // LOCK: global injector — seed time and overflow spills only.
        // ALLOC: VecDeque growth amortized over the run.
        let mut q = self.queue.lock();
        q.push_back(value);
        // ORDERING: Relaxed — heuristic length mirror; the mutex is the
        // synchronization point for the queue contents.
        self.len.store(q.len(), Ordering::Relaxed);
    }

    /// Dequeue from the front.
    pub fn steal(&self) -> Option<T> {
        // ORDERING: Relaxed empty pre-check — after the seed drains, all
        // workers poll the injector every loop; this keeps that poll off
        // the mutex.
        if self.len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        // LOCK: global injector mutex.
        let mut q = self.queue.lock();
        let v = q.pop_front();
        // ORDERING: Relaxed — heuristic mirror, see `push`.
        self.len.store(q.len(), Ordering::Relaxed);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = WorkerDeque::new();
        let s = w.stealer();
        w.push(1).unwrap();
        w.push(2).unwrap();
        w.push(3).unwrap();
        assert_eq!(s.steal(), Some(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn len_mirror_tracks_contents() {
        let w = WorkerDeque::new();
        let s = w.stealer();
        assert!(s.is_empty());
        w.push(1).unwrap();
        w.push(2).unwrap();
        assert_eq!(s.len(), 2);
        let _ = w.pop();
        assert_eq!(s.len(), 1);
        let _ = s.steal();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn bounded_push_returns_the_value_on_overflow() {
        let w = WorkerDeque::with_capacity(4);
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(w.push(99), Err(99), "full ring must hand the value back");
        // Draining one entry makes room again.
        assert_eq!(s_drain_one(&w), Some(0));
        w.push(99).unwrap();
        assert_eq!(w.spare(), 0);
    }

    fn s_drain_one(w: &WorkerDeque) -> Option<usize> {
        w.stealer().steal()
    }

    #[test]
    fn ring_wraps_around_without_losing_or_duplicating() {
        let w = WorkerDeque::with_capacity(4);
        let s = w.stealer();
        // Cycle far past the capacity so indices wrap the ring many
        // times; monotone u64 top/bottom keep every slot claim unique.
        for i in 0..1000usize {
            w.push(i).unwrap();
            let got = if i % 2 == 0 { w.pop() } else { s.steal() };
            assert_eq!(got, Some(i));
        }
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), None);
    }

    #[test]
    fn batched_steal_moves_half_and_returns_first() {
        let w = WorkerDeque::new();
        let s = w.stealer();
        for i in 0..8 {
            w.push(i).unwrap();
        }
        let mut moved = Vec::new();
        let first = s.steal_batch(8, |v| moved.push(v));
        // 8 available → goal is half: item 0 returned, 1..=3 to the sink.
        assert_eq!(first, Some(0));
        assert_eq!(moved, vec![1, 2, 3]);
        assert_eq!(s.len(), 4);
        // The victim keeps its hot end.
        assert_eq!(w.pop(), Some(7));
    }

    #[test]
    fn concurrent_steals_take_each_item_once() {
        let w = WorkerDeque::with_capacity(16_384);
        for i in 0..10_000usize {
            w.push(i).unwrap();
        }
        let taken = Mutex::new(vec![false; 10_000]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let taken = &taken;
                scope.spawn(move || {
                    // Contention returns None; scan until the deque is
                    // observably empty, not merely contended.
                    while !s.is_empty() {
                        if let Some(i) = s.steal() {
                            let mut t = taken.lock();
                            assert!(!t[i], "item {i} stolen twice");
                            t[i] = true;
                        }
                    }
                });
            }
        });
        assert!(taken.into_inner().into_iter().all(|b| b));
    }

    #[test]
    fn owner_and_thieves_race_without_loss() {
        const N: usize = 10_000;
        let w = WorkerDeque::with_capacity(16_384);
        for i in 0..N {
            w.push(i).unwrap();
        }
        let taken = Mutex::new(vec![false; N]);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = w.stealer();
                let taken = &taken;
                scope.spawn(move || {
                    while !s.is_empty() {
                        if let Some(i) = s.steal() {
                            let mut t = taken.lock();
                            assert!(!t[i], "item {i} taken twice");
                            t[i] = true;
                        }
                    }
                });
            }
            let taken = &taken;
            scope.spawn(move || {
                while let Some(i) = w.pop() {
                    let mut t = taken.lock();
                    assert!(!t[i], "item {i} taken twice");
                    t[i] = true;
                }
            });
        });
        assert!(taken.into_inner().into_iter().all(|b| b), "an item was lost");
    }

    #[test]
    fn injector_roundtrip() {
        let inj = Injector::new();
        inj.push(5);
        inj.push(6);
        assert_eq!(inj.steal(), Some(5));
        assert_eq!(inj.steal(), Some(6));
        assert_eq!(inj.steal(), None);
    }
}
