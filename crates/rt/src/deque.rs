//! Work-stealing deques for the PTG engine.
//!
//! The PaRSEC-like engine wants the classic owner-LIFO / thief-FIFO
//! discipline: the releasing worker pushes freshly-unlocked successors on
//! the *front* of its own deque (the written panel is still hot in cache)
//! while idle workers steal the *oldest* — coldest — entry from a victim.
//! This implementation trades the lock-free Chase-Lev protocol for a short
//! critical section around a `VecDeque`; the tasks it schedules are dense
//! linear-algebra kernels, so the per-task locking cost is noise, and the
//! semantics (LIFO owner, FIFO thieves) are identical.

use crate::sync::{Arc, Mutex};
use std::collections::VecDeque;

/// The owner's end of a work-stealing deque.
pub struct WorkerDeque<T> {
    shared: Arc<Mutex<VecDeque<T>>>,
}

/// A thief's handle onto some worker's deque.
pub struct Stealer<T> {
    shared: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Default for WorkerDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkerDeque<T> {
    /// New empty deque.
    pub fn new() -> WorkerDeque<T> {
        WorkerDeque {
            shared: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// A stealer handle for other workers.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Owner push (LIFO end).
    pub fn push(&self, value: T) {
        self.shared.lock().push_back(value);
    }

    /// Owner pop (LIFO end): the most recently released task.
    pub fn pop(&self) -> Option<T> {
        self.shared.lock().pop_back()
    }
}

impl<T> Stealer<T> {
    /// Steal from the FIFO end: the oldest (coldest) task.
    pub fn steal(&self) -> Option<T> {
        self.shared.lock().pop_front()
    }

    /// Number of queued tasks (racy snapshot, for victim selection).
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// `true` when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A global MPMC queue seeding the initially-ready tasks.
#[derive(Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueue at the back.
    pub fn push(&self, value: T) {
        self.queue.lock().push_back(value);
    }

    /// Dequeue from the front.
    pub fn steal(&self) -> Option<T> {
        self.queue.lock().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = WorkerDeque::new();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Some(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn concurrent_steals_take_each_item_once() {
        let w = WorkerDeque::new();
        for i in 0..10_000usize {
            w.push(i);
        }
        let taken = Mutex::new(vec![false; 10_000]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let taken = &taken;
                scope.spawn(move || {
                    while let Some(i) = s.steal() {
                        let mut t = taken.lock();
                        assert!(!t[i], "item {i} stolen twice");
                        t[i] = true;
                    }
                });
            }
        });
        assert!(taken.into_inner().into_iter().all(|b| b));
    }

    #[test]
    fn injector_roundtrip() {
        let inj = Injector::new();
        inj.push(5);
        inj.push(6);
        assert_eq!(inj.steal(), Some(5));
        assert_eq!(inj.steal(), Some(6));
        assert_eq!(inj.steal(), None);
    }
}
