//! Work-stealing deques for the PTG engine.
//!
//! The PaRSEC-like engine wants the classic owner-LIFO / thief-FIFO
//! discipline: the releasing worker pushes freshly-unlocked successors on
//! the *front* of its own deque (the written panel is still hot in cache)
//! while idle workers steal the *oldest* — coldest — entry from a victim.
//! This implementation trades the lock-free Chase-Lev protocol for a short
//! critical section around a `VecDeque`; the tasks it schedules are dense
//! linear-algebra kernels, so the per-task locking cost is noise, and the
//! semantics (LIFO owner, FIFO thieves) are identical.
//!
//! Victim *selection*, however, is lock-free: each deque maintains an
//! atomic length mirror under its lock, so `Stealer::len`/`is_empty` and
//! the empty-check in `steal` never serialize scanning thieves on the
//! victims' mutexes. A stale mirror costs one wasted lock or one missed
//! round of a polling loop — never a lost task.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};
use std::collections::VecDeque;

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Length mirror, written under `queue`'s lock.
    len: AtomicUsize,
}

impl<T> Shared<T> {
    fn new() -> Shared<T> {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }
}

/// The owner's end of a work-stealing deque.
pub struct WorkerDeque<T> {
    shared: Arc<Shared<T>>,
}

/// A thief's handle onto some worker's deque.
pub struct Stealer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Default for WorkerDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkerDeque<T> {
    /// New empty deque.
    pub fn new() -> WorkerDeque<T> {
        WorkerDeque {
            shared: Arc::new(Shared::new()),
        }
    }

    /// A stealer handle for other workers.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Owner push (LIFO end).
    pub fn push(&self, value: T) {
        // LOCK: owner/thief deque protocol, model-checked in
        // tests/loom_models.rs. ALLOC: VecDeque growth is amortized —
        // the buffer is retained across the whole run, reaching its
        // high-water mark within the first DAG wave.
        let mut q = self.shared.queue.lock();
        q.push_back(value);
        // ORDERING: Relaxed — the mirror is a victim-selection
        // heuristic; the mutex synchronizes the queue contents.
        self.shared.len.store(q.len(), Ordering::Relaxed);
    }

    /// Owner pop (LIFO end): the most recently released task.
    pub fn pop(&self) -> Option<T> {
        // ORDERING: Relaxed empty pre-check skips the lock when the own
        // deque is dry; the PTG worker loop polls, so a racing push is
        // seen next round.
        if self.shared.len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        // LOCK: owner/thief deque protocol (see `push`).
        let mut q = self.shared.queue.lock();
        let v = q.pop_back();
        // ORDERING: Relaxed — heuristic mirror, see `push`.
        self.shared.len.store(q.len(), Ordering::Relaxed);
        v
    }
}

impl<T> Stealer<T> {
    /// Steal from the FIFO end: the oldest (coldest) task.
    pub fn steal(&self) -> Option<T> {
        // ORDERING: Relaxed empty pre-check — scanning thieves skip
        // empty victims without touching their mutexes.
        if self.shared.len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        // LOCK: owner/thief deque protocol (see `WorkerDeque::push`).
        let mut q = self.shared.queue.lock();
        let v = q.pop_front();
        // ORDERING: Relaxed — heuristic mirror, see `WorkerDeque::push`.
        self.shared.len.store(q.len(), Ordering::Relaxed);
        v
    }

    /// Number of queued tasks (racy snapshot, for victim selection) —
    /// lock-free.
    pub fn len(&self) -> usize {
        // ORDERING: Relaxed — racy by contract.
        self.shared.len.load(Ordering::Relaxed)
    }

    /// `true` when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A global MPMC queue seeding the initially-ready tasks.
#[derive(Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Enqueue at the back.
    pub fn push(&self, value: T) {
        // LOCK: global injector — touched once per task at seed time.
        // ALLOC: VecDeque growth amortized over the run (see
        // `WorkerDeque::push`).
        let mut q = self.queue.lock();
        q.push_back(value);
        // ORDERING: Relaxed — heuristic mirror, see `WorkerDeque::push`.
        self.len.store(q.len(), Ordering::Relaxed);
    }

    /// Dequeue from the front.
    pub fn steal(&self) -> Option<T> {
        // ORDERING: Relaxed empty pre-check — after the seed drains, all
        // workers poll the injector every loop; this keeps that poll off
        // the mutex.
        if self.len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        // LOCK: global injector mutex.
        let mut q = self.queue.lock();
        let v = q.pop_front();
        // ORDERING: Relaxed — heuristic mirror, see `push`.
        self.len.store(q.len(), Ordering::Relaxed);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = WorkerDeque::new();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Some(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn len_mirror_tracks_contents() {
        let w = WorkerDeque::new();
        let s = w.stealer();
        assert!(s.is_empty());
        w.push(1);
        w.push(2);
        assert_eq!(s.len(), 2);
        let _ = w.pop();
        assert_eq!(s.len(), 1);
        let _ = s.steal();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_steals_take_each_item_once() {
        let w = WorkerDeque::new();
        for i in 0..10_000usize {
            w.push(i);
        }
        let taken = Mutex::new(vec![false; 10_000]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let taken = &taken;
                scope.spawn(move || {
                    while let Some(i) = s.steal() {
                        let mut t = taken.lock();
                        assert!(!t[i], "item {i} stolen twice");
                        t[i] = true;
                    }
                });
            }
        });
        assert!(taken.into_inner().into_iter().all(|b| b));
    }

    #[test]
    fn injector_roundtrip() {
        let inj = Injector::new();
        inj.push(5);
        inj.push(6);
        assert_eq!(inj.steal(), Some(5));
        assert_eq!(inj.steal(), Some(6));
        assert_eq!(inj.steal(), None);
    }
}
