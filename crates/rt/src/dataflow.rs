//! The StarPU-like engine: sequential task submission with data access
//! modes, inferred dependencies, and a centralized scheduler.
//!
//! Mirrors the StarPU programming model of §IV: "applications submit
//! computational tasks […] and STARPU schedules these tasks and associated
//! data transfers". Tasks are inserted by one thread in program order with
//! `(data, access-mode)` pairs; the engine derives the dependency graph
//! from data hazards:
//!
//! * **RAW** — a reader depends on the last writer;
//! * **WAR** — a writer depends on every reader since the last writer;
//! * **WAW** — writers on the same datum are chained.
//!
//! Execution pulls from a single centralized priority queue ("STARPU
//! relies on a centralized strategy", §IV); there is deliberately no
//! per-worker locality structure, reflecting the paper's observation that
//! StarPU "does not have a data-reuse policy on CPU-shared memory systems"
//! (§IV/§V-A).

use crate::{AccessMode, DataId, TaskId};
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Which central scheduling strategy the engine uses — the CPU-side
/// members of StarPU's scheduler family (§IV: "it allows scheduling
/// experts … to implement custom scheduling policies in a portable
/// fashion").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// StarPU's `eager`: plain FIFO, no priorities.
    Eager,
    /// StarPU's `prio`/`dmda` CPU behaviour: highest priority first
    /// (default).
    #[default]
    Priority,
}

/// A submitted task: body + metadata.
struct Task<'a> {
    body: Box<dyn FnOnce(usize) + Send + 'a>,
    priority: f64,
    npred: u32,
    succs: Vec<TaskId>,
}

/// Per-datum hazard-tracking state during submission.
#[derive(Default, Clone)]
struct DataState {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Sequential-submission dataflow graph under construction.
///
/// Usage: `submit` tasks in program order, then [`DataflowGraph::execute`].
pub struct DataflowGraph<'a> {
    tasks: Vec<Task<'a>>,
    data: Vec<DataState>,
}

impl<'a> Default for DataflowGraph<'a> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<'a> DataflowGraph<'a> {
    /// New graph over `ndata` trackable data handles.
    pub fn new(ndata: usize) -> Self {
        DataflowGraph {
            tasks: Vec::new(),
            data: vec![DataState::default(); ndata],
        }
    }

    /// Number of submitted tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Submit a task touching `accesses`, to run `body(worker)`. Returns
    /// the task id. Dependencies on previously-submitted tasks are
    /// inferred from the access modes (RAW, WAR, WAW).
    pub fn submit(
        &mut self,
        accesses: &[(DataId, AccessMode)],
        priority: f64,
        body: impl FnOnce(usize) + Send + 'a,
    ) -> TaskId {
        let id = self.tasks.len();
        let mut preds: Vec<TaskId> = Vec::new();
        for &(d, mode) in accesses {
            assert!(d < self.data.len(), "data handle {d} not registered");
            let st = &mut self.data[d];
            if mode.reads() {
                if let Some(w) = st.last_writer {
                    preds.push(w); // RAW
                }
            }
            if mode.writes() {
                if let Some(w) = st.last_writer {
                    preds.push(w); // WAW
                }
                preds.extend(st.readers_since_write.iter().copied()); // WAR
                st.last_writer = Some(id);
                st.readers_since_write.clear();
            } else {
                st.readers_since_write.push(id);
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        let npred = preds.len() as u32;
        for p in preds {
            self.tasks[p].succs.push(id);
        }
        self.tasks.push(Task {
            body: Box::new(body),
            priority,
            npred,
            succs: Vec::new(),
        });
        id
    }

    /// Execute the whole graph on `nworkers` threads and consume it,
    /// using the default [`SchedulerPolicy::Priority`] strategy.
    pub fn execute(self, nworkers: usize) {
        self.execute_with(nworkers, SchedulerPolicy::Priority)
    }

    /// Execute with an explicit central scheduling policy.
    pub fn execute_with(self, nworkers: usize, policy: SchedulerPolicy) {
        assert!(nworkers >= 1);
        let ntasks = self.tasks.len();
        if ntasks == 0 {
            return;
        }
        // Split bodies (FnOnce, consumed) from metadata (shared).
        let mut bodies: Vec<Option<Box<dyn FnOnce(usize) + Send + 'a>>> = Vec::with_capacity(ntasks);
        let mut meta: Vec<(f64, Vec<TaskId>)> = Vec::with_capacity(ntasks);
        let mut pending: Vec<AtomicU32> = Vec::with_capacity(ntasks);
        let mut initial: Vec<TaskId> = Vec::new();
        for (i, t) in self.tasks.into_iter().enumerate() {
            if t.npred == 0 {
                initial.push(i);
            }
            pending.push(AtomicU32::new(t.npred));
            meta.push((t.priority, t.succs));
            bodies.push(Some(t.body));
        }
        let bodies = BodyStore {
            slots: bodies.into_iter().map(Mutex::new).collect(),
        };
        let central = CentralQueue {
            queue: Mutex::new(ReadyQueue::new(policy)),
            cv: Condvar::new(),
            remaining: AtomicUsize::new(ntasks),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        };
        for t in initial {
            central.push(meta[t].0, t);
        }
        let worker = |w: usize| loop {
            let Some(t) = central.pop() else { break };
            let body = bodies.slots[t].lock().take().expect("task ran twice");
            // Poison-and-propagate on panic so blocked workers wake and
            // drain instead of waiting on the condvar forever.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(w)));
            if let Err(payload) = result {
                central.poison();
                std::panic::resume_unwind(payload);
            }
            for &s in &meta[t].1 {
                if pending[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                    central.push(meta[s].0, s);
                }
            }
            central.finish_one();
        };
        if nworkers == 1 {
            worker(0);
        } else {
            std::thread::scope(|scope| {
                for w in 1..nworkers {
                    let worker = &worker;
                    scope.spawn(move || worker(w));
                }
                worker(0);
            });
        }
    }
}

struct BodyStore<'a> {
    slots: Vec<Mutex<Option<Box<dyn FnOnce(usize) + Send + 'a>>>>,
}
// SAFETY: bodies are Send; each is taken and run by exactly one worker.
unsafe impl Sync for BodyStore<'_> {}

/// Policy-selected ready-task container.
enum ReadyQueue {
    Fifo(VecDeque<TaskId>),
    Prio(BinaryHeap<QEntry>),
}

impl ReadyQueue {
    fn new(policy: SchedulerPolicy) -> Self {
        match policy {
            SchedulerPolicy::Eager => ReadyQueue::Fifo(VecDeque::new()),
            SchedulerPolicy::Priority => ReadyQueue::Prio(BinaryHeap::new()),
        }
    }
    fn push(&mut self, priority: f64, task: TaskId) {
        match self {
            ReadyQueue::Fifo(q) => q.push_back(task),
            ReadyQueue::Prio(h) => h.push(QEntry { priority, task }),
        }
    }
    fn pop(&mut self) -> Option<TaskId> {
        match self {
            ReadyQueue::Fifo(q) => q.pop_front(),
            ReadyQueue::Prio(h) => h.pop().map(|e| e.task),
        }
    }
}

struct CentralQueue {
    queue: Mutex<ReadyQueue>,
    cv: Condvar,
    remaining: AtomicUsize,
    poisoned: std::sync::atomic::AtomicBool,
}

#[derive(PartialEq)]
struct QEntry {
    priority: f64,
    task: TaskId,
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap()
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl CentralQueue {
    fn push(&self, priority: f64, task: TaskId) {
        self.queue.lock().push(priority, task);
        self.cv.notify_one();
    }

    /// Pop the highest-priority ready task, blocking while work remains;
    /// returns `None` once the run is complete or poisoned.
    fn pop(&self) -> Option<TaskId> {
        let mut queue = self.queue.lock();
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                return None;
            }
            if let Some(t) = queue.pop() {
                return Some(t);
            }
            if self.remaining.load(Ordering::Acquire) == 0 {
                self.cv.notify_all();
                return None;
            }
            self.cv.wait(&mut queue);
        }
    }

    /// Mark the run as failed and wake every blocked worker.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _guard = self.queue.lock();
        self.cv.notify_all();
    }

    fn finish_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn raw_dependency_orders_writer_before_reader() {
        for nworkers in [1, 4] {
            let log = StdMutex::new(Vec::new());
            let mut g = DataflowGraph::new(1);
            g.submit(&[(0, AccessMode::Write)], 0.0, |_| log.lock().unwrap().push("w"));
            g.submit(&[(0, AccessMode::Read)], 10.0, |_| log.lock().unwrap().push("r1"));
            g.submit(&[(0, AccessMode::Read)], 10.0, |_| log.lock().unwrap().push("r2"));
            g.execute(nworkers);
            let log = log.into_inner().unwrap();
            assert_eq!(log[0], "w");
            assert_eq!(log.len(), 3);
        }
    }

    #[test]
    fn war_dependency_orders_readers_before_writer() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(1);
        g.submit(&[(0, AccessMode::Write)], 0.0, |_| log.lock().unwrap().push(0));
        g.submit(&[(0, AccessMode::Read)], 0.0, |_| log.lock().unwrap().push(1));
        g.submit(&[(0, AccessMode::Read)], 0.0, |_| log.lock().unwrap().push(2));
        // Overwriter must wait for both readers (WAR) and the writer (WAW).
        g.submit(&[(0, AccessMode::ReadWrite)], 100.0, |_| log.lock().unwrap().push(3));
        g.execute(4);
        let log = log.into_inner().unwrap();
        assert_eq!(*log.last().unwrap(), 3);
    }

    #[test]
    fn independent_data_run_concurrently_correctly() {
        // 100 chains on 100 independent data: total order within a chain.
        let n = 100;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let mut g = DataflowGraph::new(n);
        for step in 0..5usize {
            for d in 0..n {
                let counters = &counters;
                g.submit(&[(d, AccessMode::ReadWrite)], 0.0, move |_| {
                    // Each step must observe exactly `step` prior steps.
                    let prev = counters[d].fetch_add(1, Ordering::SeqCst);
                    assert_eq!(prev, step, "chain {d} ran out of order");
                });
            }
        }
        g.execute(4);
        for c in &counters {
            assert_eq!(c.load(Ordering::SeqCst), 5);
        }
    }

    #[test]
    fn reduction_pattern_rw_accumulation() {
        // Many RW tasks on one accumulator are serialized by WAW/RAW.
        let acc = StdMutex::new(0u64);
        let mut g = DataflowGraph::new(1);
        for i in 0..50u64 {
            let acc = &acc;
            g.submit(&[(0, AccessMode::ReadWrite)], i as f64, move |_| {
                *acc.lock().unwrap() += i;
            });
        }
        g.execute(4);
        assert_eq!(*acc.lock().unwrap(), (0..50).sum());
    }

    #[test]
    fn priorities_pick_urgent_tasks_first_single_worker() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(3);
        // Three independent tasks; single worker must run by priority.
        g.submit(&[(0, AccessMode::Write)], 1.0, |_| log.lock().unwrap().push(1));
        g.submit(&[(1, AccessMode::Write)], 3.0, |_| log.lock().unwrap().push(3));
        g.submit(&[(2, AccessMode::Write)], 2.0, |_| log.lock().unwrap().push(2));
        g.execute(1);
        assert_eq!(log.into_inner().unwrap(), vec![3, 2, 1]);
    }

    #[test]
    fn empty_graph_executes() {
        DataflowGraph::new(0).execute(3);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn eager_policy_runs_in_submission_order_single_worker() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(3);
        // Priorities deliberately inverted: eager must ignore them.
        g.submit(&[(0, AccessMode::Write)], 1.0, |_| log.lock().unwrap().push(0));
        g.submit(&[(1, AccessMode::Write)], 9.0, |_| log.lock().unwrap().push(1));
        g.submit(&[(2, AccessMode::Write)], 5.0, |_| log.lock().unwrap().push(2));
        g.execute_with(1, SchedulerPolicy::Eager);
        assert_eq!(log.into_inner().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn priority_policy_reorders_independent_tasks() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(3);
        g.submit(&[(0, AccessMode::Write)], 1.0, |_| log.lock().unwrap().push(0));
        g.submit(&[(1, AccessMode::Write)], 9.0, |_| log.lock().unwrap().push(1));
        g.submit(&[(2, AccessMode::Write)], 5.0, |_| log.lock().unwrap().push(2));
        g.execute_with(1, SchedulerPolicy::Priority);
        assert_eq!(log.into_inner().unwrap(), vec![1, 2, 0]);
    }

    #[test]
    fn both_policies_respect_dependencies() {
        for policy in [SchedulerPolicy::Eager, SchedulerPolicy::Priority] {
            let log = StdMutex::new(Vec::new());
            let mut g = DataflowGraph::new(1);
            for i in 0..32usize {
                let log = &log;
                g.submit(&[(0, AccessMode::ReadWrite)], (i % 7) as f64, move |_| {
                    log.lock().unwrap().push(i)
                });
            }
            g.execute_with(4, policy);
            assert_eq!(log.into_inner().unwrap(), (0..32).collect::<Vec<_>>(), "{policy:?}");
        }
    }
}
