//! The StarPU-like engine: sequential task submission with data access
//! modes, inferred dependencies, and a centralized scheduler.
//!
//! Mirrors the StarPU programming model of §IV: "applications submit
//! computational tasks […] and STARPU schedules these tasks and associated
//! data transfers". Tasks are inserted by one thread in program order with
//! `(data, access-mode)` pairs; the engine derives the dependency graph
//! from data hazards:
//!
//! * **RAW** — a reader depends on the last writer;
//! * **WAR** — a writer depends on every reader since the last writer;
//! * **WAW** — writers on the same datum are chained.
//!
//! Execution pulls from a single centralized priority queue ("STARPU
//! relies on a centralized strategy", §IV); there is deliberately no
//! per-worker locality structure, reflecting the paper's observation that
//! StarPU "does not have a data-reuse policy on CPU-shared memory systems"
//! (§IV/§V-A).
//!
//! Two execution paths share the scheduler:
//! [`DataflowGraph::execute_checked`] runs under the fault-tolerant layer
//! of [`crate::fault`] (panic capture, transient retry, watchdog) and
//! returns `Result<RunReport, EngineError>`; the legacy
//! [`DataflowGraph::execute`] wraps it and panics on the *calling* thread
//! if the run fails.

use crate::fault::{EngineError, RunConfig, RunReport, Supervisor, TaskOutcome};
use crate::shared::release_pending;
use crate::sync::atomic::AtomicU32;
use crate::sync::{Condvar, Mutex};
use crate::trace::{Lane, SpanKind};
use crate::{AccessMode, DataId, TaskId};
use std::collections::{BinaryHeap, VecDeque};

/// Which central scheduling strategy the engine uses — the CPU-side
/// members of StarPU's scheduler family (§IV: "it allows scheduling
/// experts … to implement custom scheduling policies in a portable
/// fashion").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// StarPU's `eager`: plain FIFO, no priorities.
    Eager,
    /// StarPU's `prio`/`dmda` CPU behaviour: highest priority first
    /// (default).
    #[default]
    Priority,
}

/// A submitted task: body + metadata. Bodies are `FnMut` so a transiently
/// failed attempt can be retried by the checked execution path. The
/// declared accesses are retained so the verifier
/// ([`DataflowGraph::to_spec`]) can re-derive the hazard contract.
struct Task<'a> {
    body: Box<dyn FnMut(usize) + Send + 'a>,
    priority: f64,
    npred: u32,
    succs: Vec<TaskId>,
    accesses: Vec<(DataId, AccessMode)>,
}

/// A malformed explicit dependency passed to
/// [`DataflowGraph::add_dependency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint is not a submitted task id.
    UnknownTask {
        /// The offending id.
        task: TaskId,
        /// Tasks submitted so far.
        ntasks: usize,
    },
    /// `pred == succ`: the edge would deadlock the task against itself.
    SelfDependency {
        /// The offending id.
        task: TaskId,
    },
}

impl core::fmt::Display for GraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphError::UnknownTask { task, ntasks } => {
                write!(f, "task {task} does not exist ({ntasks} submitted)")
            }
            GraphError::SelfDependency { task } => {
                write!(f, "task {task} cannot depend on itself")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Per-datum hazard-tracking state during submission.
#[derive(Default, Clone)]
struct DataState {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Sequential-submission dataflow graph under construction.
///
/// Usage: `submit` tasks in program order, then [`DataflowGraph::execute`]
/// or [`DataflowGraph::execute_checked`].
pub struct DataflowGraph<'a> {
    tasks: Vec<Task<'a>>,
    data: Vec<DataState>,
}

impl<'a> Default for DataflowGraph<'a> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<'a> DataflowGraph<'a> {
    /// New graph over `ndata` trackable data handles.
    pub fn new(ndata: usize) -> Self {
        DataflowGraph {
            tasks: Vec::new(),
            data: vec![DataState::default(); ndata],
        }
    }

    /// Number of submitted tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Submit a task touching `accesses`, to run `body(worker)`. Returns
    /// the task id. Dependencies on previously-submitted tasks are
    /// inferred from the access modes (RAW, WAR, WAW).
    pub fn submit(
        &mut self,
        accesses: &[(DataId, AccessMode)],
        priority: f64,
        body: impl FnMut(usize) + Send + 'a,
    ) -> TaskId {
        let id = self.tasks.len();
        let mut preds: Vec<TaskId> = Vec::new();
        for &(d, mode) in accesses {
            assert!(d < self.data.len(), "data handle {d} not registered");
            let st = &mut self.data[d];
            if mode.reads() {
                if let Some(w) = st.last_writer {
                    preds.push(w); // RAW
                }
            }
            if mode.writes() {
                if let Some(w) = st.last_writer {
                    preds.push(w); // WAW
                }
                preds.extend(st.readers_since_write.iter().copied()); // WAR
                st.last_writer = Some(id);
                st.readers_since_write.clear();
            } else {
                st.readers_since_write.push(id);
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);
        let npred = preds.len() as u32;
        for p in preds {
            self.tasks[p].succs.push(id);
        }
        self.tasks.push(Task {
            body: Box::new(body),
            priority,
            npred,
            succs: Vec::new(),
            accesses: accesses.to_vec(),
        });
        id
    }

    /// Add an explicit `pred → succ` edge on top of the inferred hazards
    /// (e.g. a control dependency with no shared datum). Both tasks must
    /// already be submitted ([`GraphError::UnknownTask`] otherwise) and
    /// distinct ([`GraphError::SelfDependency`] — a self-edge could never
    /// become ready and would hang the run). Duplicate edges are
    /// deduplicated and succeed as no-ops.
    pub fn add_dependency(&mut self, pred: TaskId, succ: TaskId) -> Result<(), GraphError> {
        let ntasks = self.tasks.len();
        for t in [pred, succ] {
            if t >= ntasks {
                return Err(GraphError::UnknownTask { task: t, ntasks });
            }
        }
        if pred == succ {
            return Err(GraphError::SelfDependency { task: pred });
        }
        if self.tasks[pred].succs.contains(&succ) {
            return Ok(());
        }
        self.tasks[pred].succs.push(succ);
        self.tasks[succ].npred += 1;
        Ok(())
    }

    /// All dependency edges (`pred → succ`) of the submitted graph —
    /// inferred hazards plus explicit dependencies. Used to register the
    /// measured DAG with a [`crate::trace::TraceRecorder`].
    pub fn edges(&self) -> Vec<(TaskId, TaskId)> {
        self.tasks
            .iter()
            .enumerate()
            .flat_map(|(t, task)| task.succs.iter().map(move |&s| (t, s)))
            .collect()
    }

    /// Export the submitted graph (inferred hazard edges + explicit
    /// dependencies + declared accesses) for the static verifier.
    pub fn to_spec(&self) -> crate::verify::GraphSpec {
        let mut spec = crate::verify::GraphSpec::new(self.tasks.len());
        for (t, task) in self.tasks.iter().enumerate() {
            for &(d, mode) in &task.accesses {
                spec.access(t, d, mode.into());
            }
            for &s in &task.succs {
                spec.edge(t, s);
            }
        }
        spec
    }

    /// Execute the whole graph on `nworkers` threads and consume it,
    /// using the default [`SchedulerPolicy::Priority`] strategy.
    ///
    /// Panics on the calling thread if a task panics; prefer
    /// [`DataflowGraph::execute_checked`] for structured errors.
    pub fn execute(self, nworkers: usize) {
        self.execute_with(nworkers, SchedulerPolicy::Priority)
    }

    /// Execute with an explicit central scheduling policy (panicking
    /// error path, see [`DataflowGraph::execute`]).
    pub fn execute_with(self, nworkers: usize, policy: SchedulerPolicy) {
        if let Err(e) = self.execute_checked_with(nworkers, policy, RunConfig::default()) {
            panic!("dataflow engine failed: {e}");
        }
    }

    /// Execute under the fault-tolerant layer with the default priority
    /// policy: task panics are caught and surfaced as [`EngineError`],
    /// transient failures are retried per `config.retry`, and the
    /// watchdog converts a stalled scheduler into
    /// [`EngineError::Stalled`].
    pub fn execute_checked(
        self,
        nworkers: usize,
        config: RunConfig,
    ) -> Result<RunReport, EngineError> {
        self.execute_checked_with(nworkers, SchedulerPolicy::Priority, config)
    }

    /// [`DataflowGraph::execute_checked`] with an explicit policy.
    pub fn execute_checked_with(
        self,
        nworkers: usize,
        policy: SchedulerPolicy,
        config: RunConfig,
    ) -> Result<RunReport, EngineError> {
        if nworkers == 0 {
            return Err(EngineError::NoWorkers);
        }
        let ntasks = self.tasks.len();
        let tracer = config.trace.clone();
        let sup = Supervisor::new(ntasks, config);
        if ntasks == 0 {
            return sup.finish();
        }
        // Split bodies (taken per attempt, restored on retry) from the
        // shared metadata.
        let mut bodies: Vec<Mutex<BodySlot<'a>>> = Vec::with_capacity(ntasks);
        let mut meta: Vec<(f64, Vec<TaskId>)> = Vec::with_capacity(ntasks);
        let mut pending: Vec<AtomicU32> = Vec::with_capacity(ntasks);
        let mut initial: Vec<TaskId> = Vec::new();
        for (i, t) in self.tasks.into_iter().enumerate() {
            if t.npred == 0 {
                initial.push(i);
            }
            pending.push(AtomicU32::new(t.npred));
            meta.push((t.priority, t.succs));
            bodies.push(Mutex::new(Some(t.body)));
        }
        let bodies = BodyStore { slots: bodies };
        let central = CentralQueue {
            queue: Mutex::new(ReadyQueue::new(policy)),
            cv: Condvar::new(),
        };
        for t in initial {
            central.push(meta[t].0, t);
        }
        let supref = &sup;
        let traceref = tracer.as_deref();
        let worker = |w: usize| {
            let mut lane = Lane::new(traceref, w);
            loop {
                // Time spent blocked on the central queue is the engine's
                // queue-wait (there is no per-worker stealing here).
                let wait_from = lane.now();
                let Some(t) = central.pop(supref) else { break };
                lane.record(SpanKind::QueueWait, Some(t), wait_from);
                // An empty slot means the scheduler dispatched `t` twice —
                // surface the engine bug as a structured error, not a panic.
                let Some(mut body) = bodies.slots[t].lock().take() else {
                    sup.duplicate_execution(t);
                    central.wake_all();
                    break;
                };
                let exec_from = lane.now();
                let outcome = sup.run_task(t, || body(w));
                lane.record(SpanKind::Execute, Some(t), exec_from);
                match outcome {
                    TaskOutcome::Completed => {
                        drop(body);
                        // Checked fan-in decrement: a double release
                        // (duplicate hazard edge / understated npred)
                        // poisons the run instead of wrapping the counter.
                        let mut underflow = false;
                        for &s in &meta[t].1 {
                            match release_pending(&pending[s], s) {
                                Ok(true) => central.push(meta[s].0, s),
                                Ok(false) => {}
                                Err(e) => {
                                    sup.poison_with(EngineError::ReleaseUnderflow {
                                        task: e.succ,
                                    });
                                    underflow = true;
                                    break;
                                }
                            }
                        }
                        if underflow {
                            central.wake_all();
                            break;
                        }
                        sup.task_done(t);
                        if sup.remaining() == 0 {
                            central.wake_all();
                        }
                    }
                    TaskOutcome::Retry => {
                        *bodies.slots[t].lock() = Some(body);
                        central.push(meta[t].0, t);
                    }
                    TaskOutcome::Aborted => {
                        central.wake_all();
                        break;
                    }
                }
            }
        };
        if nworkers == 1 {
            worker(0);
        } else {
            std::thread::scope(|scope| {
                for w in 1..nworkers {
                    let worker = &worker;
                    scope.spawn(move || worker(w));
                }
                worker(0);
            });
        }
        sup.finish()
    }
}

type BodySlot<'a> = Option<Box<dyn FnMut(usize) + Send + 'a>>;

struct BodyStore<'a> {
    slots: Vec<Mutex<BodySlot<'a>>>,
}
// SAFETY: bodies are Send; each is held and run by exactly one worker at
// a time (the slot is emptied while an attempt runs).
unsafe impl Sync for BodyStore<'_> {}

/// Policy-selected ready-task container.
enum ReadyQueue {
    Fifo(VecDeque<TaskId>),
    Prio(BinaryHeap<QEntry>),
}

impl ReadyQueue {
    fn new(policy: SchedulerPolicy) -> Self {
        // ALLOC: empty containers at scheduler construction, once per run.
        match policy {
            SchedulerPolicy::Eager => ReadyQueue::Fifo(VecDeque::new()),
            SchedulerPolicy::Priority => ReadyQueue::Prio(BinaryHeap::new()),
        }
    }
    fn push(&mut self, priority: f64, task: TaskId) {
        match self {
            ReadyQueue::Fifo(q) => q.push_back(task),
            ReadyQueue::Prio(h) => h.push(QEntry { priority, task }),
        }
    }
    fn pop(&mut self) -> Option<TaskId> {
        match self {
            ReadyQueue::Fifo(q) => q.pop_front(),
            ReadyQueue::Prio(h) => h.pop().map(|e| e.task),
        }
    }
}

struct CentralQueue {
    queue: Mutex<ReadyQueue>,
    cv: Condvar,
}

#[derive(PartialEq)]
struct QEntry {
    priority: f64,
    task: TaskId,
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // total_cmp: NaN priorities order deterministically instead of
        // panicking inside the scheduler.
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.task.cmp(&self.task))
    }
}

impl CentralQueue {
    fn push(&self, priority: f64, task: TaskId) {
        self.queue.lock().push(priority, task);
        self.cv.notify_one();
    }

    /// Pop the highest-priority ready task, blocking while work remains;
    /// returns `None` once the run is complete, failed, or stalled. The
    /// wait is timed so blocked workers periodically service the
    /// supervisor's watchdog.
    fn pop(&self, sup: &Supervisor) -> Option<TaskId> {
        let mut queue = self.queue.lock();
        loop {
            if sup.halted() {
                return None;
            }
            // Memory-pressure throttle: leave ready tasks queued (and
            // wait out a tick) while the admission width is saturated.
            if sup.try_admit() {
                if let Some(t) = queue.pop() {
                    return Some(t);
                }
            }
            if sup.remaining() == 0 {
                self.cv.notify_all();
                return None;
            }
            queue = self.cv.wait_timeout(queue, sup.idle_tick());
            sup.idle_check();
        }
    }

    /// Wake every blocked worker (completion, abort, or stall).
    fn wake_all(&self) {
        let _guard = self.queue.lock();
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn raw_dependency_orders_writer_before_reader() {
        for nworkers in [1, 4] {
            let log = StdMutex::new(Vec::new());
            let mut g = DataflowGraph::new(1);
            g.submit(&[(0, AccessMode::Write)], 0.0, |_| log.lock().expect("log lock").push("w"));
            g.submit(&[(0, AccessMode::Read)], 10.0, |_| log.lock().expect("log lock").push("r1"));
            g.submit(&[(0, AccessMode::Read)], 10.0, |_| log.lock().expect("log lock").push("r2"));
            g.execute(nworkers);
            let log = log.into_inner().expect("log lock");
            assert_eq!(log[0], "w");
            assert_eq!(log.len(), 3);
        }
    }

    #[test]
    fn war_dependency_orders_readers_before_writer() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(1);
        g.submit(&[(0, AccessMode::Write)], 0.0, |_| log.lock().expect("log lock").push(0));
        g.submit(&[(0, AccessMode::Read)], 0.0, |_| log.lock().expect("log lock").push(1));
        g.submit(&[(0, AccessMode::Read)], 0.0, |_| log.lock().expect("log lock").push(2));
        // Overwriter must wait for both readers (WAR) and the writer (WAW).
        g.submit(&[(0, AccessMode::ReadWrite)], 100.0, |_| log.lock().expect("log lock").push(3));
        g.execute(4);
        let log = log.into_inner().expect("log lock");
        assert_eq!(*log.last().expect("log is non-empty"), 3);
    }

    #[test]
    fn independent_data_run_concurrently_correctly() {
        // 100 chains on 100 independent data: total order within a chain.
        let n = 100;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let mut g = DataflowGraph::new(n);
        for step in 0..5usize {
            for d in 0..n {
                let counters = &counters;
                g.submit(&[(d, AccessMode::ReadWrite)], 0.0, move |_| {
                    // Each step must observe exactly `step` prior steps.
                    let prev = counters[d].fetch_add(1, Ordering::SeqCst);
                    assert_eq!(prev, step, "chain {d} ran out of order");
                });
            }
        }
        g.execute(4);
        for c in &counters {
            assert_eq!(c.load(Ordering::SeqCst), 5);
        }
    }

    #[test]
    fn reduction_pattern_rw_accumulation() {
        // Many RW tasks on one accumulator are serialized by WAW/RAW.
        let acc = StdMutex::new(0u64);
        let mut g = DataflowGraph::new(1);
        for i in 0..50u64 {
            let acc = &acc;
            g.submit(&[(0, AccessMode::ReadWrite)], i as f64, move |_| {
                *acc.lock().expect("accumulator lock") += i;
            });
        }
        g.execute(4);
        assert_eq!(*acc.lock().expect("accumulator lock"), (0..50).sum());
    }

    #[test]
    fn priorities_pick_urgent_tasks_first_single_worker() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(3);
        // Three independent tasks; single worker must run by priority.
        g.submit(&[(0, AccessMode::Write)], 1.0, |_| log.lock().expect("log lock").push(1));
        g.submit(&[(1, AccessMode::Write)], 3.0, |_| log.lock().expect("log lock").push(3));
        g.submit(&[(2, AccessMode::Write)], 2.0, |_| log.lock().expect("log lock").push(2));
        g.execute(1);
        assert_eq!(log.into_inner().expect("log lock"), vec![3, 2, 1]);
    }

    #[test]
    fn empty_graph_executes() {
        DataflowGraph::new(0).execute(3);
    }

    #[test]
    fn explicit_dependency_orders_unrelated_tasks() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(2);
        // Two tasks on disjoint data — no inferred edge; the explicit
        // control dependency must still order them.
        let a = g.submit(&[(0, AccessMode::Write)], 0.0, |_| log.lock().expect("log lock").push("a"));
        let b = g.submit(&[(1, AccessMode::Write)], 100.0, |_| log.lock().expect("log lock").push("b"));
        // Run b first despite submission order; the duplicate is a no-op.
        g.add_dependency(b, a).expect("valid edge");
        g.add_dependency(b, a).expect("duplicate edge is accepted");
        g.execute(4);
        assert_eq!(log.into_inner().expect("log lock"), vec!["b", "a"]);
    }

    #[test]
    fn add_dependency_rejects_self_dependency() {
        let mut g = DataflowGraph::new(1);
        let t = g.submit(&[(0, AccessMode::Write)], 0.0, |_| {});
        assert_eq!(
            g.add_dependency(t, t),
            Err(GraphError::SelfDependency { task: t })
        );
        // The graph is still runnable: the bad edge was not recorded.
        g.execute(2);
    }

    #[test]
    fn add_dependency_rejects_dangling_task_ids() {
        let mut g = DataflowGraph::new(1);
        let t = g.submit(&[(0, AccessMode::Write)], 0.0, |_| {});
        assert_eq!(
            g.add_dependency(t, 7),
            Err(GraphError::UnknownTask { task: 7, ntasks: 1 })
        );
        assert_eq!(
            g.add_dependency(9, t),
            Err(GraphError::UnknownTask { task: 9, ntasks: 1 })
        );
        g.execute(2);
    }

    #[test]
    fn duplicate_edges_do_not_inflate_predecessor_counts() {
        // A duplicated explicit edge must not leave `npred` too high —
        // that would make the successor wait forever (silent hang).
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(2);
        let a = g.submit(&[(0, AccessMode::Write)], 0.0, |_| log.lock().expect("log lock").push("a"));
        let b = g.submit(&[(1, AccessMode::Write)], 0.0, |_| log.lock().expect("log lock").push("b"));
        for _ in 0..3 {
            g.add_dependency(a, b).expect("valid edge");
        }
        let spec = g.to_spec();
        let report = crate::verify::check_static(&spec);
        assert!(report.is_clean(), "{report}");
        g.execute(2);
        assert_eq!(log.into_inner().expect("log lock"), vec!["a", "b"]);
    }

    #[test]
    fn to_spec_reproduces_inferred_hazards() {
        use crate::verify::{check_static, Mode};
        let mut g = DataflowGraph::new(2);
        g.submit(&[(0, AccessMode::Write)], 0.0, |_| {});
        g.submit(&[(0, AccessMode::Read), (1, AccessMode::ReadWrite)], 0.0, |_| {});
        g.submit(&[(1, AccessMode::ReadWrite)], 0.0, |_| {});
        let spec = g.to_spec();
        assert_eq!(spec.ntasks(), 3);
        assert_eq!(spec.accesses_of(1), &[(0, Mode::Read), (1, Mode::ReadWrite)]);
        let report = check_static(&spec);
        assert!(report.is_clean(), "{report}");
        // Drop the inferred RAW edge 0→1 from the exported spec: the
        // static pass must flag the now-unordered W/R pair.
        let mut broken = spec.clone();
        assert!(broken.remove_edge(0, 1));
        let report = check_static(&broken);
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].data, 0);
    }

    #[test]
    fn checked_run_reports_success() {
        let counter = AtomicUsize::new(0);
        let mut g = DataflowGraph::new(1);
        for _ in 0..10 {
            let counter = &counter;
            g.submit(&[(0, AccessMode::ReadWrite)], 0.0, move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let report = g
            .execute_checked(4, RunConfig::default())
            .expect("checked run succeeds");
        assert_eq!(report.ntasks, 10);
        assert_eq!(report.completed, 10);
        assert_eq!(report.retries, 0);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn eager_policy_runs_in_submission_order_single_worker() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(3);
        // Priorities deliberately inverted: eager must ignore them.
        g.submit(&[(0, AccessMode::Write)], 1.0, |_| log.lock().expect("log lock").push(0));
        g.submit(&[(1, AccessMode::Write)], 9.0, |_| log.lock().expect("log lock").push(1));
        g.submit(&[(2, AccessMode::Write)], 5.0, |_| log.lock().expect("log lock").push(2));
        g.execute_with(1, SchedulerPolicy::Eager);
        assert_eq!(log.into_inner().expect("log lock"), vec![0, 1, 2]);
    }

    #[test]
    fn priority_policy_reorders_independent_tasks() {
        let log = StdMutex::new(Vec::new());
        let mut g = DataflowGraph::new(3);
        g.submit(&[(0, AccessMode::Write)], 1.0, |_| log.lock().expect("log lock").push(0));
        g.submit(&[(1, AccessMode::Write)], 9.0, |_| log.lock().expect("log lock").push(1));
        g.submit(&[(2, AccessMode::Write)], 5.0, |_| log.lock().expect("log lock").push(2));
        g.execute_with(1, SchedulerPolicy::Priority);
        assert_eq!(log.into_inner().expect("log lock"), vec![1, 2, 0]);
    }

    #[test]
    fn both_policies_respect_dependencies() {
        for policy in [SchedulerPolicy::Eager, SchedulerPolicy::Priority] {
            let log = StdMutex::new(Vec::new());
            let mut g = DataflowGraph::new(1);
            for i in 0..32usize {
                let log = &log;
                g.submit(&[(0, AccessMode::ReadWrite)], (i % 7) as f64, move |_| {
                    log.lock().expect("log lock").push(i)
                });
            }
            g.execute_with(4, policy);
            assert_eq!(log.into_inner().expect("log lock"), (0..32).collect::<Vec<_>>(), "{policy:?}");
        }
    }
}
