//! The fault-tolerant execution layer shared by the three engines.
//!
//! The paper's premise is that a factorization DAG handed to a generic
//! runtime still completes correctly under asymmetric, unreliable
//! execution (slow or failed offloads, §V-B). This module makes that
//! testable and survivable:
//!
//! * [`FaultPlan`] — deterministic, seedable injection of task panics,
//!   transient failures (fail the first *k* attempts), artificial delays
//!   and output corruption, wired into every engine behind a hook that
//!   costs one branch when no plan is installed;
//! * [`Supervisor`] — the per-run bookkeeping every `*_checked` entry
//!   point shares: panic capture, bounded retry with exponential backoff,
//!   poison-and-drain cancellation, duplicate-execution detection, and a
//!   stall watchdog that turns a would-be deadlock into a diagnostic
//!   [`EngineError::Stalled`];
//! * [`RunReport`] — per-run statistics (attempt counts, retries, injected
//!   faults) surfaced to the solver's `FactorStats`.
//!
//! A task body signals a *transient* failure by panicking with a
//! [`TransientFault`] payload (the injection hook does exactly that); any
//! other panic payload is treated as fatal and aborts the run with
//! [`EngineError::TaskPanicked`].

use crate::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex, Once};
use crate::TaskId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------

/// Panic payload marking a failure as retryable. Task bodies (or the
/// injection hook) `panic_any(TransientFault { .. })` to request a retry;
/// the supervisor retries within [`RetryPolicy`] bounds instead of
/// aborting the run.
#[derive(Debug, Clone)]
pub struct TransientFault {
    /// Task that failed.
    pub task: TaskId,
    /// 1-based attempt number that failed.
    pub attempt: u32,
}

/// One injected fault at a specific task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Fatal panic on every attempt.
    Panic,
    /// Fail the first `failures` attempts with a [`TransientFault`], then
    /// let the task run.
    Transient { failures: u32 },
    /// Sleep before running the task (models a slow offload).
    Delay { micros: u64 },
}

/// Deterministic, seedable fault-injection plan.
///
/// Faults are either *pinned* to explicit task ids (`panic_on`,
/// `transient_on`, `delay_on`) or *sampled* per task from the seed
/// (`random_transient`, …): task `t` draws `splitmix64(seed ⊕ t)`, so a
/// given `(seed, task)` pair always produces the same decision regardless
/// of scheduling order, worker count or engine.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    pinned: HashMap<TaskId, FaultKind>,
    /// Probability ∈ [0, 1] of a sampled transient fault, with its
    /// fail-count.
    random_transient: Option<(f64, u32)>,
    /// Probability of a sampled fatal panic.
    random_panic: Option<f64>,
    /// Probability of a sampled delay, with its duration in µs.
    random_delay: Option<(f64, u64)>,
    /// Panels whose freshly-computed output should be overwritten with
    /// NaN, with a remaining-injection budget each (so a re-factorization
    /// attempt can succeed). Consumed via [`FaultPlan::take_corruption`].
    corrupt: Mutex<HashMap<usize, u32>>,
    /// Allocation sites (see `crate::budget::site`) whose next `failures`
    /// budget charges are refused — the `AllocFail` fault kind, fired
    /// inside `MemoryBudget::try_charge`.
    alloc_pinned: HashMap<usize, u32>,
    /// Probability ∈ [0, 1] that a given allocation *site* fails its
    /// first `k` charges, sampled deterministically from the seed.
    random_alloc: Option<(f64, u32)>,
    /// Per-site count of alloc failures already delivered (both pinned
    /// and sampled draw down from the same consumption record).
    alloc_used: Mutex<HashMap<usize, u32>>,
    /// Cluster nodes pinned to crash after completing K tasks (the dist
    /// engine queries [`FaultPlan::node_crash_point`]).
    crash_pinned: HashMap<usize, u32>,
    /// Probability ∈ [0, 1] that a sampled node crashes, with the
    /// task-completion count after which it dies.
    random_crash: Option<(f64, u32)>,
    /// Probability that a given message send is lost in transit.
    msg_loss: Option<f64>,
    /// Probability that a given message send is delivered twice.
    msg_dup: Option<f64>,
    /// Probability that a given message send is delayed past later
    /// traffic (reordering).
    msg_reorder: Option<f64>,
    /// Total faults injected so far (all kinds).
    injected: AtomicUsize,
}

/// What the lossy network does to one message send (see
/// [`FaultPlan::message_fate`]). The fates are independent: a message can
/// be duplicated *and* have one copy delayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsgFate {
    /// The (first) delivery is dropped in transit.
    pub lost: bool,
    /// A second copy of the message is delivered.
    pub duplicated: bool,
    /// Delivery is delayed past later traffic (reordering).
    pub reordered: bool,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Empty plan with a seed for the sampled modes.
    pub fn with_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Pin a fatal panic to `task`.
    pub fn panic_on(mut self, task: TaskId) -> Self {
        self.pinned.insert(task, FaultKind::Panic);
        self
    }

    /// Pin a transient fault to `task`: its first `failures` attempts fail
    /// retryably, subsequent attempts run normally.
    pub fn transient_on(mut self, task: TaskId, failures: u32) -> Self {
        self.pinned.insert(task, FaultKind::Transient { failures });
        self
    }

    /// Pin an artificial pre-execution delay to `task`.
    pub fn delay_on(mut self, task: TaskId, delay: Duration) -> Self {
        self.pinned.insert(
            task,
            FaultKind::Delay {
                micros: crate::trace::units::micros_u64(delay),
            },
        );
        self
    }

    /// Sample transient faults on roughly `prob · ntasks` tasks.
    pub fn random_transient(mut self, prob: f64, failures: u32) -> Self {
        self.random_transient = Some((prob, failures));
        self
    }

    /// Sample fatal panics on roughly `prob · ntasks` tasks.
    pub fn random_panic(mut self, prob: f64) -> Self {
        self.random_panic = Some(prob);
        self
    }

    /// Sample pre-execution delays on roughly `prob · ntasks` tasks.
    pub fn random_delay(mut self, prob: f64, delay: Duration) -> Self {
        self.random_delay = Some((prob, crate::trace::units::micros_u64(delay)));
        self
    }

    /// Pin an allocation failure (`AllocFail`) to budget site `site`:
    /// its first `failures` charges are refused, then charges succeed —
    /// so a retry (engine- or solver-level) can make progress.
    pub fn alloc_fail_on(mut self, site: usize, failures: u32) -> Self {
        self.alloc_pinned.insert(site, failures);
        self
    }

    /// Sample allocation failures on roughly `prob · nsites` budget
    /// sites, each refusing its first `failures` charges.
    pub fn random_alloc_fail(mut self, prob: f64, failures: u32) -> Self {
        self.random_alloc = Some((prob, failures));
        self
    }

    /// Pin a node crash: cluster node `node` dies after completing
    /// `after_tasks` tasks (0 = before doing any work).
    pub fn crash_node_on(mut self, node: usize, after_tasks: u32) -> Self {
        self.crash_pinned.insert(node, after_tasks);
        self
    }

    /// Sample node crashes on roughly `prob · nnodes` cluster nodes, each
    /// dying after completing `after_tasks` tasks.
    pub fn random_crash(mut self, prob: f64, after_tasks: u32) -> Self {
        self.random_crash = Some((prob, after_tasks));
        self
    }

    /// Lose roughly `prob` of message sends in transit.
    pub fn message_loss(mut self, prob: f64) -> Self {
        self.msg_loss = Some(prob);
        self
    }

    /// Deliver roughly `prob` of message sends twice.
    pub fn message_dup(mut self, prob: f64) -> Self {
        self.msg_dup = Some(prob);
        self
    }

    /// Delay roughly `prob` of message sends past later traffic.
    pub fn message_reorder(mut self, prob: f64) -> Self {
        self.msg_reorder = Some(prob);
        self
    }

    /// After how many task completions does cluster node `node` crash?
    /// `None` = the node survives the run. Pinned crashes take precedence
    /// over the sampled mode; the sampled decision is deterministic per
    /// `(seed, node)` like every other sampled fault. Pure query — the
    /// dist engine calls [`FaultPlan::note_injection`] when it actually
    /// delivers the crash.
    pub fn node_crash_point(&self, node: usize) -> Option<u32> {
        if let Some(&k) = self.crash_pinned.get(&node) {
            return Some(k);
        }
        let (p, k) = self.random_crash?;
        let draw = splitmix64(
            self.seed ^ 0xC4A5_4E0D_DEAD_0001 ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        (unit < p).then_some(k)
    }

    /// The lossy network's verdict on message send number `seq` (a
    /// globally unique per-send sequence number). Each fate is sampled
    /// independently with its own salt, so `mloss`/`mdup`/`mreorder`
    /// rates compose without shadowing each other. Deterministic per
    /// `(seed, seq)`; every triggered fate counts as one injected fault.
    pub fn message_fate(&self, seq: u64) -> MsgFate {
        let mut fate = MsgFate::default();
        let roll = |salt: u64, prob: Option<f64>| -> bool {
            let Some(p) = prob else { return false };
            let draw = splitmix64(self.seed ^ salt ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
            let hit = unit < p;
            if hit {
                // ORDERING: statistics counter; no memory is published.
                self.injected.fetch_add(1, Ordering::Relaxed);
            }
            hit
        };
        fate.lost = roll(0x1057_AB1E_5EA5_0001, self.msg_loss);
        fate.duplicated = roll(0xD0B1_ED00_5EA5_0002, self.msg_dup);
        fate.reordered = roll(0x2E02_DE2E_5EA5_0003, self.msg_reorder);
        fate
    }

    /// Record one injected fault delivered outside the plan's own hooks
    /// (e.g. the dist engine crashing a node at its
    /// [`FaultPlan::node_crash_point`]).
    pub fn note_injection(&self) {
        // ORDERING: statistics counter; no memory is published.
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Does the plan inject any distributed fault (node crash or message
    /// loss/duplication/reorder)? Zero-fault dist runs use this to skip
    /// protocol bookkeeping they cannot need.
    pub fn has_dist_faults(&self) -> bool {
        !self.crash_pinned.is_empty()
            || self.random_crash.is_some()
            || self.msg_loss.is_some()
            || self.msg_dup.is_some()
            || self.msg_reorder.is_some()
    }

    /// Corrupt the output of panel `panel` with NaN, once.
    pub fn corrupt_panel(self, panel: usize) -> Self {
        self.corrupt_panel_times(panel, 1)
    }

    /// Corrupt the output of panel `panel` on its first `times` runs.
    pub fn corrupt_panel_times(self, panel: usize, times: u32) -> Self {
        self.corrupt.lock().insert(panel, times);
        self
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> usize {
        // ORDERING: statistics counter only; readers tolerate staleness
        // and no other memory is published through it.
        self.injected.load(Ordering::Relaxed)
    }

    /// Does the plan corrupt the output of `panel` this time? Decrements
    /// the panel's budget; the caller (the solver's panel task) overwrites
    /// its output with NaN on `true`.
    pub fn take_corruption(&self, panel: usize) -> bool {
        let mut map = self.corrupt.lock();
        match map.get_mut(&panel) {
            Some(budget) if *budget > 0 => {
                *budget -= 1;
                // ORDERING: statistics counter; no memory is published.
                self.injected.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Should the budget charge at `site` fail this time? Consumes one
    /// unit of the site's failure budget (pinned takes precedence over
    /// the sampled mode); the budget layer turns `true` into a typed
    /// `BudgetError::Injected`. Deterministic per `(seed, site)` like
    /// the task-sampled modes.
    pub fn take_alloc_fail(&self, site: usize) -> bool {
        let budget = self.alloc_pinned.get(&site).copied().or_else(|| {
            let (p, failures) = self.random_alloc?;
            let draw = splitmix64(
                self.seed ^ 0xA110_CA7E ^ (site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
            (unit < p).then_some(failures)
        });
        let Some(failures) = budget else {
            return false;
        };
        // LOCK: fault-injection bookkeeping — reached only when an
        // alloc-fault budget is actually configured for this site.
        let mut used = self.alloc_used.lock();
        let consumed = used.entry(site).or_insert(0);
        if *consumed < failures {
            *consumed += 1;
            // ORDERING: statistics counter; no memory is published.
            self.injected.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// The engine-side hook, called *inside* the supervisor's panic net
    /// just before the task body. May sleep (delay faults) or panic
    /// (fatal or transient faults). `attempt` is 1-based.
    pub fn inject(&self, task: TaskId, attempt: u32) {
        let kind = self.pinned.get(&task).copied().or_else(|| self.sample(task));
        // `injected` is a statistics counter; no memory is published
        // through it, so Relaxed increments suffice at every site below.
        // IO: the delay fault *is* a deliberate sleep in the task body.
        // ALLOC: panic-payload formatting happens only when a fault fires.
        match kind {
            Some(FaultKind::Delay { micros }) if attempt == 1 => {
                // ORDERING: statistics counter; no memory is published.
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(micros));
            }
            Some(FaultKind::Panic) => {
                // ORDERING: statistics counter; no memory is published.
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::panic::panic_any(format!("injected fault: task {task} panicked"));
            }
            Some(FaultKind::Transient { failures }) if attempt <= failures => {
                // ORDERING: statistics counter; no memory is published.
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::panic::panic_any(TransientFault { task, attempt });
            }
            _ => {}
        }
    }

    /// Deterministic per-task draw for the sampled modes.
    fn sample(&self, task: TaskId) -> Option<FaultKind> {
        let any = self.random_transient.is_some()
            || self.random_panic.is_some()
            || self.random_delay.is_some();
        if !any {
            return None;
        }
        let draw = splitmix64(self.seed ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        let mut floor = 0.0;
        if let Some((p, failures)) = self.random_transient {
            if unit < floor + p {
                return Some(FaultKind::Transient { failures });
            }
            floor += p;
        }
        if let Some(p) = self.random_panic {
            if unit < floor + p {
                return Some(FaultKind::Panic);
            }
            floor += p;
        }
        if let Some((p, micros)) = self.random_delay {
            if unit < floor + p {
                return Some(FaultKind::Delay { micros });
            }
        }
        None
    }

    /// Parse a CLI-style plan: comma-separated directives
    /// `seed=N`, `panic=T`, `transient=TxK`, `delay=T:MICROS`, `nan=P`
    /// (or `nan=PxK` for K corruptions), `tprob=P.PxK` (sampled
    /// transients), `pprob=P.P` (sampled panics), `dprob=P.P:MICROS`
    /// (sampled delays), `alloc=SITExK` (pinned allocation failures),
    /// `aprob=P.PxK` (sampled allocation failures), `crash=NODExK` (node
    /// NODE dies after K task completions), `cprob=P.PxK` (sampled node
    /// crashes), `mloss=P.P` / `mdup=P.P` / `mreorder=P.P` (message
    /// loss / duplication / reorder rates for the dist engine).
    /// Example: `seed=42,transient=3x2,nan=0,crash=1x4,mloss=0.05`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for item in spec.split(',').filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("fault directive {item:?} is not key=value"))?;
            let num = |s: &str| -> Result<u64, String> {
                s.parse().map_err(|e| format!("{item:?}: {e}"))
            };
            match key {
                "seed" => plan.seed = num(value)?,
                "panic" => plan = plan.panic_on(num(value)? as usize),
                "transient" => {
                    let (t, k) = value
                        .split_once('x')
                        .ok_or_else(|| format!("{item:?}: expected transient=TASKxCOUNT"))?;
                    plan = plan.transient_on(num(t)? as usize, num(k)? as u32);
                }
                "delay" => {
                    let (t, us) = value
                        .split_once(':')
                        .ok_or_else(|| format!("{item:?}: expected delay=TASK:MICROS"))?;
                    plan = plan.delay_on(num(t)? as usize, Duration::from_micros(num(us)?));
                }
                // `nan=P` corrupts panel P once; `nan=PxK` its first K runs.
                "nan" => match value.split_once('x') {
                    Some((p, k)) => {
                        plan = plan.corrupt_panel_times(num(p)? as usize, num(k)? as u32);
                    }
                    None => plan = plan.corrupt_panel(num(value)? as usize),
                },
                "tprob" => {
                    let (p, k) = value
                        .split_once('x')
                        .ok_or_else(|| format!("{item:?}: expected tprob=PROBxCOUNT"))?;
                    let p: f64 = p.parse().map_err(|e| format!("{item:?}: {e}"))?;
                    plan = plan.random_transient(p, num(k)? as u32);
                }
                "pprob" => {
                    let p: f64 = value.parse().map_err(|e| format!("{item:?}: {e}"))?;
                    plan = plan.random_panic(p);
                }
                "dprob" => {
                    let (p, us) = value
                        .split_once(':')
                        .ok_or_else(|| format!("{item:?}: expected dprob=PROB:MICROS"))?;
                    let p: f64 = p.parse().map_err(|e| format!("{item:?}: {e}"))?;
                    plan = plan.random_delay(p, Duration::from_micros(num(us)?));
                }
                "alloc" => {
                    let (s, k) = value
                        .split_once('x')
                        .ok_or_else(|| format!("{item:?}: expected alloc=SITExCOUNT"))?;
                    plan = plan.alloc_fail_on(num(s)? as usize, num(k)? as u32);
                }
                "aprob" => {
                    let (p, k) = value
                        .split_once('x')
                        .ok_or_else(|| format!("{item:?}: expected aprob=PROBxCOUNT"))?;
                    let p: f64 = p.parse().map_err(|e| format!("{item:?}: {e}"))?;
                    plan = plan.random_alloc_fail(p, num(k)? as u32);
                }
                "crash" => {
                    let (n, k) = value
                        .split_once('x')
                        .ok_or_else(|| format!("{item:?}: expected crash=NODExCOUNT"))?;
                    plan = plan.crash_node_on(num(n)? as usize, num(k)? as u32);
                }
                "cprob" => {
                    let (p, k) = value
                        .split_once('x')
                        .ok_or_else(|| format!("{item:?}: expected cprob=PROBxCOUNT"))?;
                    let p: f64 = p.parse().map_err(|e| format!("{item:?}: {e}"))?;
                    plan = plan.random_crash(p, num(k)? as u32);
                }
                "mloss" => {
                    let p: f64 = value.parse().map_err(|e| format!("{item:?}: {e}"))?;
                    plan = plan.message_loss(p);
                }
                "mdup" => {
                    let p: f64 = value.parse().map_err(|e| format!("{item:?}: {e}"))?;
                    plan = plan.message_dup(p);
                }
                "mreorder" => {
                    let p: f64 = value.parse().map_err(|e| format!("{item:?}: {e}"))?;
                    plan = plan.message_reorder(p);
                }
                other => return Err(format!("unknown fault directive {other:?}")),
            }
        }
        Ok(plan)
    }
}

impl core::fmt::Display for FaultPlan {
    /// Canonical spec form of the plan, round-trippable through
    /// [`FaultPlan::parse`]: directives in a fixed order (seed, pinned
    /// faults sorted by task, corruptions sorted by panel, sampled
    /// modes, alloc faults), so two plans with the same content render
    /// identically. Surfaced in [`RunReport::fault_plan`] so a failing
    /// soak run is reproducible from its report alone.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        let mut pinned: Vec<(usize, FaultKind)> =
            self.pinned.iter().map(|(&t, &k)| (t, k)).collect();
        pinned.sort_by_key(|&(t, _)| t);
        for (task, kind) in pinned {
            match kind {
                FaultKind::Panic => parts.push(format!("panic={task}")),
                FaultKind::Transient { failures } => {
                    parts.push(format!("transient={task}x{failures}"));
                }
                FaultKind::Delay { micros } => parts.push(format!("delay={task}:{micros}")),
            }
        }
        let mut corrupt: Vec<(usize, u32)> =
            self.corrupt.lock().iter().map(|(&p, &k)| (p, k)).collect();
        corrupt.sort_by_key(|&(p, _)| p);
        for (panel, times) in corrupt {
            if times == 1 {
                parts.push(format!("nan={panel}"));
            } else {
                parts.push(format!("nan={panel}x{times}"));
            }
        }
        if let Some((p, k)) = self.random_transient {
            parts.push(format!("tprob={p}x{k}"));
        }
        if let Some(p) = self.random_panic {
            parts.push(format!("pprob={p}"));
        }
        if let Some((p, micros)) = self.random_delay {
            parts.push(format!("dprob={p}:{micros}"));
        }
        let mut alloc: Vec<(usize, u32)> =
            self.alloc_pinned.iter().map(|(&s, &k)| (s, k)).collect();
        alloc.sort_by_key(|&(s, _)| s);
        for (site, failures) in alloc {
            parts.push(format!("alloc={site}x{failures}"));
        }
        if let Some((p, k)) = self.random_alloc {
            parts.push(format!("aprob={p}x{k}"));
        }
        let mut crash: Vec<(usize, u32)> =
            self.crash_pinned.iter().map(|(&n, &k)| (n, k)).collect();
        crash.sort_by_key(|&(n, _)| n);
        for (node, after) in crash {
            parts.push(format!("crash={node}x{after}"));
        }
        if let Some((p, k)) = self.random_crash {
            parts.push(format!("cprob={p}x{k}"));
        }
        if let Some(p) = self.msg_loss {
            parts.push(format!("mloss={p}"));
        }
        if let Some(p) = self.msg_dup {
            parts.push(format!("mdup={p}"));
        }
        if let Some(p) = self.msg_reorder {
            parts.push(format!("mreorder={p}"));
        }
        write!(f, "{}", parts.join(","))
    }
}

/// SplitMix64 — the standard seedable 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------
// Run configuration
// ---------------------------------------------------------------------

/// Bounded-retry policy for transient task failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts allowed per task (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub backoff: Duration,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::from_millis(1),
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A sensible retrying policy: 4 attempts, 1 ms → 8 ms backoff.
    pub fn retrying() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        }
    }

    fn backoff_for(&self, failed_attempt: u32) -> Duration {
        let factor = self.backoff_factor.powi(failed_attempt.saturating_sub(1) as i32);
        self.backoff.mul_f64(factor.clamp(1.0, 1e6))
    }
}

/// Cooperative cancellation handle for a checked engine run, shared
/// between the run's [`RunConfig`] and an external controller (a
/// deadline timer, a service shutdown path). Firing the token makes the
/// supervisor poison the run with [`EngineError::Cancelled`] at the next
/// task boundary — in-flight task bodies are never interrupted midway,
/// so cancellation can never leave partially-written panels behind; the
/// run simply refuses to start more work and drains.
#[derive(Debug, Default)]
pub struct CancelToken {
    fired: AtomicBool,
    reason: Mutex<Option<String>>,
}

impl CancelToken {
    /// Fresh, un-fired token.
    pub fn new() -> Arc<CancelToken> {
        Arc::new(CancelToken::default())
    }

    /// Fire the token. The first caller's `reason` wins; firing is
    /// idempotent and monotone (a fired token never un-fires).
    pub fn cancel(&self, reason: &str) {
        {
            let mut guard = self.reason.lock();
            if guard.is_none() {
                *guard = Some(reason.to_string());
            }
        }
        // ORDERING: Release pairs with the Acquire in `is_cancelled` so
        // the reason written above is visible to whoever observes `true`.
        self.fired.store(true, Ordering::Release);
    }

    /// Has the token been fired?
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// The reason the token was fired with (or a placeholder before it
    /// fires — callers check [`CancelToken::is_cancelled`] first).
    pub fn reason(&self) -> String {
        // LOCK: cancellation is a cold, at-most-once-per-run event;
        // callers read the reason only after `is_cancelled()` fires.
        // ALLOC: clones the reason string on that same cold path.
        self.reason
            .lock()
            .clone()
            .unwrap_or_else(|| "cancelled".to_string())
    }
}

/// Configuration of one checked engine run.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Optional fault-injection plan (testing / chaos runs).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Stall watchdog: if no task starts or completes within this window
    /// while tasks remain and no worker is executing, the run fails with
    /// [`EngineError::Stalled`] instead of deadlocking. `None` disables.
    pub watchdog: Option<Duration>,
    /// Optional memory ledger. When set, the engines consult
    /// [`crate::budget::MemoryBudget::admission_width`] before dispatching
    /// (pressure-aware throttling) and the final [`RunReport`] carries a
    /// [`crate::budget::MemoryStats`] snapshot.
    pub budget: Option<Arc<crate::budget::MemoryBudget>>,
    /// Optional span recorder. When set, every engine records per-worker
    /// queue-wait / execute / steal spans into it (see [`crate::trace`]);
    /// when `None` the instrumentation costs one branch per hook.
    pub trace: Option<Arc<crate::trace::TraceRecorder>>,
    /// Optional cancellation token (deadline-bounded jobs, shutdown).
    /// When fired, the run is poisoned with [`EngineError::Cancelled`]
    /// at the next task boundary and drains.
    pub cancel: Option<Arc<CancelToken>>,
}

impl RunConfig {
    /// Config with retries on and a watchdog, for production solves.
    pub fn resilient() -> RunConfig {
        RunConfig {
            fault_plan: None,
            retry: RetryPolicy::retrying(),
            watchdog: Some(Duration::from_secs(30)),
            budget: None,
            trace: None,
            cancel: None,
        }
    }
}

// ---------------------------------------------------------------------
// Errors and reports
// ---------------------------------------------------------------------

/// Why a checked engine run failed.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// A task body panicked with a non-transient payload.
    TaskPanicked {
        /// The task.
        task: TaskId,
        /// Stringified panic payload.
        message: String,
        /// Attempts made (≥ 1; > 1 when transient retries preceded the
        /// fatal panic).
        attempts: u32,
    },
    /// A task kept failing transiently past the retry budget.
    RetryBudgetExhausted {
        /// The task.
        task: TaskId,
        /// Attempts made (= `RetryPolicy::max_attempts`).
        attempts: u32,
    },
    /// The scheduler made no progress for the watchdog window while tasks
    /// remained — a dependency-graph bug (cycle, bad predecessor count)
    /// that would otherwise deadlock.
    Stalled {
        /// Tasks not yet completed.
        remaining: usize,
        /// A sample of the stuck task ids (first eight).
        stuck: Vec<TaskId>,
        /// The quiescence window that expired.
        window: Duration,
    },
    /// The scheduler tried to run a task twice — an engine bug surfaced
    /// as a structured error instead of a worker-thread panic.
    DuplicateExecution {
        /// The task.
        task: TaskId,
    },
    /// A successor's pending-predecessor counter was decremented below
    /// zero — a malformed DAG (duplicate edge, understated predecessor
    /// count) caught by [`crate::shared::release_pending`] before the
    /// wrapped counter could release the task spuriously.
    ReleaseUnderflow {
        /// The successor whose counter underflowed.
        task: TaskId,
    },
    /// The run's [`CancelToken`] fired (deadline expired, service
    /// shutdown): remaining tasks were abandoned at a task boundary and
    /// the partial factorization was discarded, never returned.
    Cancelled {
        /// The reason the token was fired with.
        reason: String,
        /// Tasks not yet completed when the cancellation was honored.
        remaining: usize,
    },
    /// The engine was invoked with zero workers — a configuration error
    /// surfaced as a structured rejection instead of an assert in the
    /// engine entry point.
    NoWorkers,
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::TaskPanicked {
                task,
                message,
                attempts,
            } => write!(
                f,
                "task {task} panicked after {attempts} attempt(s): {message}"
            ),
            EngineError::RetryBudgetExhausted { task, attempts } => write!(
                f,
                "task {task} still failing transiently after {attempts} attempts"
            ),
            EngineError::Stalled {
                remaining,
                stuck,
                window,
            } => write!(
                f,
                "scheduler stalled: {remaining} task(s) pending with no progress for \
                 {window:?}; stuck tasks include {stuck:?}"
            ),
            EngineError::DuplicateExecution { task } => {
                write!(f, "scheduler bug: task {task} was dispatched twice")
            }
            EngineError::ReleaseUnderflow { task } => write!(
                f,
                "graph bug: pending-predecessor counter of task {task} \
                 decremented below zero (duplicate edge or understated \
                 predecessor count)"
            ),
            EngineError::Cancelled { reason, remaining } => write!(
                f,
                "run cancelled ({reason}) with {remaining} task(s) abandoned"
            ),
            EngineError::NoWorkers => write!(f, "engine invoked with zero workers"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Statistics of a completed checked run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Tasks in the DAG.
    pub ntasks: usize,
    /// Tasks completed (== `ntasks` on success).
    pub completed: usize,
    /// Total retries performed across all tasks.
    pub retries: usize,
    /// Faults the plan injected (panics + transients + delays + NaN).
    pub faults_injected: usize,
    /// `(task, attempts)` for every task needing more than one attempt.
    pub task_attempts: Vec<(TaskId, u32)>,
    /// Canonical spec of the active fault plan (round-trips through
    /// [`FaultPlan::parse`]), so a failing soak run is reproducible from
    /// the report alone. `None` when no plan was installed.
    pub fault_plan: Option<String>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Memory-ledger snapshot (peaks, spill/throttle/shed counters) when
    /// the run carried a [`crate::budget::MemoryBudget`].
    pub memory: Option<crate::budget::MemoryStats>,
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

/// Outcome of one supervised task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskOutcome {
    /// Body ran to completion; release successors, then call
    /// [`Supervisor::task_done`].
    Completed,
    /// Transient failure within budget (backoff already applied);
    /// re-enqueue the task.
    Retry,
    /// Fatal: the error is recorded and the run poisoned; drain.
    Aborted,
}

/// Shared bookkeeping of one checked engine run: panic capture, retries,
/// watchdog, duplicate detection, and the final report.
pub struct Supervisor {
    config: RunConfig,
    attempts: Vec<AtomicU32>,
    done: Vec<AtomicBool>,
    remaining: AtomicUsize,
    running: AtomicUsize,
    retries: AtomicUsize,
    poisoned: AtomicBool,
    error: Mutex<Option<EngineError>>,
    start: Instant,
    /// Nanoseconds (since `start`) of the last observed progress.
    last_progress: AtomicU64,
}

/// Silence the default panic hook for panics *injected* by a
/// [`FaultPlan`] — an absorbed transient would otherwise print a full
/// "thread panicked" backtrace for a run that ends up succeeding. The
/// hook is installed once, process-wide, and delegates every genuine
/// panic to whatever hook was active before.
fn install_quiet_injection_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let injected = p.downcast_ref::<TransientFault>().is_some()
                || p.downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("injected fault:"));
            if !injected {
                prev(info);
            }
        }));
    });
}

impl Supervisor {
    /// Supervisor for a DAG of `ntasks` tasks.
    pub fn new(ntasks: usize, config: RunConfig) -> Supervisor {
        if config.fault_plan.is_some() {
            install_quiet_injection_hook();
        }
        Supervisor {
            config,
            attempts: (0..ntasks).map(|_| AtomicU32::new(0)).collect(),
            done: (0..ntasks).map(|_| AtomicBool::new(false)).collect(),
            remaining: AtomicUsize::new(ntasks),
            running: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            error: Mutex::new(None),
            start: Instant::now(),
            last_progress: AtomicU64::new(0),
        }
    }

    /// Has the run been cancelled (error recorded)? Workers drain when
    /// this turns true.
    pub fn halted(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Tasks not yet completed.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    /// Pressure-aware admission throttle. Returns `false` when the
    /// memory budget's admission width is saturated by already-running
    /// tasks — the worker should idle briefly instead of dispatching.
    /// Always admits when nothing is running, so a throttled run can
    /// never starve (and the watchdog can never see a fully-throttled
    /// live graph stall forever).
    pub fn try_admit(&self) -> bool {
        let Some(budget) = self.config.budget.as_ref() else {
            return true;
        };
        let Some(width) = budget.admission_width() else {
            return true;
        };
        let running = self.running.load(Ordering::Acquire);
        if running < width.max(1) {
            true
        } else {
            budget.note_throttle();
            false
        }
    }

    /// A sensible condvar/poll tick for blocked workers: short enough to
    /// service the watchdog, long enough to stay cheap.
    pub fn idle_tick(&self) -> Duration {
        match self.config.watchdog {
            Some(w) => (w / 4).clamp(Duration::from_millis(1), Duration::from_millis(50)),
            None => Duration::from_millis(50),
        }
    }

    fn note_progress(&self) {
        // Saturating u128 → u64: `as u64` would silently truncate (the
        // elapsed nanos fit for ~584 years, but the convention here is
        // that no timestamp narrows with `as`; see `trace::units`).
        let nanos = crate::trace::units::nanos_u64(self.start.elapsed());
        self.last_progress.store(nanos, Ordering::Release);
    }

    pub(crate) fn poison_with(&self, error: EngineError) {
        let mut guard = self.error.lock();
        if guard.is_none() {
            *guard = Some(error);
        }
        self.poisoned.store(true, Ordering::Release);
    }

    /// Honor a fired [`CancelToken`]: poison the run with
    /// [`EngineError::Cancelled`] and report `true`. Cheap (one Acquire
    /// load) when no token is installed or it has not fired.
    fn check_cancel(&self) -> bool {
        let Some(token) = self.config.cancel.as_deref() else {
            return false;
        };
        if !token.is_cancelled() {
            return false;
        }
        self.poison_with(EngineError::Cancelled {
            reason: token.reason(),
            remaining: self.remaining(),
        });
        true
    }

    /// Retry backoff that stays responsive to halts: sleeps `total` in
    /// millisecond slices, returning early as soon as the run is poisoned
    /// or the cancel token fires — a long exponential backoff must never
    /// delay a deadline cancellation or keep a poisoned run alive.
    fn backoff_sleep(&self, total: Duration) {
        let start = Instant::now();
        loop {
            let elapsed = start.elapsed();
            if elapsed >= total || self.halted() {
                return;
            }
            if let Some(token) = self.config.cancel.as_deref() {
                if token.is_cancelled() {
                    return;
                }
            }
            std::thread::sleep((total - elapsed).min(Duration::from_millis(1)));
        }
    }

    /// Run one attempt of `task` under the panic net, with fault injection
    /// and retry/backoff handling. The engine re-enqueues on
    /// [`TaskOutcome::Retry`], releases successors and calls
    /// [`Supervisor::task_done`] on [`TaskOutcome::Completed`], and drains
    /// on [`TaskOutcome::Aborted`].
    pub fn run_task<F: FnOnce()>(&self, task: TaskId, body: F) -> TaskOutcome {
        if self.check_cancel() {
            return TaskOutcome::Aborted;
        }
        if self.done[task].load(Ordering::Acquire) {
            self.poison_with(EngineError::DuplicateExecution { task });
            return TaskOutcome::Aborted;
        }
        let attempt = self.attempts[task].fetch_add(1, Ordering::AcqRel) + 1;
        self.running.fetch_add(1, Ordering::AcqRel);
        self.note_progress();
        let plan = self.config.fault_plan.as_deref();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(plan) = plan {
                plan.inject(task, attempt);
            }
            body();
        }));
        self.running.fetch_sub(1, Ordering::AcqRel);
        self.note_progress();
        match result {
            Ok(()) => TaskOutcome::Completed,
            Err(payload) => {
                if payload.is::<TransientFault>() {
                    if attempt < self.config.retry.max_attempts {
                        // ORDERING: statistics counter; no memory is
                        // published.
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        self.backoff_sleep(self.config.retry.backoff_for(attempt));
                        self.note_progress();
                        TaskOutcome::Retry
                    } else {
                        self.poison_with(EngineError::RetryBudgetExhausted {
                            task,
                            attempts: attempt,
                        });
                        TaskOutcome::Aborted
                    }
                } else {
                    self.poison_with(EngineError::TaskPanicked {
                        task,
                        message: panic_message(&*payload),
                        attempts: attempt,
                    });
                    TaskOutcome::Aborted
                }
            }
        }
    }

    /// Mark `task` completed (call after releasing its successors).
    pub fn task_done(&self, task: TaskId) {
        self.done[task].store(true, Ordering::Release);
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        self.note_progress();
    }

    /// Watchdog check for idle workers. Returns `true` when the run is
    /// over for this worker (finished, failed, or a stall was just
    /// detected and recorded).
    pub fn idle_check(&self) -> bool {
        if self.halted() || self.remaining() == 0 {
            return true;
        }
        if self.check_cancel() {
            return true;
        }
        let Some(window) = self.config.watchdog else {
            return false;
        };
        // Progress means either a completion or a body actively running;
        // a long-running legitimate task must not trip the watchdog.
        if self.running.load(Ordering::Acquire) > 0 {
            return false;
        }
        let last = Duration::from_nanos(self.last_progress.load(Ordering::Acquire));
        if self.start.elapsed().saturating_sub(last) < window {
            return false;
        }
        let stuck: Vec<TaskId> = self
            .done
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.load(Ordering::Acquire))
            .map(|(t, _)| t)
            .take(8)
            .collect();
        self.poison_with(EngineError::Stalled {
            remaining: self.remaining(),
            stuck,
            window,
        });
        true
    }

    /// Record a duplicate-execution engine bug (used by engines with their
    /// own dispatch bookkeeping, e.g. the dataflow body slots).
    pub fn duplicate_execution(&self, task: TaskId) {
        self.poison_with(EngineError::DuplicateExecution { task });
    }

    /// Finish the run: the recorded error, or the success report.
    pub fn finish(self) -> Result<RunReport, EngineError> {
        if let Some(e) = self.error.lock().take() {
            return Err(e);
        }
        let ntasks = self.attempts.len();
        let completed = ntasks - self.remaining();
        let task_attempts: Vec<(TaskId, u32)> = self
            .attempts
            .iter()
            .enumerate()
            .filter_map(|(t, a)| {
                let a = a.load(Ordering::Acquire);
                (a > 1).then_some((t, a))
            })
            .collect();
        Ok(RunReport {
            ntasks,
            completed,
            // ORDERING: statistics counter; `finish(self)` runs after
            // every worker joined, and join supplies the happens-before
            // edge for the final value.
            retries: self.retries.load(Ordering::Relaxed),
            faults_injected: self
                .config
                .fault_plan
                .as_deref()
                .map_or(0, FaultPlan::faults_injected),
            task_attempts,
            fault_plan: self
                .config
                .fault_plan
                .as_deref()
                .map(|p| p.to_string()),
            elapsed: self.start.elapsed(),
            memory: self
                .config
                .budget
                .as_deref()
                .map(crate::budget::MemoryBudget::stats),
        })
    }
}

/// Best-effort stringification of a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_transient_fails_then_passes() {
        let plan = FaultPlan::new().transient_on(3, 2);
        // Attempts 1 and 2 panic with a TransientFault payload.
        for attempt in 1..=2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.inject(3, attempt)
            }));
            let payload = r.expect_err("injection should fail");
            assert!(payload.is::<TransientFault>());
        }
        // Attempt 3 passes.
        plan.inject(3, 3);
        // Other tasks never fail.
        plan.inject(4, 1);
        assert_eq!(plan.faults_injected(), 2);
    }

    #[test]
    fn sampled_faults_are_deterministic() {
        let a = FaultPlan::with_seed(7).random_transient(0.3, 1);
        let b = FaultPlan::with_seed(7).random_transient(0.3, 1);
        for t in 0..256 {
            assert_eq!(a.sample(t).is_some(), b.sample(t).is_some(), "task {t}");
        }
        let hits = (0..1024).filter(|&t| a.sample(t).is_some()).count();
        assert!((150..500).contains(&hits), "sampled rate off: {hits}/1024");
    }

    #[test]
    fn corruption_budget_is_consumed() {
        let plan = FaultPlan::new().corrupt_panel_times(5, 2);
        assert!(plan.take_corruption(5));
        assert!(plan.take_corruption(5));
        assert!(!plan.take_corruption(5));
        assert!(!plan.take_corruption(6));
    }

    #[test]
    fn parse_roundtrip() {
        let plan = FaultPlan::parse("seed=9,transient=3x2,panic=7,delay=1:250,nan=0").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.pinned.get(&3), Some(&FaultKind::Transient { failures: 2 }));
        assert_eq!(plan.pinned.get(&7), Some(&FaultKind::Panic));
        assert_eq!(plan.pinned.get(&1), Some(&FaultKind::Delay { micros: 250 }));
        assert!(plan.take_corruption(0));
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("frob=1").is_err());
        assert!(FaultPlan::parse("transient=3").is_err());
    }

    #[test]
    fn alloc_fail_pinned_consumes_and_recovers() {
        let plan = FaultPlan::new().alloc_fail_on(4, 2);
        assert!(plan.take_alloc_fail(4));
        assert!(plan.take_alloc_fail(4));
        assert!(!plan.take_alloc_fail(4), "failure budget exhausted");
        assert!(!plan.take_alloc_fail(5), "other sites unaffected");
        assert_eq!(plan.faults_injected(), 2);
    }

    #[test]
    fn alloc_fail_sampled_is_deterministic_per_site() {
        let decide = |seed: u64, site: usize| {
            FaultPlan::with_seed(seed)
                .random_alloc_fail(0.3, 1)
                .take_alloc_fail(site)
        };
        let hits = (0..512).filter(|&s| decide(11, s)).count();
        assert!((80..250).contains(&hits), "sampled alloc rate off: {hits}/512");
        for site in 0..64 {
            assert_eq!(decide(11, site), decide(11, site), "site {site}");
        }
        // Sampled failures also consume a per-site budget.
        let plan = FaultPlan::with_seed(11).random_alloc_fail(1.0, 1);
        assert!(plan.take_alloc_fail(40));
        assert!(!plan.take_alloc_fail(40));
    }

    #[test]
    fn parse_alloc_directives() {
        let plan = FaultPlan::parse("alloc=64x2,aprob=0.5x3").unwrap();
        assert_eq!(plan.alloc_pinned.get(&64), Some(&2));
        assert_eq!(plan.random_alloc, Some((0.5, 3)));
        assert!(FaultPlan::parse("alloc=64").is_err());
        assert!(FaultPlan::parse("aprob=0.5").is_err());
    }

    #[test]
    fn supervisor_retries_then_completes() {
        let plan = Arc::new(FaultPlan::new().transient_on(0, 2));
        let sup = Supervisor::new(1, RunConfig {
            fault_plan: Some(plan),
            retry: RetryPolicy::retrying(),
            ..RunConfig::default()
        });
        let mut runs = 0;
        assert_eq!(sup.run_task(0, || runs += 1), TaskOutcome::Retry);
        assert_eq!(sup.run_task(0, || runs += 1), TaskOutcome::Retry);
        assert_eq!(sup.run_task(0, || runs += 1), TaskOutcome::Completed);
        sup.task_done(0);
        assert_eq!(runs, 1, "body must not run on injected-failure attempts");
        let report = sup.finish().unwrap();
        assert_eq!(report.retries, 2);
        assert_eq!(report.task_attempts, vec![(0, 3)]);
        assert_eq!(report.faults_injected, 2);
    }

    #[test]
    fn supervisor_exhausts_retry_budget() {
        let plan = Arc::new(FaultPlan::new().transient_on(0, 99));
        let sup = Supervisor::new(1, RunConfig {
            fault_plan: Some(plan),
            retry: RetryPolicy {
                max_attempts: 3,
                backoff: Duration::from_micros(10),
                backoff_factor: 2.0,
            },
            ..RunConfig::default()
        });
        assert_eq!(sup.run_task(0, || {}), TaskOutcome::Retry);
        assert_eq!(sup.run_task(0, || {}), TaskOutcome::Retry);
        assert_eq!(sup.run_task(0, || {}), TaskOutcome::Aborted);
        match sup.finish() {
            Err(EngineError::RetryBudgetExhausted { task: 0, attempts: 3 }) => {}
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn supervisor_reports_duplicate_execution() {
        let sup = Supervisor::new(2, RunConfig::default());
        assert_eq!(sup.run_task(0, || {}), TaskOutcome::Completed);
        sup.task_done(0);
        assert_eq!(sup.run_task(0, || {}), TaskOutcome::Aborted);
        match sup.finish() {
            Err(EngineError::DuplicateExecution { task: 0 }) => {}
            other => panic!("expected DuplicateExecution, got {other:?}"),
        }
    }

    #[test]
    fn node_crash_pinned_and_sampled() {
        let plan = FaultPlan::new().crash_node_on(2, 3);
        assert_eq!(plan.node_crash_point(2), Some(3));
        assert_eq!(plan.node_crash_point(0), None);
        assert!(plan.has_dist_faults());
        assert!(!FaultPlan::new().has_dist_faults());
        // Sampled crashes are deterministic per (seed, node) and hit at
        // roughly the requested rate.
        let decide = |node| FaultPlan::with_seed(13).random_crash(0.25, 1).node_crash_point(node);
        let hits = (0..1024).filter(|&n| decide(n).is_some()).count();
        assert!((130..420).contains(&hits), "sampled crash rate off: {hits}/1024");
        for node in 0..64 {
            assert_eq!(decide(node), decide(node), "node {node}");
        }
        // Pinned beats sampled.
        let plan = FaultPlan::with_seed(13).random_crash(0.0, 9).crash_node_on(5, 7);
        assert_eq!(plan.node_crash_point(5), Some(7));
    }

    #[test]
    fn message_fates_are_deterministic_and_independent() {
        let plan = FaultPlan::with_seed(21)
            .message_loss(0.3)
            .message_dup(0.3)
            .message_reorder(0.3);
        let twin = FaultPlan::with_seed(21)
            .message_loss(0.3)
            .message_dup(0.3)
            .message_reorder(0.3);
        let (mut lost, mut dup, mut reord, mut all_three) = (0, 0, 0, 0);
        for seq in 0..2048u64 {
            let f = plan.message_fate(seq);
            assert_eq!(f, twin.message_fate(seq), "seq {seq}");
            lost += f.lost as usize;
            dup += f.duplicated as usize;
            reord += f.reordered as usize;
            all_three += (f.lost && f.duplicated && f.reordered) as usize;
        }
        for (name, n) in [("lost", lost), ("dup", dup), ("reorder", reord)] {
            assert!((400..900).contains(&n), "{name} rate off: {n}/2048");
        }
        // Independent salts: the conjunction shows up at ~p³, not ~p.
        assert!(all_three < 150, "fates not independent: {all_three}/2048");
        // A message-free plan injects nothing.
        assert_eq!(FaultPlan::new().message_fate(7), MsgFate::default());
        assert!(plan.faults_injected() > 0);
    }

    #[test]
    fn parse_dist_directives() {
        let plan =
            FaultPlan::parse("seed=4,crash=1x3,cprob=0.1x2,mloss=0.05,mdup=0.02,mreorder=0.1")
                .unwrap();
        assert_eq!(plan.node_crash_point(1), Some(3));
        assert_eq!(plan.random_crash, Some((0.1, 2)));
        assert_eq!(plan.msg_loss, Some(0.05));
        assert_eq!(plan.msg_dup, Some(0.02));
        assert_eq!(plan.msg_reorder, Some(0.1));
        assert!(plan.has_dist_faults());
        assert!(FaultPlan::parse("crash=1").is_err());
        assert!(FaultPlan::parse("cprob=0.1").is_err());
        assert!(FaultPlan::parse("mloss=x").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let specs = [
            "seed=9,transient=3x2,panic=7,delay=1:250,nan=0,tprob=0.05x1",
            "panic=2,nan=4x3,pprob=0.125,dprob=0.25:100,alloc=64x2,aprob=0.5x3",
            "seed=8,crash=0x2,crash=3x1,cprob=0.25x4,mloss=0.1,mdup=0.05,mreorder=0.2",
            "seed=42",
            "",
        ];
        for spec in specs {
            let plan = FaultPlan::parse(spec).unwrap();
            let shown = plan.to_string();
            let reparsed = FaultPlan::parse(&shown)
                .unwrap_or_else(|e| panic!("display of {spec:?} did not reparse: {e}"));
            assert_eq!(reparsed.to_string(), shown, "canonical form unstable for {spec:?}");
        }
        // Multi-directive plans render sorted and dense.
        let plan = FaultPlan::with_seed(5).panic_on(9).transient_on(2, 3);
        assert_eq!(plan.to_string(), "seed=5,transient=2x3,panic=9");
    }

    #[test]
    fn run_report_logs_the_active_plan() {
        let plan = Arc::new(FaultPlan::parse("seed=3,transient=0x1").unwrap());
        let sup = Supervisor::new(1, RunConfig {
            fault_plan: Some(plan),
            retry: RetryPolicy::retrying(),
            ..RunConfig::default()
        });
        assert_eq!(sup.run_task(0, || {}), TaskOutcome::Retry);
        assert_eq!(sup.run_task(0, || {}), TaskOutcome::Completed);
        sup.task_done(0);
        let report = sup.finish().unwrap();
        let spec = report.fault_plan.expect("plan must be logged");
        assert_eq!(spec, "seed=3,transient=0x1");
        // The logged spec is executable as-is.
        FaultPlan::parse(&spec).unwrap();
        // Plain runs log nothing.
        let sup = Supervisor::new(0, RunConfig::default());
        assert_eq!(sup.finish().unwrap().fault_plan, None);
    }

    #[test]
    fn zero_task_graph_finishes_immediately() {
        let sup = Supervisor::new(0, RunConfig {
            watchdog: Some(Duration::from_millis(5)),
            ..RunConfig::default()
        });
        assert_eq!(sup.remaining(), 0);
        // An idle worker on an empty graph is told "run over", never
        // "stalled" — even after the watchdog window has long expired.
        std::thread::sleep(Duration::from_millis(15));
        assert!(sup.idle_check());
        assert!(!sup.halted(), "empty graph must not poison");
        let report = sup.finish().unwrap();
        assert_eq!(report.ntasks, 0);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn cancel_token_aborts_at_the_next_task_boundary() {
        let token = CancelToken::new();
        let sup = Supervisor::new(2, RunConfig {
            cancel: Some(token.clone()),
            ..RunConfig::default()
        });
        // A deadline shorter than one task: the token fires while the
        // body runs. The in-flight body is never interrupted (no partial
        // writes), but nothing further is dispatched.
        let mid_task = token.clone();
        assert_eq!(
            sup.run_task(0, move || mid_task.cancel("deadline 1ms exceeded")),
            TaskOutcome::Completed
        );
        sup.task_done(0);
        assert_eq!(sup.run_task(1, || panic!("must not dispatch")), TaskOutcome::Aborted);
        assert!(sup.halted());
        // `halted()` is monotone: still true on every later observation.
        assert!(sup.halted());
        assert!(sup.idle_check(), "idle workers drain after cancellation");
        match sup.finish() {
            Err(EngineError::Cancelled { reason, remaining }) => {
                assert!(reason.contains("deadline"), "{reason}");
                assert_eq!(remaining, 1);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancel_during_retry_backoff_returns_promptly() {
        let plan = Arc::new(FaultPlan::new().transient_on(0, 99));
        let token = CancelToken::new();
        let sup = Supervisor::new(1, RunConfig {
            fault_plan: Some(plan),
            retry: RetryPolicy {
                max_attempts: 10,
                backoff: Duration::from_secs(30),
                backoff_factor: 2.0,
            },
            cancel: Some(token.clone()),
            ..RunConfig::default()
        });
        let canceller = std::thread::spawn({
            let token = token.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                token.cancel("deadline");
            }
        });
        // The transient failure schedules a 30 s backoff; the token fires
        // 20 ms in and the sliced sleep must notice — no lost wakeup, no
        // full backoff served.
        let t0 = Instant::now();
        let outcome = sup.run_task(0, || {});
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "backoff ignored the cancellation ({:?})",
            t0.elapsed()
        );
        canceller.join().expect("canceller");
        // The retry outcome stands; the *next* dispatch honors the token.
        assert_eq!(outcome, TaskOutcome::Retry);
        assert_eq!(sup.run_task(0, || {}), TaskOutcome::Aborted);
        assert!(sup.halted());
        assert!(sup.halted(), "halted() is monotone");
        assert!(matches!(sup.finish(), Err(EngineError::Cancelled { .. })));
    }

    #[test]
    fn poison_during_retry_backoff_returns_promptly() {
        let plan = Arc::new(FaultPlan::new().transient_on(0, 99));
        let sup = Arc::new(Supervisor::new(2, RunConfig {
            fault_plan: Some(plan),
            retry: RetryPolicy {
                max_attempts: 10,
                backoff: Duration::from_secs(30),
                backoff_factor: 2.0,
            },
            ..RunConfig::default()
        }));
        let poisoner = std::thread::spawn({
            let sup = sup.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                sup.poison_with(EngineError::TaskPanicked {
                    task: 1,
                    message: "peer died".into(),
                    attempts: 1,
                });
            }
        });
        let t0 = Instant::now();
        let outcome = sup.run_task(0, || {});
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "backoff ignored the halt ({:?})",
            t0.elapsed()
        );
        poisoner.join().expect("poisoner");
        assert_eq!(outcome, TaskOutcome::Retry);
        assert!(sup.halted());
    }

    #[test]
    fn watchdog_detects_quiescence() {
        let sup = Supervisor::new(3, RunConfig {
            watchdog: Some(Duration::from_millis(20)),
            ..RunConfig::default()
        });
        assert!(!sup.idle_check(), "fresh run is not stalled yet");
        std::thread::sleep(Duration::from_millis(40));
        assert!(sup.idle_check());
        match sup.finish() {
            Err(EngineError::Stalled { remaining: 3, stuck, .. }) => {
                assert_eq!(stuck, vec![0, 1, 2]);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }
}
