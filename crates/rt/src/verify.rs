//! `dagfact-verify`: static and dynamic verification of engine task
//! graphs.
//!
//! The whole numeric layer hands aliasable mutable storage
//! ([`crate::shared::SharedSlice`]) to concurrently running tasks and
//! relies on the engines' dependency edges to keep conflicting accesses
//! apart. This module turns that trust into a checked contract, in three
//! layers:
//!
//! 1. **Static race/deadlock analysis** ([`check_static`]) over a
//!    [`GraphSpec`] — a uniform happens-before description extracted from
//!    any engine's submitted graph ([`DataflowGraph::to_spec`] for the
//!    StarPU-like engine, [`GraphSpec::from_native`] for the PaStiX-style
//!    task array, [`GraphSpec::from_ptg`] for a PaRSEC-like program).
//!    Every pair of tasks touching the same datum with a conflicting mode
//!    must be transitively ordered by edges; cycles, dangling edges,
//!    self-edges and duplicate edges are reported too. A clean report
//!    means *no schedule* of the DAG can race or deadlock.
//! 2. **Dynamic vector-clock race checking** ([`RaceChecker`]) — a
//!    FastTrack-style epoch checker fed by instrumented task bodies. The
//!    [`replay`] harness drives the *real* engines (threads, queues,
//!    stealing) over a [`GraphSpec`] with bodies that only log accesses,
//!    giving an executable oracle for the static pass: a dropped edge is
//!    flagged by both.
//! 3. **Cross-engine equivalence** ([`conflict_signature`]) — a canonical
//!    per-datum ordering of conflicting writes. Two engines with equal
//!    signatures serialize the numerically non-commuting operations the
//!    same way, so native/dataflow/ptg runs are interchangeable.
//!
//! `dagfact-core` builds specs from an `Analysis` and wires all three
//! layers into `Analysis::verify_task_graph` and the `dagfact verify`
//! CLI command.

use crate::dataflow::DataflowGraph;
use crate::fault::{EngineError, RunConfig};
use crate::native::{run_native_checked, NativeTask};
use crate::ptg::{run_ptg_checked, PtgProgram};
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::Mutex;
use crate::{AccessMode, DataId, RuntimeKind, TaskId};
use std::fmt;
use std::time::Duration;

/// How a task touches a datum, as seen by the verifier.
///
/// Extends the engine-facing [`AccessMode`] with [`Mode::Accum`]:
/// commutative, *mutually excluded* accumulation (StarPU's `REDUX`, or a
/// scatter-add under a per-panel lock). Two `Accum` accesses to the same
/// datum need no ordering edge — the lock serializes them and addition
/// commutes — but `Accum` still conflicts with reads and plain writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Read-only.
    Read,
    /// Write-only.
    Write,
    /// Read-modify-write (exclusive).
    ReadWrite,
    /// Commutative accumulation under mutual exclusion.
    Accum,
}

impl Mode {
    /// Do two accesses in these modes require a happens-before edge?
    pub fn conflicts_with(self, other: Mode) -> bool {
        !matches!(
            (self, other),
            (Mode::Read, Mode::Read) | (Mode::Accum, Mode::Accum)
        )
    }

    /// Does the access modify the datum (including accumulation)?
    pub fn writes(self) -> bool {
        !matches!(self, Mode::Read)
    }

    /// Conservative merge of two accesses by the *same task* to the same
    /// datum.
    fn merge(self, other: Mode) -> Mode {
        if self == other {
            self
        } else {
            Mode::ReadWrite
        }
    }
}

impl From<AccessMode> for Mode {
    fn from(m: AccessMode) -> Mode {
        match m {
            AccessMode::Read => Mode::Read,
            AccessMode::Write => Mode::Write,
            AccessMode::ReadWrite => Mode::ReadWrite,
        }
    }
}

/// Engine-independent description of a submitted task graph: tasks,
/// happens-before edges, and per-task data accesses.
///
/// Task ids are the dense range `0..ntasks`. Edges may be recorded
/// verbatim (including duplicates, self-edges, or out-of-range endpoints);
/// [`check_static`] classifies and reports the malformed ones instead of
/// panicking, so the verifier can describe a broken graph rather than die
/// on it.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    ntasks: usize,
    ndata: usize,
    accesses: Vec<Vec<(DataId, Mode)>>,
    edges: Vec<(TaskId, TaskId)>,
    tags: Vec<u64>,
}

impl GraphSpec {
    /// Empty spec over `ntasks` tasks.
    pub fn new(ntasks: usize) -> GraphSpec {
        GraphSpec {
            ntasks,
            ndata: 0,
            accesses: vec![Vec::new(); ntasks],
            edges: Vec::new(),
            tags: (0..ntasks as u64).collect(),
        }
    }

    /// Number of tasks.
    pub fn ntasks(&self) -> usize {
        self.ntasks
    }

    /// Number of data handles (1 + the largest recorded `DataId`).
    pub fn ndata(&self) -> usize {
        self.ndata
    }

    /// Number of recorded edges (raw, before deduplication).
    pub fn nedges(&self) -> usize {
        self.edges.len()
    }

    /// Record that `task` touches datum `data` in `mode`.
    pub fn access(&mut self, task: TaskId, data: DataId, mode: Mode) {
        assert!(task < self.ntasks, "access on unknown task {task}");
        self.ndata = self.ndata.max(data + 1);
        self.accesses[task].push((data, mode));
    }

    /// Accesses recorded for `task`.
    pub fn accesses_of(&self, task: TaskId) -> &[(DataId, Mode)] {
        &self.accesses[task]
    }

    /// Record a happens-before edge `pred → succ` (kept verbatim;
    /// [`check_static`] flags malformed edges).
    pub fn edge(&mut self, pred: TaskId, succ: TaskId) {
        self.edges.push((pred, succ));
    }

    /// Equivalence-class tag of a task, used by [`conflict_signature`] to
    /// compare graphs of different granularity (defaults to the task id).
    pub fn set_tag(&mut self, task: TaskId, tag: u64) {
        self.tags[task] = tag;
    }

    /// Remove every copy of the edge `pred → succ`; returns whether any
    /// was present. Exists so tests can *break* a graph deliberately and
    /// assert the verifier notices.
    pub fn remove_edge(&mut self, pred: TaskId, succ: TaskId) -> bool {
        let before = self.edges.len();
        self.edges.retain(|&e| e != (pred, succ));
        self.edges.len() != before
    }

    /// Extract the happens-before relation of a native-engine task array
    /// (accesses must be added by the caller; the task array only carries
    /// structure).
    pub fn from_native(tasks: &[NativeTask]) -> GraphSpec {
        let mut spec = GraphSpec::new(tasks.len());
        for (t, task) in tasks.iter().enumerate() {
            for &s in &task.succs {
                spec.edge(t, s);
            }
        }
        spec
    }

    /// Extract the happens-before relation of a PTG program by evaluating
    /// its successor function over the dense task range.
    pub fn from_ptg<P: PtgProgram>(program: &P) -> GraphSpec {
        let n = program.num_tasks();
        let mut spec = GraphSpec::new(n);
        let mut buf = Vec::new();
        for t in 0..n {
            buf.clear();
            program.successors(t, &mut buf);
            for &s in &buf {
                spec.edge(t, s);
            }
        }
        spec
    }

    /// Valid deduplicated adjacency (dangling and self-edges dropped) plus
    /// per-task predecessor counts — the shape the [`replay`] harness
    /// feeds to the engines.
    fn clean_adjacency(&self) -> (Vec<Vec<TaskId>>, Vec<u32>) {
        let mut succs = vec![Vec::new(); self.ntasks];
        for &(p, s) in &self.edges {
            if p < self.ntasks && s < self.ntasks && p != s {
                succs[p].push(s);
            }
        }
        let mut npred = vec![0u32; self.ntasks];
        for list in &mut succs {
            list.sort_unstable();
            list.dedup();
            for &s in list.iter() {
                npred[s] += 1;
            }
        }
        (succs, npred)
    }

    /// Per-task accesses with duplicates on the same datum merged
    /// (conservatively to [`Mode::ReadWrite`] when modes differ).
    fn merged_accesses(&self, task: TaskId) -> Vec<(DataId, Mode)> {
        let mut list = self.accesses[task].clone();
        list.sort_unstable_by_key(|&(d, _)| d);
        let mut out: Vec<(DataId, Mode)> = Vec::with_capacity(list.len());
        for (d, m) in list {
            match out.last_mut() {
                Some((ld, lm)) if *ld == d => *lm = lm.merge(m),
                _ => out.push((d, m)),
            }
        }
        out
    }
}

/// An unordered pair of conflicting accesses found by [`check_static`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRace {
    /// Datum both tasks touch.
    pub data: DataId,
    /// Topologically earlier task.
    pub first: TaskId,
    /// Topologically later task.
    pub second: TaskId,
    /// Access mode of `first`.
    pub first_mode: Mode,
    /// Access mode of `second`.
    pub second_mode: Mode,
}

/// Result of the static happens-before analysis.
#[derive(Debug, Clone)]
pub struct StaticReport {
    /// Task count of the analyzed spec.
    pub ntasks: usize,
    /// Distinct valid edges.
    pub nedges: usize,
    /// Conflicting task pairs with no happens-before path.
    pub races: Vec<StaticRace>,
    /// Tasks that can never become ready (on or behind a dependency
    /// cycle) — a non-empty list means the graph deadlocks.
    pub deadlocked: Vec<TaskId>,
    /// Edges whose endpoint is outside `0..ntasks`.
    pub dangling_edges: Vec<(TaskId, TaskId)>,
    /// Tasks with an edge to themselves.
    pub self_edges: Vec<TaskId>,
    /// Edges recorded more than once.
    pub duplicate_edges: Vec<(TaskId, TaskId)>,
    /// Conflicting frontier pairs whose ordering was checked.
    pub pairs_checked: usize,
}

impl StaticReport {
    /// No races, no cycles, no malformed edges.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
            && self.deadlocked.is_empty()
            && self.dangling_edges.is_empty()
            && self.self_edges.is_empty()
            && self.duplicate_edges.is_empty()
    }
}

impl fmt::Display for StaticReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks, {} edges, {} ordered pairs checked: {} race(s), {} deadlocked, \
             {} dangling / {} self / {} duplicate edge(s)",
            self.ntasks,
            self.nedges,
            self.pairs_checked,
            self.races.len(),
            self.deadlocked.len(),
            self.dangling_edges.len(),
            self.self_edges.len(),
            self.duplicate_edges.len(),
        )
    }
}

/// Reachability oracle over the DAG: direct-edge fast path (the engines
/// chain conflicting accesses with direct edges, so almost every query
/// hits it) plus a backward BFS pruned by topological position.
struct Reach<'g> {
    succs: &'g [Vec<TaskId>],
    preds: &'g [Vec<TaskId>],
    pos: &'g [usize],
    stamp: Vec<u32>,
    round: u32,
    stack: Vec<TaskId>,
}

impl Reach<'_> {
    /// Is there a path `u → … → v`? Caller guarantees `pos[u] < pos[v]`.
    fn ordered(&mut self, u: TaskId, v: TaskId) -> bool {
        if self.succs[u].binary_search(&v).is_ok() {
            return true;
        }
        self.round += 1;
        self.stack.clear();
        self.stack.push(v);
        self.stamp[v] = self.round;
        while let Some(x) = self.stack.pop() {
            for &p in &self.preds[x] {
                if p == u {
                    return true;
                }
                // Only nodes strictly between u and v can lie on a path.
                if self.pos[p] > self.pos[u] && self.stamp[p] != self.round {
                    self.stamp[p] = self.round;
                    self.stack.push(p);
                }
            }
        }
        false
    }
}

const UNREACHED: usize = usize::MAX;

/// Kahn topological sort over a clean adjacency; returns the order and
/// per-task positions (`UNREACHED` for tasks behind a cycle).
fn topo_order(succs: &[Vec<TaskId>], npred: &[u32]) -> (Vec<TaskId>, Vec<usize>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = succs.len();
    let mut remaining = npred.to_vec();
    let mut order = Vec::with_capacity(n);
    let mut pos = vec![UNREACHED; n];
    // Smallest ready id first: deterministic positions, and race reports
    // attribute the pair in natural (submission) task order.
    let mut queue: BinaryHeap<Reverse<TaskId>> =
        (0..n).filter(|&t| remaining[t] == 0).map(Reverse).collect();
    while let Some(Reverse(t)) = queue.pop() {
        pos[t] = order.len();
        order.push(t);
        for &s in &succs[t] {
            remaining[s] -= 1;
            if remaining[s] == 0 {
                queue.push(Reverse(s));
            }
        }
    }
    (order, pos)
}

/// Per-datum frontier during the static sweep: the accesses a new access
/// must be ordered against. Checking only frontier members suffices —
/// anything older is ordered against the frontier by the same invariant,
/// and happens-before composes.
#[derive(Default, Clone)]
struct Frontier {
    writer: Option<(TaskId, Mode)>,
    readers: Vec<TaskId>,
    accums: Vec<TaskId>,
}

/// Statically verify a [`GraphSpec`]: race-freedom (every conflicting
/// access pair transitively ordered), deadlock-freedom (no cycles), and
/// well-formedness (no dangling / self / duplicate edges).
pub fn check_static(spec: &GraphSpec) -> StaticReport {
    let n = spec.ntasks;
    // 1) Classify edges.
    let mut dangling_edges = Vec::new();
    let mut self_edges = Vec::new();
    let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for &(p, s) in &spec.edges {
        if p >= n || s >= n {
            dangling_edges.push((p, s));
        } else if p == s {
            self_edges.push(p);
        } else {
            succs[p].push(s);
        }
    }
    self_edges.sort_unstable();
    self_edges.dedup();
    let mut duplicate_edges = Vec::new();
    for (p, list) in succs.iter_mut().enumerate() {
        list.sort_unstable();
        let mut i = 0;
        while i + 1 < list.len() {
            if list[i] == list[i + 1] {
                duplicate_edges.push((p, list[i]));
                while i + 1 < list.len() && list[i] == list[i + 1] {
                    list.remove(i + 1);
                }
            }
            i += 1;
        }
    }
    let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    let mut npred = vec![0u32; n];
    let mut nedges = 0usize;
    for (p, list) in succs.iter().enumerate() {
        nedges += list.len();
        for &s in list {
            preds[s].push(p);
            npred[s] += 1;
        }
    }

    // 2) Cycle / reachability analysis.
    let (order, pos) = topo_order(&succs, &npred);
    let deadlocked: Vec<TaskId> = (0..n).filter(|&t| pos[t] == UNREACHED).collect();

    // 3) Frontier sweep for race detection (only over schedulable tasks;
    //    a deadlocked graph is already rejected above).
    let mut reach = Reach {
        succs: &succs,
        preds: &preds,
        pos: &pos,
        stamp: vec![0; n],
        round: 0,
        stack: Vec::new(),
    };
    let mut frontier: Vec<Frontier> = vec![Frontier::default(); spec.ndata];
    let mut races = Vec::new();
    let mut pairs_checked = 0usize;
    for &t in &order {
        for (d, mode) in spec.merged_accesses(t) {
            let fr = std::mem::take(&mut frontier[d]);
            let mut check = |earlier: TaskId, em: Mode, reach: &mut Reach<'_>| {
                pairs_checked += 1;
                if !reach.ordered(earlier, t) {
                    races.push(StaticRace {
                        data: d,
                        first: earlier,
                        second: t,
                        first_mode: em,
                        second_mode: mode,
                    });
                }
            };
            if let Some((w, wm)) = fr.writer {
                if mode.conflicts_with(wm) {
                    check(w, wm, &mut reach);
                }
            }
            if mode.conflicts_with(Mode::Read) {
                for &r in &fr.readers {
                    check(r, Mode::Read, &mut reach);
                }
            }
            if mode.conflicts_with(Mode::Accum) {
                for &a in &fr.accums {
                    check(a, Mode::Accum, &mut reach);
                }
            }
            let mut fr = fr;
            match mode {
                Mode::Read => fr.readers.push(t),
                Mode::Accum => fr.accums.push(t),
                Mode::Write | Mode::ReadWrite => {
                    fr.writer = Some((t, mode));
                    fr.readers.clear();
                    fr.accums.clear();
                }
            }
            frontier[d] = fr;
        }
    }
    races.sort_unstable_by_key(|r: &StaticRace| (r.data, r.first, r.second));
    races.dedup_by_key(|r: &mut StaticRace| (r.data, r.first, r.second));

    StaticReport {
        ntasks: n,
        nedges,
        races,
        deadlocked,
        dangling_edges,
        self_edges,
        duplicate_edges,
        pairs_checked,
    }
}

/// Canonical per-datum ordering of conflicting *writes* (tags of writing
/// tasks in topological order, with commutative [`Mode::Accum`] groups
/// sorted and adjacent repeats collapsed). Two graphs with equal
/// signatures serialize the non-commuting operations on every datum
/// identically, even at different task granularities. Returns `None` when
/// the graph has a cycle.
pub fn conflict_signature(spec: &GraphSpec) -> Option<Vec<Vec<u64>>> {
    let (succs, npred) = spec.clean_adjacency();
    let (order, pos) = topo_order(&succs, &npred);
    if pos.contains(&UNREACHED) {
        return None;
    }
    let mut events: Vec<Vec<(u64, bool)>> = vec![Vec::new(); spec.ndata];
    for &t in &order {
        for (d, mode) in spec.merged_accesses(t) {
            if mode.writes() {
                events[d].push((spec.tags[t], mode == Mode::Accum));
            }
        }
    }
    Some(events.into_iter().map(canonical_write_chain).collect())
}

fn canonical_write_chain(events: Vec<(u64, bool)>) -> Vec<u64> {
    let mut out = Vec::with_capacity(events.len());
    let mut i = 0;
    while i < events.len() {
        if events[i].1 {
            let start = out.len();
            while i < events.len() && events[i].1 {
                out.push(events[i].0);
                i += 1;
            }
            out[start..].sort_unstable();
        } else {
            out.push(events[i].0);
            i += 1;
        }
    }
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// Dynamic vector-clock race checking.
// ---------------------------------------------------------------------------

/// Granularity of the dynamic checker's vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockGranularity {
    /// One clock component per worker thread (FastTrack/TSan-style):
    /// cheap and scalable, but two conflicting tasks that happen to run
    /// on the *same* worker are ordered by program order and not flagged.
    /// Detects races in the observed schedule.
    PerWorker,
    /// One clock component per task: happens-before is exactly the DAG's
    /// transitive closure, so a missing edge is flagged *deterministically*
    /// regardless of where tasks land. O(ntasks) per clock — use on small
    /// and medium graphs.
    PerTask,
}

#[derive(Debug, Clone, Copy)]
struct Epoch {
    comp: u32,
    clock: u32,
    task: TaskId,
}

#[derive(Default)]
struct DatumState {
    write: Option<Epoch>,
    reads: Vec<Epoch>,
    accums: Vec<Epoch>,
}

/// A pair of conflicting accesses the dynamic checker observed without a
/// happens-before path between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicRace {
    /// Datum both tasks touched.
    pub data: DataId,
    /// Task whose access was recorded first.
    pub earlier: TaskId,
    /// Task that raced with it.
    pub later: TaskId,
}

/// Result of one instrumented run.
#[derive(Debug, Clone)]
pub struct DynamicReport {
    /// Distinct unordered conflicting pairs observed.
    pub races: Vec<DynamicRace>,
    /// Total instrumented accesses.
    pub naccesses: usize,
    /// Tasks executed.
    pub ntasks: usize,
    /// Clock granularity the run used.
    pub granularity: ClockGranularity,
}

impl DynamicReport {
    /// No races observed.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }
}

impl fmt::Display for DynamicReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks, {} accesses ({:?} clocks): {} race(s)",
            self.ntasks,
            self.naccesses,
            self.granularity,
            self.races.len()
        )
    }
}

/// Vector-clock dynamic race checker.
///
/// Usage per task: [`RaceChecker::task_begin`], one
/// [`RaceChecker::access`] per datum touched, then
/// [`RaceChecker::task_end`] with the task's successors — called *inside*
/// the task body, i.e. before the engine decrements successor counters,
/// so the release clock is published before any successor can start.
pub struct RaceChecker {
    granularity: ClockGranularity,
    /// Per-worker clock of the currently running task.
    clocks: Vec<Mutex<Vec<u32>>>,
    /// Per-task join of completed predecessors' clocks.
    release: Vec<Mutex<Vec<u32>>>,
    data: Vec<Mutex<DatumState>>,
    races: Mutex<Vec<DynamicRace>>,
    naccesses: AtomicUsize,
    ntasks: usize,
}

fn vc_join(dst: &mut Vec<u32>, src: &[u32]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        if *d < s {
            *d = s;
        }
    }
}

fn vc_get(vc: &[u32], comp: usize) -> u32 {
    vc.get(comp).copied().unwrap_or(0)
}

fn vc_set_min(vc: &mut Vec<u32>, comp: usize, val: u32) {
    if vc.len() <= comp {
        vc.resize(comp + 1, 0);
    }
    if vc[comp] < val {
        vc[comp] = val;
    }
}

impl RaceChecker {
    /// Checker for `ntasks` tasks over `ndata` data handles on `nworkers`
    /// workers.
    pub fn new(
        ntasks: usize,
        ndata: usize,
        nworkers: usize,
        granularity: ClockGranularity,
    ) -> RaceChecker {
        RaceChecker {
            granularity,
            clocks: (0..nworkers).map(|_| Mutex::new(Vec::new())).collect(),
            release: (0..ntasks).map(|_| Mutex::new(Vec::new())).collect(),
            data: (0..ndata).map(|_| Mutex::new(DatumState::default())).collect(),
            races: Mutex::new(Vec::new()),
            naccesses: AtomicUsize::new(0),
            ntasks,
        }
    }

    fn comp(&self, task: TaskId, worker: usize) -> usize {
        match self.granularity {
            ClockGranularity::PerWorker => worker,
            ClockGranularity::PerTask => task,
        }
    }

    /// Enter `task` on `worker`: acquire the joined clocks of all
    /// completed predecessors.
    pub fn task_begin(&self, task: TaskId, worker: usize) {
        let rel = self.release[task].lock().clone();
        let mut c = self.clocks[worker].lock();
        match self.granularity {
            ClockGranularity::PerWorker => {
                vc_join(&mut c, &rel);
                // Epoch clocks must be ≥ 1 so a fresh worker's events are
                // not vacuously covered by everyone's zero clock.
                vc_set_min(&mut c, worker, 1);
            }
            ClockGranularity::PerTask => {
                *c = rel;
                vc_set_min(&mut c, task, 1);
            }
        }
    }

    /// Record an access and flag any concurrent conflicting epoch.
    pub fn access(&self, data: DataId, mode: Mode, task: TaskId, worker: usize) {
        // ORDERING: statistics counter; no memory is published.
        self.naccesses.fetch_add(1, Ordering::Relaxed);
        let comp = self.comp(task, worker);
        let c = self.clocks[worker].lock();
        let epoch = Epoch {
            comp: comp as u32,
            clock: vc_get(&c, comp),
            task,
        };
        let mut st = self.data[data].lock();
        let mut offenders: Vec<TaskId> = Vec::new();
        {
            let mut scan = |e: &Epoch| {
                if e.task != task && e.clock > vc_get(&c, e.comp as usize) {
                    offenders.push(e.task);
                }
            };
            if let Some(w) = &st.write {
                if mode.conflicts_with(Mode::Write) || mode.conflicts_with(Mode::ReadWrite) {
                    scan(w);
                }
            }
            if mode.conflicts_with(Mode::Read) {
                for e in &st.reads {
                    scan(e);
                }
            }
            if mode.conflicts_with(Mode::Accum) {
                for e in &st.accums {
                    scan(e);
                }
            }
        }
        match mode {
            Mode::Read => upsert(&mut st.reads, epoch),
            Mode::Accum => upsert(&mut st.accums, epoch),
            Mode::Write | Mode::ReadWrite => {
                st.write = Some(epoch);
                st.reads.clear();
                st.accums.clear();
            }
        }
        drop(st);
        drop(c);
        if !offenders.is_empty() {
            let mut races = self.races.lock();
            for earlier in offenders {
                races.push(DynamicRace {
                    data,
                    earlier,
                    later: task,
                });
            }
        }
    }

    /// Leave `task` on `worker`: publish its clock to `succs`. Must run
    /// before the engine releases the successors.
    pub fn task_end(&self, task: TaskId, worker: usize, succs: &[TaskId]) {
        let mut c = self.clocks[worker].lock();
        for &s in succs {
            vc_join(&mut self.release[s].lock(), &c);
        }
        if self.granularity == ClockGranularity::PerWorker {
            let next = vc_get(&c, worker) + 1;
            vc_set_min(&mut c, worker, next);
        }
        let _ = task;
    }

    /// Snapshot the observed races (sorted, deduplicated).
    pub fn report(&self) -> DynamicReport {
        let mut races = self.races.lock().clone();
        races.sort_unstable_by_key(|r: &DynamicRace| (r.data, r.earlier, r.later));
        races.dedup();
        DynamicReport {
            races,
            // ORDERING: statistics counter; staleness is acceptable.
            naccesses: self.naccesses.load(Ordering::Relaxed),
            ntasks: self.ntasks,
            granularity: self.granularity,
        }
    }
}

fn upsert(list: &mut Vec<Epoch>, epoch: Epoch) {
    match list.iter_mut().find(|e| e.comp == epoch.comp) {
        Some(e) => *e = epoch,
        None => list.push(epoch),
    }
}

/// Drive a *real* engine over `spec` with instrumented no-op task bodies
/// and return the dynamic checker's verdict.
///
/// This is the executable oracle for [`check_static`]: the engine's
/// actual scheduler (threads, queues, work stealing) executes the graph
/// while every declared access goes through a [`RaceChecker`]. Dangling
/// and self-edges are dropped (the static pass reports them); a cyclic
/// spec fails with [`EngineError::Stalled`] via the watchdog rather than
/// hanging.
pub fn replay(
    spec: &GraphSpec,
    engine: RuntimeKind,
    nworkers: usize,
    granularity: ClockGranularity,
) -> Result<DynamicReport, EngineError> {
    assert!(nworkers >= 1);
    let (succs, npred) = spec.clean_adjacency();
    let n = spec.ntasks;
    let checker = RaceChecker::new(n, spec.ndata, nworkers, granularity);
    let config = RunConfig {
        watchdog: Some(Duration::from_secs(5)),
        ..RunConfig::default()
    };
    let run_body = |t: TaskId, w: usize| {
        checker.task_begin(t, w);
        for &(d, mode) in &spec.accesses[t] {
            checker.access(d, mode, t, w);
        }
        checker.task_end(t, w, &succs[t]);
    };
    match engine {
        RuntimeKind::Native => {
            let tasks: Vec<NativeTask> = (0..n)
                .map(|t| NativeTask {
                    owner: t % nworkers,
                    npred: npred[t],
                    succs: succs[t].clone(),
                    priority: (n - t) as f64,
                })
                .collect();
            run_native_checked(&tasks, nworkers, config, run_body)?;
        }
        RuntimeKind::Dataflow => {
            let mut g = DataflowGraph::new(0);
            for t in 0..n {
                let run_body = &run_body;
                g.submit(&[], (n - t) as f64, move |w| run_body(t, w));
            }
            for (p, list) in succs.iter().enumerate() {
                for &s in list {
                    g.add_dependency(p, s)
                        .expect("clean_adjacency yields only valid edges");
                }
            }
            g.execute_checked(nworkers, config)?;
        }
        RuntimeKind::Ptg => {
            struct Replay<'a, F: Fn(TaskId, usize) + Sync> {
                succs: &'a [Vec<TaskId>],
                npred: &'a [u32],
                body: F,
            }
            impl<F: Fn(TaskId, usize) + Sync> PtgProgram for Replay<'_, F> {
                fn num_tasks(&self) -> usize {
                    self.succs.len()
                }
                fn num_predecessors(&self, task: usize) -> u32 {
                    self.npred[task]
                }
                fn successors(&self, task: usize, out: &mut Vec<usize>) {
                    out.extend_from_slice(&self.succs[task]);
                }
                fn execute(&self, task: usize, worker: usize) {
                    (self.body)(task, worker);
                }
                fn priority(&self, task: usize) -> f64 {
                    -(task as f64)
                }
            }
            let program = Replay {
                succs: &succs,
                npred: &npred,
                body: run_body,
            };
            run_ptg_checked(&program, nworkers, config)?;
        }
    }
    Ok(checker.report())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 0→1→2 writing one datum: clean under every check.
    fn chain_spec() -> GraphSpec {
        let mut spec = GraphSpec::new(3);
        for t in 0..3 {
            spec.access(t, 0, Mode::ReadWrite);
        }
        spec.edge(0, 1);
        spec.edge(1, 2);
        spec
    }

    #[test]
    fn clean_chain_passes_static() {
        let report = check_static(&chain_spec());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.nedges, 2);
        assert_eq!(report.pairs_checked, 2);
    }

    #[test]
    fn transitive_order_is_accepted() {
        // 0→1→2 but 0 and 2 share the datum; 1 does not touch it. The
        // frontier keeps 0 as last writer and must find the 0→1→2 path.
        let mut spec = GraphSpec::new(3);
        spec.access(0, 0, Mode::Write);
        spec.access(2, 0, Mode::ReadWrite);
        spec.edge(0, 1);
        spec.edge(1, 2);
        let report = check_static(&spec);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn dropped_edge_is_a_static_race() {
        let mut spec = chain_spec();
        assert!(spec.remove_edge(1, 2));
        let report = check_static(&spec);
        assert_eq!(report.races.len(), 1);
        let race = &report.races[0];
        assert_eq!((race.data, race.first, race.second), (0, 1, 2));
    }

    #[test]
    fn read_read_needs_no_order() {
        let mut spec = GraphSpec::new(3);
        spec.access(0, 0, Mode::Write);
        spec.access(1, 0, Mode::Read);
        spec.access(2, 0, Mode::Read);
        spec.edge(0, 1);
        spec.edge(0, 2);
        assert!(check_static(&spec).is_clean());
    }

    #[test]
    fn accum_accum_needs_no_order_but_read_accum_does() {
        // Two unordered accumulators: fine. An unordered reader: race.
        let mut spec = GraphSpec::new(4);
        spec.access(0, 0, Mode::Write);
        spec.access(1, 0, Mode::Accum);
        spec.access(2, 0, Mode::Accum);
        spec.access(3, 0, Mode::Read);
        spec.edge(0, 1);
        spec.edge(0, 2);
        spec.edge(0, 3); // 3 unordered w.r.t. accums 1 and 2
        let report = check_static(&spec);
        assert_eq!(report.races.len(), 2, "{report}");
        assert!(report.races.iter().all(|r| r.second == 3));
    }

    #[test]
    fn cycle_is_reported_as_deadlock() {
        let mut spec = GraphSpec::new(3);
        spec.edge(0, 1);
        spec.edge(1, 2);
        spec.edge(2, 1); // 1 ⇄ 2 cycle
        let report = check_static(&spec);
        assert_eq!(report.deadlocked, vec![1, 2]);
        assert!(!report.is_clean());
    }

    #[test]
    fn malformed_edges_are_classified() {
        let mut spec = GraphSpec::new(2);
        spec.edge(0, 1);
        spec.edge(0, 1); // duplicate
        spec.edge(1, 1); // self
        spec.edge(0, 7); // dangling
        let report = check_static(&spec);
        assert_eq!(report.duplicate_edges, vec![(0, 1)]);
        assert_eq!(report.self_edges, vec![1]);
        assert_eq!(report.dangling_edges, vec![(0, 7)]);
        assert_eq!(report.nedges, 1);
    }

    #[test]
    fn signature_collapses_granularity() {
        // Coarse graph: one task accumulates sources {5, 3} then task
        // tagged 9 closes. Fine graph: serialized updates 3 then 5, then
        // 9. Signatures must match.
        let mut coarse = GraphSpec::new(2);
        coarse.access(0, 0, Mode::Accum);
        coarse.access(1, 0, Mode::ReadWrite);
        coarse.edge(0, 1);
        coarse.set_tag(0, 5);
        coarse.set_tag(1, 9);
        let mut coarse2 = GraphSpec::new(3);
        coarse2.access(0, 0, Mode::Accum);
        coarse2.access(1, 0, Mode::Accum);
        coarse2.access(2, 0, Mode::ReadWrite);
        coarse2.edge(0, 2);
        coarse2.edge(1, 2);
        coarse2.set_tag(0, 5);
        coarse2.set_tag(1, 3);
        coarse2.set_tag(2, 9);
        let mut fine = GraphSpec::new(3);
        fine.access(0, 0, Mode::ReadWrite);
        fine.access(1, 0, Mode::ReadWrite);
        fine.access(2, 0, Mode::ReadWrite);
        fine.edge(0, 1);
        fine.edge(1, 2);
        fine.set_tag(0, 3);
        fine.set_tag(1, 5);
        fine.set_tag(2, 9);
        let c = conflict_signature(&coarse).expect("acyclic");
        let c2 = conflict_signature(&coarse2).expect("acyclic");
        let f = conflict_signature(&fine).expect("acyclic");
        assert_eq!(c2, f);
        assert_eq!(c[0], vec![5, 9]);
        assert_eq!(f[0], vec![3, 5, 9]);
    }

    #[test]
    fn signature_none_on_cycle() {
        let mut spec = GraphSpec::new(2);
        spec.edge(0, 1);
        spec.edge(1, 0);
        assert!(conflict_signature(&spec).is_none());
    }

    #[test]
    fn vector_clock_checker_flags_unordered_writers() {
        // Drive the checker directly from two logical workers with no
        // release edge between the tasks: deterministic dynamic race.
        let rc = RaceChecker::new(2, 1, 2, ClockGranularity::PerWorker);
        rc.task_begin(0, 0);
        rc.access(0, Mode::Write, 0, 0);
        rc.task_end(0, 0, &[]);
        rc.task_begin(1, 1);
        rc.access(0, Mode::Write, 1, 1);
        rc.task_end(1, 1, &[]);
        let report = rc.report();
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].earlier, 0);
        assert_eq!(report.races[0].later, 1);
    }

    #[test]
    fn vector_clock_checker_accepts_released_order() {
        // Same two tasks, but task 0 publishes to task 1 → no race.
        let rc = RaceChecker::new(2, 1, 2, ClockGranularity::PerWorker);
        rc.task_begin(0, 0);
        rc.access(0, Mode::Write, 0, 0);
        rc.task_end(0, 0, &[1]);
        rc.task_begin(1, 1);
        rc.access(0, Mode::Write, 1, 1);
        rc.task_end(1, 1, &[]);
        assert!(rc.report().is_clean());
    }

    #[test]
    fn replay_clean_spec_on_all_engines() {
        // Diamond over one datum: 0 writes, 1 and 2 read, 3 rewrites.
        let mut spec = GraphSpec::new(4);
        spec.access(0, 0, Mode::Write);
        spec.access(1, 0, Mode::Read);
        spec.access(2, 0, Mode::Read);
        spec.access(3, 0, Mode::ReadWrite);
        spec.edge(0, 1);
        spec.edge(0, 2);
        spec.edge(1, 3);
        spec.edge(2, 3);
        assert!(check_static(&spec).is_clean());
        for engine in RuntimeKind::ALL {
            for granularity in [ClockGranularity::PerWorker, ClockGranularity::PerTask] {
                let report = replay(&spec, engine, 4, granularity)
                    .expect("replay must complete");
                assert!(report.is_clean(), "{engine:?}/{granularity:?}: {report}");
                assert_eq!(report.naccesses, 4);
            }
        }
    }

    #[test]
    fn replay_flags_dropped_edge_on_all_engines() {
        // W→R chain with the edge dropped: per-task clocks flag it
        // deterministically on every engine, any schedule.
        let mut spec = GraphSpec::new(2);
        spec.access(0, 0, Mode::Write);
        spec.access(1, 0, Mode::Write);
        // no edge at all
        assert_eq!(check_static(&spec).races.len(), 1);
        for engine in RuntimeKind::ALL {
            let report = replay(&spec, engine, 2, ClockGranularity::PerTask)
                .expect("replay must complete");
            assert_eq!(report.races.len(), 1, "{engine:?}: {report}");
            assert_eq!(report.races[0].data, 0);
        }
    }

    #[test]
    fn replay_cyclic_spec_stalls_instead_of_hanging() {
        let mut spec = GraphSpec::new(2);
        spec.edge(0, 1);
        spec.edge(1, 0);
        let err = replay(&spec, RuntimeKind::Native, 2, ClockGranularity::PerWorker);
        assert!(
            matches!(err, Err(EngineError::Stalled { .. })),
            "expected stall, got {err:?}"
        );
    }

    #[test]
    fn spec_extraction_from_native_and_ptg() {
        let tasks = vec![
            NativeTask { owner: 0, npred: 0, succs: vec![1], priority: 1.0 },
            NativeTask { owner: 1, npred: 1, succs: vec![], priority: 0.0 },
        ];
        let mut spec = GraphSpec::from_native(&tasks);
        spec.access(0, 0, Mode::Write);
        spec.access(1, 0, Mode::Read);
        assert!(check_static(&spec).is_clean());

        struct Chain;
        impl PtgProgram for Chain {
            fn num_tasks(&self) -> usize {
                3
            }
            fn num_predecessors(&self, t: usize) -> u32 {
                u32::from(t > 0)
            }
            fn successors(&self, t: usize, out: &mut Vec<usize>) {
                if t + 1 < 3 {
                    out.push(t + 1);
                }
            }
            fn execute(&self, _: usize, _: usize) {}
        }
        let mut spec = GraphSpec::from_ptg(&Chain);
        for t in 0..3 {
            spec.access(t, 0, Mode::ReadWrite);
        }
        assert!(check_static(&spec).is_clean());
        assert_eq!(spec.nedges(), 2);
    }
}
