//! The runtime's synchronization shim — the **only** place `rt` code is
//! allowed to get its `Mutex`/`Condvar`/`Arc`/atomics from (enforced by
//! the `lint-safety` tool; test modules are exempt).
//!
//! Two backends, selected at compile time:
//!
//! * **std** (default): a mutex whose `lock()` never returns a poison
//!   error (a panicking task must not wedge every later lock — the
//!   checked execution layer in [`crate::fault`] owns panic propagation),
//!   a condvar with a timed wait (the stall watchdog must wake blocked
//!   workers periodically), and straight re-exports of `std`'s `Arc`,
//!   `Once` and atomics. Zero external dependencies, zero overhead.
//! * **model** (`--cfg loom`): the in-repo loom-style checker of
//!   [`crate::model`] — every operation becomes an explorable scheduling
//!   point and every memory ordering is interpreted by the vector-clock
//!   model, so the `loom_models` suite checks the runtime's own deque,
//!   budget and trace code, not a transcription of it. `Arc` and `Once`
//!   stay `std` under the model too: the protocols never rely on the
//!   release/acquire edge of an `Arc` drop, and `Once` guards
//!   process-global state (panic hooks) that outlives any model
//!   execution.

#[cfg(not(loom))]
mod backend {
    use std::sync::PoisonError;
    use std::time::Duration;

    pub use std::sync::{Arc, Once};

    /// Re-exported atomics; identical to `std::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }

    /// Re-exported guard type; identical to `std::sync::MutexGuard`.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    /// A mutex that shrugs off poisoning: if a holder panicked, the next
    /// `lock()` simply recovers the inner state. Error handling for
    /// panicking tasks is centralized in the engines' checked execution
    /// paths.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wrap a value.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consume the mutex and return the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the lock, recovering from poisoning.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Condition variable companion of [`Mutex`], also poison-transparent.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// New condvar.
        pub fn new() -> Condvar {
            Condvar {
                inner: std::sync::Condvar::new(),
            }
        }

        /// Block until notified.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.inner
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner)
        }

        /// Block until notified or `timeout` elapses; returns the
        /// reacquired guard (the caller re-checks its predicate either
        /// way).
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> MutexGuard<'a, T> {
            self.inner
                .wait_timeout(guard, timeout)
                .unwrap_or_else(PoisonError::into_inner)
                .0
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wake every waiter.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }
}

#[cfg(loom)]
mod backend {
    pub use crate::model::sync::{Condvar, Mutex, MutexGuard};
    pub use std::sync::{Arc, Once};

    /// Model atomics (std's `Ordering`, interpreted by the vector-clock
    /// model of [`crate::model::atomic`]).
    pub mod atomic {
        pub use crate::model::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

pub use backend::*;

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn poisoned_lock_preserves_mutations_made_before_the_panic() {
        // The recovering lock must expose the state as the panicking
        // holder left it — the engines rely on queues staying coherent
        // when a task body panics mid-drain.
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let mut g = m2.lock();
            g.push(4);
            panic!("poison after mutating");
        })
        .join();
        assert_eq!(*m.lock(), vec![1, 2, 3, 4]);
        // And the mutex stays fully usable afterwards.
        m.lock().push(5);
        assert_eq!(m.lock().len(), 5);
    }

    #[test]
    fn wait_timeout_returns() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = m.lock();
        let _guard = cv.wait_timeout(guard, Duration::from_millis(5));
    }

    #[test]
    fn wait_timeout_elapses_without_notifier() {
        // With nobody notifying, the timed wait must return in bounded
        // time with the guard reacquired (predicate unchanged).
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let start = Instant::now();
        let guard = m.lock();
        let guard = cv.wait_timeout(guard, Duration::from_millis(10));
        assert_eq!(*guard, 0);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn wait_timeout_sees_notification() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*shared;
        let mut guard = m.lock();
        // Timed-wait loop exactly as the dataflow central queue runs it.
        while !*guard {
            guard = cv.wait_timeout(guard, Duration::from_millis(5));
        }
        drop(guard);
        t.join().unwrap();
    }

    #[test]
    fn into_inner_recovers_from_poison() {
        let m = Arc::new(Mutex::new(11u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        let m = Arc::try_unwrap(m).expect("sole owner");
        assert_eq!(m.into_inner(), 11);
    }
}
