//! Minimal synchronization primitives over `std::sync`.
//!
//! The engines only need a mutex whose `lock()` never returns a poison
//! error (a panicking task must not wedge every later lock — the checked
//! execution layer in [`crate::fault`] owns panic propagation) and a
//! condvar with a timed wait (the stall watchdog must wake blocked workers
//! periodically). Wrapping `std::sync` keeps the whole runtime free of
//! external dependencies.

use std::sync::PoisonError;
use std::time::Duration;

/// Re-exported guard type; identical to `std::sync::MutexGuard`.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex that shrugs off poisoning: if a holder panicked, the next
/// `lock()` simply recovers the inner state. Error handling for panicking
/// tasks is centralized in the engines' checked execution paths.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable companion of [`Mutex`], also poison-transparent.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condvar.
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until notified or `timeout` elapses; returns the reacquired
    /// guard (the caller re-checks its predicate either way).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> MutexGuard<'a, T> {
        self.inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner)
            .0
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn wait_timeout_returns() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = m.lock();
        let _guard = cv.wait_timeout(guard, Duration::from_millis(5));
    }
}
