//! # dagfact-rt
//!
//! Three task-based runtime engines, the Rust stand-ins for the paper's
//! three schedulers (§IV):
//!
//! * [`native`] — the PaStiX-style engine: tasks carry an analyze-time
//!   *static* worker assignment from the cost-model list schedule, each
//!   worker drains its own priority queue, and idle workers steal — the
//!   "dynamic scheduler based on a work-stealing strategy [that reduces]
//!   idle times while preserving a good locality" of \[1\].
//! * [`dataflow`] — the StarPU-like engine: tasks are *submitted
//!   sequentially* with data access modes (R/W/RW); the engine infers
//!   dependencies from data hazards (RAW/WAR/WAW) at submission and
//!   schedules ready tasks from one **centralized** priority queue.
//!   Centralization mirrors StarPU's single scheduling domain and is the
//!   modeled reason for its small multicore overhead ("lack of cache reuse
//!   policy", §V-A).
//! * [`ptg`] — the PaRSEC-like engine: the task graph is given
//!   *algebraically* as a [`ptg::PtgProgram`] (successor/predecessor-count
//!   functions, the analogue of PaRSEC's parameterized task graph). Tasks
//!   are never materialized before they are ready; each completion
//!   *locally* releases its successors onto the finishing worker's LIFO
//!   deque (data reuse), with Chase-Lev stealing for balance.
//!
//! The engines run real OS threads and synchronize with atomics + the
//! internal [`sync`]/[`deque`] primitives; they are exercised by the
//! solver's factorization (correctness) while the *performance* study of
//! the paper is reproduced on the deterministic simulator in
//! `dagfact-gpusim` (see DESIGN.md §2).
//!
//! All three engines share the fault-tolerant execution layer of
//! [`fault`]: a `*_checked` entry point per engine catches task panics,
//! retries transient failures with bounded backoff, detects stalled
//! schedulers with a watchdog, and reports per-task attempt counts —
//! with deterministic fault *injection* ([`fault::FaultPlan`]) for
//! testing all of it.
//!
//! The hazard contract the engines enforce (and [`shared::SharedSlice`]
//! relies on) is machine-checked by [`verify`]: static happens-before
//! race/deadlock analysis over any engine's submitted graph, a dynamic
//! vector-clock race checker, and a cross-engine equivalence signature.
//! The *runtime primitives* that uphold that contract at execution time
//! are themselves model-checked: [`sync`] is a dual-backend shim that,
//! under `--cfg loom`, swaps std synchronization for the in-repo
//! loom-style checker in [`model`], and the `loom_models` test suite
//! exhaustively explores the load-bearing protocols (fan-in release,
//! deque, watchdog shutdown, budget ledger, trace lanes).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod budget;
pub mod dataflow;
pub mod deque;
pub mod distproto;
pub mod fault;
pub mod model;
pub mod native;
pub mod ptg;
pub mod shared;
pub mod sync;
pub mod trace;
pub mod verify;

pub use budget::{BudgetError, MemoryBudget, MemoryStats, PhaseStats, PressureLevel};
pub use distproto::{ApplyLog, RetransmitExhausted, SendState};
pub use fault::{
    CancelToken, EngineError, FaultPlan, MsgFate, RetryPolicy, RunConfig, RunReport,
    TransientFault,
};
pub use shared::{release_pending, ReleaseUnderflow, SharedSlice};
pub use trace::{Span, SpanKind, Trace, TraceRecorder};

/// Identifier of a task within one engine run.
pub type TaskId = usize;

/// Identifier of a datum (panel, block, …) used for hazard tracking.
pub type DataId = usize;

/// How a task touches a datum (StarPU-style access modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read-only.
    Read,
    /// Write-only (no previous value observed).
    Write,
    /// Read-modify-write.
    ReadWrite,
}

impl AccessMode {
    /// Does the access observe previous writes?
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Does the access produce a new value?
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// Which runtime engine executes the factorization — the axis of the
/// paper's comparison (PaStiX vs. StarPU vs. PaRSEC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// Native static-schedule + work-stealing engine.
    Native,
    /// StarPU-like sequential-submission dataflow engine.
    Dataflow,
    /// PaRSEC-like parameterized-task-graph engine.
    Ptg,
}

impl RuntimeKind {
    /// Paper-style display name.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Native => "PaStiX-native",
            RuntimeKind::Dataflow => "StarPU-like",
            RuntimeKind::Ptg => "PaRSEC-like",
        }
    }

    /// All engines, in paper order.
    pub const ALL: [RuntimeKind; 3] =
        [RuntimeKind::Native, RuntimeKind::Dataflow, RuntimeKind::Ptg];
}
