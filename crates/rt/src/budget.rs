//! Memory-budget accounting for the numeric phase.
//!
//! The paper's GPU contribution is a *memory-constrained* kernel: the
//! scheduler must know what fits on the device and degrade gracefully
//! when the answer is "not everything" (§IV-C). [`MemoryBudget`] is the
//! ledger that makes that decision possible on the host side: every
//! coefficient-panel, temp-buffer and workspace allocation in
//! `dagfact-core` charges the ledger before allocating and releases it
//! when the storage is dropped or spilled.
//!
//! The ledger drives a three-rung degradation ladder (DESIGN.md §9):
//!
//! 1. **Workspace shedding** — under pressure, GEMM updates switch from
//!    the full temp-buffer+scatter variant to column-chunked buffers and
//!    finally to the in-place direct-scatter variant.
//! 2. **Throttling** — the engines narrow their admission width so fewer
//!    tasks (and therefore fewer live panels and workspaces) run
//!    concurrently ([`crate::fault::Supervisor`] consults
//!    [`MemoryBudget::admission_width`]).
//! 3. **Spilling** — cold factored panels are written to a disk-backed
//!    store and faulted back in for the solve phase (`core/src/spill.rs`).
//!
//! A typed [`BudgetError::Exceeded`] is returned only when even spilling
//! cannot make progress (for example a single panel larger than the
//! whole cap). The [`crate::fault::FaultPlan`] `AllocFail` kind injects
//! failures at [`MemoryBudget::try_charge`] so the whole ladder — and
//! the PR-1 recovery loop above it — stays exercised by tests.

use crate::fault::FaultPlan;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};

/// Pressure at which workspace shedding starts (chunked GEMM buffers).
pub const PRESSURE_SHED: f64 = 0.80;
/// Pressure at which the engines throttle admission width to 2.
pub const PRESSURE_THROTTLE: f64 = 0.90;
/// Pressure at which updates go direct-scatter and admission width is 1.
pub const PRESSURE_CRITICAL: f64 = 0.97;
/// Pressure at which retired (cold) panels are eagerly spilled.
pub const PRESSURE_SPILL: f64 = 0.85;

/// Stable identifiers for the allocation sites that charge the budget.
/// Fault plans pin `AllocFail` injections per site (`alloc=SITExK`).
pub mod site {
    /// Whole-factor L coefficient storage (eager assembly).
    pub const COEFTAB_L: usize = 1;
    /// Whole-factor U coefficient storage (eager assembly, LU only).
    pub const COEFTAB_U: usize = 2;
    /// LDLᵀ diagonal vector.
    pub const DIAG: usize = 3;
    /// Per-worker GEMM temp buffers.
    pub const WORKSPACE: usize = 4;
    /// LDLᵀ `D·Lᵀ` staging buffer (native 1D path).
    pub const DLT: usize = 5;
    /// Lazy-assembly entry plan (per-panel scatter lists).
    pub const ASSEMBLY: usize = 6;
    /// Fault-in of a spilled panel during solve or update.
    pub const SPILL_READBACK: usize = 7;
    /// Long-lived service caches (analysis / factor handles held across
    /// requests by `dagfact-serve`); the first shed victim under load.
    pub const CACHE: usize = 8;
    /// Base for per-panel materialization sites: panel `c` of side L
    /// charges at `PANEL_BASE + key(c)`.
    pub const PANEL_BASE: usize = 64;
}

/// Why a charge was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetError {
    /// The hard cap would be exceeded and the caller asked for a strict
    /// charge (no spill/overcommit escape).
    Exceeded {
        /// Bytes the caller asked for.
        requested: usize,
        /// Bytes charged at the time of the request.
        used: usize,
        /// The configured hard cap.
        cap: usize,
        /// Allocation site (see [`site`]).
        site: usize,
    },
    /// A fault plan injected an allocation failure at this site.
    Injected {
        /// Allocation site (see [`site`]).
        site: usize,
    },
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::Exceeded {
                requested,
                used,
                cap,
                site,
            } => write!(
                f,
                "memory budget exceeded: requested {requested} B at site {site} \
                 with {used} B of {cap} B in use"
            ),
            BudgetError::Injected { site } => {
                write!(f, "injected allocation failure at site {site}")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// Degradation rung derived from current pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Below [`PRESSURE_SHED`]: no degradation.
    Green,
    /// Workspace shedding: chunked GEMM buffers.
    Yellow,
    /// Shedding + admission throttled to width 2.
    Orange,
    /// Direct-scatter updates, admission width 1, eager spill.
    Red,
}

/// Peak-memory snapshot for one named phase (assembly, factorization,
/// solve, …) as recorded by [`MemoryBudget::end_phase`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Phase label.
    pub name: String,
    /// High-water mark of charged bytes during the phase.
    pub peak_bytes: usize,
    /// Bytes written to the spill store during the phase.
    pub spill_bytes: usize,
    /// Panels spilled during the phase.
    pub spill_events: usize,
}

/// Snapshot of the ledger counters, carried in `RunReport` and the
/// bench JSON emitter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryStats {
    /// Configured hard cap, if any.
    pub cap: Option<usize>,
    /// Bytes currently charged.
    pub used_bytes: usize,
    /// All-time high-water mark of charged bytes.
    pub peak_bytes: usize,
    /// Total bytes written to the spill store.
    pub spill_bytes: usize,
    /// Panels spilled to disk.
    pub spill_events: usize,
    /// Spilled panels faulted back in.
    pub fault_in_events: usize,
    /// Times an engine worker was denied admission by the throttle.
    pub throttle_events: usize,
    /// GEMM updates that shed workspace (chunked or direct-scatter).
    pub shed_events: usize,
    /// Charges forced above the cap because nothing was evictable.
    pub overcommit_events: usize,
    /// Allocation failures injected by the fault plan.
    pub alloc_faults: usize,
    /// Per-phase peaks, in the order the phases ended.
    pub phases: Vec<PhaseStats>,
}

/// The ledger. Cheap to share (`Arc`), all hot-path counters are
/// atomics; the phase list is behind a mutex touched only at phase
/// boundaries.
#[derive(Debug, Default)]
pub struct MemoryBudget {
    cap: Option<usize>,
    used: AtomicUsize,
    peak: AtomicUsize,
    phase_peak: AtomicUsize,
    phase_spill_bytes: AtomicUsize,
    phase_spill_events: AtomicUsize,
    spill_bytes: AtomicUsize,
    spill_events: AtomicUsize,
    fault_in_events: AtomicUsize,
    throttle_events: AtomicUsize,
    shed_events: AtomicUsize,
    overcommit_events: AtomicUsize,
    alloc_faults: AtomicUsize,
    phases: Mutex<Vec<PhaseStats>>,
    fault: Mutex<Option<Arc<FaultPlan>>>,
}

impl MemoryBudget {
    /// Unbounded ledger: accounting (peaks, counters) without a cap.
    pub fn unbounded() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Ledger with a hard cap in bytes.
    pub fn with_cap(cap: usize) -> Arc<Self> {
        Arc::new(Self {
            cap: Some(cap),
            ..Self::default()
        })
    }

    /// The configured hard cap, if any.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// Attach a fault plan whose `AllocFail` kinds fire inside
    /// [`Self::try_charge`].
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault.lock() = Some(plan);
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Acquire)
    }

    /// All-time high-water mark.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Acquire)
    }

    /// Fraction of the cap currently in use (0.0 when unbounded).
    pub fn pressure(&self) -> f64 {
        match self.cap {
            Some(cap) if cap > 0 => self.used() as f64 / cap as f64,
            _ => 0.0,
        }
    }

    /// Current degradation rung.
    pub fn level(&self) -> PressureLevel {
        let p = self.pressure();
        if p >= PRESSURE_CRITICAL {
            PressureLevel::Red
        } else if p >= PRESSURE_THROTTLE {
            PressureLevel::Orange
        } else if p >= PRESSURE_SHED {
            PressureLevel::Yellow
        } else {
            PressureLevel::Green
        }
    }

    /// Should retired (cold) panels be spilled eagerly right now?
    pub fn should_spill(&self) -> bool {
        self.cap.is_some() && self.pressure() >= PRESSURE_SPILL
    }

    /// Engine admission width: `None` means unlimited; `Some(w)` means
    /// at most `w` tasks should run concurrently. Always ≥ 1 so the
    /// watchdog can never see a fully-throttled live graph.
    pub fn admission_width(&self) -> Option<usize> {
        match self.level() {
            PressureLevel::Green | PressureLevel::Yellow => None,
            PressureLevel::Orange => Some(2),
            PressureLevel::Red => Some(1),
        }
    }

    /// Charge `bytes` at `site`, failing if an injected fault fires or
    /// the hard cap would be exceeded. On `Ok(())` the caller owns the
    /// charge and must pair it with [`Self::release`].
    pub fn try_charge(&self, bytes: usize, site: usize) -> Result<(), BudgetError> {
        if self.take_injected_failure(site) {
            return Err(BudgetError::Injected { site });
        }
        // ORDERING: optimistic first read of a CAS loop — a stale value
        // only costs one extra CAS iteration.
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if let Some(cap) = self.cap {
                if next > cap {
                    return Err(BudgetError::Exceeded {
                        requested: bytes,
                        used: cur,
                        cap,
                        site,
                    });
                }
            }
            // ORDERING: Relaxed on CAS failure — the reloaded value only
            // feeds the next iteration's attempt, nothing is published.
            match self.used.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.bump_peak(next);
                    return Ok(());
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Charge `bytes` at `site` unconditionally (overcommit): used when
    /// an allocation is required for progress and nothing is evictable.
    /// Still consults the fault plan so injection reaches forced sites.
    pub fn charge_forced(&self, bytes: usize, site: usize) -> Result<(), BudgetError> {
        if self.take_injected_failure(site) {
            return Err(BudgetError::Injected { site });
        }
        let next = self.used.fetch_add(bytes, Ordering::AcqRel) + bytes;
        if let Some(cap) = self.cap {
            if next > cap {
                // ORDERING: statistics counter; no memory is published.
                self.overcommit_events.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.bump_peak(next);
        Ok(())
    }

    /// Release a previous charge.
    pub fn release(&self, bytes: usize) {
        self.used.fetch_sub(bytes, Ordering::AcqRel);
    }

    fn take_injected_failure(&self, site: usize) -> bool {
        let plan = self.fault.lock().clone();
        if let Some(plan) = plan {
            if plan.take_alloc_fail(site) {
                // ORDERING: statistics counter; no memory is published.
                self.alloc_faults.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    fn bump_peak(&self, next: usize) {
        self.peak.fetch_max(next, Ordering::AcqRel);
        self.phase_peak.fetch_max(next, Ordering::AcqRel);
    }

    /// Record a spill of `bytes` (one panel written to disk).
    pub fn note_spill(&self, bytes: usize) {
        // ORDERING: statistics counters; no memory is published.
        self.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_events.fetch_add(1, Ordering::Relaxed);
        self.phase_spill_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.phase_spill_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a spilled panel faulted back into memory.
    pub fn note_fault_in(&self) {
        // ORDERING: statistics counter; no memory is published.
        self.fault_in_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an admission denial by the engine throttle.
    pub fn note_throttle(&self) {
        // ORDERING: statistics counter; no memory is published.
        self.throttle_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a GEMM update that shed workspace (chunked or direct).
    pub fn note_shed(&self) {
        // ORDERING: statistics counter; no memory is published.
        self.shed_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Close the current phase under `name`, recording its peak and
    /// spill traffic, and reset the per-phase counters for the next one.
    pub fn end_phase(&self, name: &str) {
        let peak = self.phase_peak.swap(self.used(), Ordering::AcqRel);
        let spill_bytes = self.phase_spill_bytes.swap(0, Ordering::AcqRel);
        let spill_events = self.phase_spill_events.swap(0, Ordering::AcqRel);
        self.phases.lock().push(PhaseStats {
                name: name.to_string(),
                peak_bytes: peak,
                spill_bytes,
                spill_events,
            });
    }

    /// Snapshot every counter.
    pub fn stats(&self) -> MemoryStats {
        // ORDERING: statistics snapshot; counters are independent and
        // staleness is acceptable, so Relaxed loads suffice.
        MemoryStats {
            cap: self.cap,
            used_bytes: self.used(),
            peak_bytes: self.peak(),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            spill_events: self.spill_events.load(Ordering::Relaxed),
            fault_in_events: self.fault_in_events.load(Ordering::Relaxed),
            throttle_events: self.throttle_events.load(Ordering::Relaxed),
            shed_events: self.shed_events.load(Ordering::Relaxed),
            overcommit_events: self.overcommit_events.load(Ordering::Relaxed),
            alloc_faults: self.alloc_faults.load(Ordering::Relaxed),
            phases: self.phases.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_tracks_peak() {
        let b = MemoryBudget::unbounded();
        b.try_charge(100, site::WORKSPACE).expect("charge");
        b.try_charge(50, site::DIAG).expect("charge");
        assert_eq!(b.used(), 150);
        b.release(100);
        assert_eq!(b.used(), 50);
        assert_eq!(b.peak(), 150);
        assert_eq!(b.pressure(), 0.0);
        assert_eq!(b.level(), PressureLevel::Green);
    }

    #[test]
    fn hard_cap_rejects_with_typed_error() {
        let b = MemoryBudget::with_cap(100);
        b.try_charge(80, site::COEFTAB_L).expect("fits");
        let err = b.try_charge(40, site::WORKSPACE).expect_err("over cap");
        assert_eq!(
            err,
            BudgetError::Exceeded {
                requested: 40,
                used: 80,
                cap: 100,
                site: site::WORKSPACE
            }
        );
        // The failed charge must not leak into the ledger.
        assert_eq!(b.used(), 80);
    }

    #[test]
    fn pressure_levels_follow_thresholds() {
        let b = MemoryBudget::with_cap(1000);
        b.try_charge(790, 1).expect("charge");
        assert_eq!(b.level(), PressureLevel::Green);
        assert_eq!(b.admission_width(), None);
        b.try_charge(10, 1).expect("charge");
        assert_eq!(b.level(), PressureLevel::Yellow);
        assert_eq!(b.admission_width(), None);
        b.try_charge(100, 1).expect("charge");
        assert_eq!(b.level(), PressureLevel::Orange);
        assert_eq!(b.admission_width(), Some(2));
        b.try_charge(70, 1).expect("charge");
        assert_eq!(b.level(), PressureLevel::Red);
        assert_eq!(b.admission_width(), Some(1));
        assert!(b.should_spill());
    }

    #[test]
    fn forced_charge_overcommits_and_counts() {
        let b = MemoryBudget::with_cap(100);
        b.try_charge(90, 1).expect("charge");
        b.charge_forced(50, 2).expect("forced");
        assert_eq!(b.used(), 140);
        let stats = b.stats();
        assert_eq!(stats.overcommit_events, 1);
        assert_eq!(stats.peak_bytes, 140);
    }

    #[test]
    fn phases_record_peaks_independently() {
        let b = MemoryBudget::unbounded();
        b.try_charge(100, 1).expect("charge");
        b.end_phase("assembly");
        b.release(100);
        b.try_charge(40, 1).expect("charge");
        b.note_spill(16);
        b.end_phase("factorization");
        let stats = b.stats();
        assert_eq!(stats.phases.len(), 2);
        assert_eq!(stats.phases[0].name, "assembly");
        assert_eq!(stats.phases[0].peak_bytes, 100);
        assert_eq!(stats.phases[0].spill_events, 0);
        // A phase opens at the previous phase's residual usage (100 was
        // still charged at the boundary), so that is its floor.
        assert_eq!(stats.phases[1].peak_bytes, 100);
        assert_eq!(stats.phases[1].spill_bytes, 16);
        assert_eq!(stats.phases[1].spill_events, 1);
        assert_eq!(stats.spill_events, 1);
    }

    #[test]
    fn injected_alloc_failure_consumes_budget() {
        let plan = Arc::new(FaultPlan::new().alloc_fail_on(site::WORKSPACE, 2));
        let b = MemoryBudget::with_cap(1 << 20);
        b.set_fault_plan(plan);
        assert_eq!(
            b.try_charge(8, site::WORKSPACE),
            Err(BudgetError::Injected {
                site: site::WORKSPACE
            })
        );
        assert_eq!(
            b.try_charge(8, site::WORKSPACE),
            Err(BudgetError::Injected {
                site: site::WORKSPACE
            })
        );
        // Failure budget consumed: third attempt succeeds.
        b.try_charge(8, site::WORKSPACE).expect("third try fits");
        assert_eq!(b.stats().alloc_faults, 2);
        // Other sites unaffected.
        b.try_charge(8, site::DIAG).expect("other site");
    }
}
