//! Task-level tracing, timeline metrics and critical-path analysis.
//!
//! The paper's entire evaluation is *timing observability*: per-kernel
//! cost breakdowns, per-worker Gantt charts and scheduler-overhead
//! comparisons (Figs. 2–8). This module is the measured counterpart: a
//! [`TraceRecorder`] threaded through [`crate::fault::RunConfig`] collects
//! per-worker spans (queue-wait vs. execute vs. steal) from all three
//! engines, the solver registers per-task metadata (kernel kind, panel,
//! model flops) and the measured dependency edges, and the resulting
//! [`Trace`] supports the analyses the paper's figures are built from:
//! longest weighted path over the measured DAG, per-kernel time/GFLOP/s
//! attribution, per-worker busy/idle shares and parallel efficiency.
//!
//! **Cost model.** When no recorder is installed every hook is one branch
//! on an `Option` — no clock reads, no allocation (verified by the
//! `traceoverhead` bench gate). When enabled, workers append to a private
//! [`Lane`] buffer (no shared state on the hot path) that is merged into
//! the recorder once, when the worker exits.

use crate::sync::{Arc, Mutex};
use crate::TaskId;
use std::collections::HashMap;
use std::time::Instant;

/// Unit conventions shared by every producer and consumer of trace data.
///
/// * **time** — `u64` **nanoseconds** since the owning recorder's epoch
///   (`Instant`-based, monotonic). Nanoseconds keep sub-microsecond task
///   bodies resolvable; `u64` holds ~584 years, so saturation is
///   theoretical — but every `u128 → u64` narrowing here still goes
///   through [`units::nanos_u64`]-style *saturating* conversions, never a
///   silently-truncating `as` cast.
/// * **bytes** — `usize` (exact; the ledger in [`crate::budget`] uses the
///   same convention).
/// * **flops** — `f64` floating-point operation counts from the symbolic
///   cost model (exact below 2⁵³, far above any panel's flop count).
pub mod units {
    use std::time::Duration;

    /// Nanoseconds in a second, as `f64` (for rate conversions).
    pub const NS_PER_SEC: f64 = 1e9;

    /// A [`Duration`] as whole nanoseconds, saturating at `u64::MAX`
    /// (≈ 584 years) instead of truncating the `u128`.
    #[inline]
    pub fn nanos_u64(d: Duration) -> u64 {
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    /// A [`Duration`] as whole microseconds, saturating at `u64::MAX`.
    #[inline]
    pub fn micros_u64(d: Duration) -> u64 {
        u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
    }

    /// Nanoseconds → seconds (`f64`; exact below 2⁵³ ns ≈ 104 days).
    #[inline]
    pub fn ns_to_secs(ns: u64) -> f64 {
        ns as f64 / NS_PER_SEC
    }

    /// Nanoseconds → microseconds as `f64` (the Chrome-trace `ts` unit).
    #[inline]
    pub fn ns_to_micros(ns: u64) -> f64 {
        ns as f64 / 1e3
    }
}

/// Worker index used for run-level phase spans (no real worker thread).
pub const PHASE_LANE: usize = usize::MAX;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A task body executing (one span per attempt).
    Execute,
    /// A worker waiting for ready work that arrived from its own queue
    /// (or the central queue / injector).
    QueueWait,
    /// A worker waiting that ended by stealing from a peer's queue.
    Steal,
    /// A solver phase (order / symbolic / assembly / numeric / solve /
    /// refine), recorded on the [`PHASE_LANE`].
    Phase,
}

impl SpanKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Execute => "execute",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::Steal => "steal",
            SpanKind::Phase => "phase",
        }
    }
}

/// One recorded interval on one worker's timeline. Times are nanoseconds
/// since the recorder epoch (see [`units`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// What the interval measures.
    pub kind: SpanKind,
    /// The task involved (`None` for phases).
    pub task: Option<TaskId>,
    /// Worker index, or [`PHASE_LANE`].
    pub worker: usize,
    /// Start, ns since epoch.
    pub start_ns: u64,
    /// End, ns since epoch (≥ `start_ns`).
    pub end_ns: u64,
    /// Display label: the phase name, or [`SpanKind::label`].
    pub label: &'static str,
}

impl Span {
    /// Duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Solver-registered metadata for one task (kernel kind, target panel,
/// model flops from the symbolic cost model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskMeta {
    /// Kernel family label (`"panel"`, `"update"`, `"1d-panel"`, …).
    pub kernel: &'static str,
    /// Supernode / panel the task writes.
    pub panel: usize,
    /// Model flop count of the task.
    pub flops: f64,
}

/// Shared, thread-safe span sink for one (or more) engine runs.
///
/// Created once per traced solve and passed to the engines through
/// [`crate::fault::RunConfig::trace`]. All timestamps are relative to the
/// recorder's construction instant, so spans from the analysis phase, the
/// engine run and the solve phase share one timeline.
pub struct TraceRecorder {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    meta: Mutex<HashMap<TaskId, TaskMeta>>,
    edges: Mutex<Vec<(TaskId, TaskId)>>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("spans", &self.len())
            .finish_non_exhaustive()
    }
}

impl TraceRecorder {
    /// Fresh recorder; its construction instant is time zero.
    pub fn new() -> TraceRecorder {
        TraceRecorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            meta: Mutex::new(HashMap::new()),
            edges: Mutex::new(Vec::new()),
        }
    }

    /// Fresh shared recorder, ready for [`crate::fault::RunConfig::trace`].
    pub fn shared() -> Arc<TraceRecorder> {
        Arc::new(TraceRecorder::new())
    }

    /// Nanoseconds since the recorder epoch (saturating).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        units::nanos_u64(self.epoch.elapsed())
    }

    /// Merge a worker's private span buffer (called once per worker, at
    /// worker exit — never on the task hot path).
    pub fn merge_lane(&self, lane: Vec<Span>) {
        if lane.is_empty() {
            return;
        }
        self.spans.lock().extend(lane);
    }

    /// Record one span directly (phases; not for per-task hot paths).
    pub fn record(&self, span: Span) {
        self.spans.lock().push(span);
    }

    /// Register solver-side metadata for `task`. Later registrations win
    /// (a re-factorization reuses the recorder).
    pub fn set_task_meta(&self, task: TaskId, kernel: &'static str, panel: usize, flops: f64) {
        self.meta.lock().insert(task, TaskMeta { kernel, panel, flops });
    }

    /// Register measured-DAG dependency edges (`pred → succ`) for the
    /// critical-path analyzer. Replaces previously registered edges when
    /// a re-factorization reuses the recorder (task ids restart at 0).
    pub fn set_edges(&self, edges: Vec<(TaskId, TaskId)>) {
        *self.edges.lock() = edges;
    }

    /// Clear recorded spans/meta/edges but keep the epoch — used when an
    /// escalation loop re-runs the numeric phase and only the final
    /// attempt should be reported.
    pub fn reset_tasks(&self) {
        self.spans.lock().retain(|s| s.kind == SpanKind::Phase);
        self.meta.lock().clear();
        self.edges.lock().clear();
    }

    /// Run `f` under a named [`SpanKind::Phase`] span on [`PHASE_LANE`].
    pub fn phase<R>(&self, label: &'static str, f: impl FnOnce() -> R) -> R {
        let start_ns = self.now_ns();
        let out = f();
        let end_ns = self.now_ns();
        self.record(Span {
            kind: SpanKind::Phase,
            task: None,
            worker: PHASE_LANE,
            start_ns,
            end_ns: end_ns.max(start_ns),
            label,
        });
        out
    }

    /// Record a named [`SpanKind::Phase`] span that started at `start_ns`
    /// (from [`TraceRecorder::now_ns`]) and ends now — for phases whose
    /// body does not fit a closure.
    pub fn phase_from(&self, label: &'static str, start_ns: u64) {
        let end_ns = self.now_ns();
        self.record(Span {
            kind: SpanKind::Phase,
            task: None,
            worker: PHASE_LANE,
            start_ns,
            end_ns: end_ns.max(start_ns),
            label,
        });
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable snapshot of everything recorded so far, sorted by
    /// `(worker, start)` for rendering and analysis.
    pub fn snapshot(&self) -> Trace {
        let mut spans = self.spans.lock().clone();
        spans.sort_by(|a, b| {
            (a.worker, a.start_ns, a.end_ns).cmp(&(b.worker, b.start_ns, b.end_ns))
        });
        Trace {
            spans,
            meta: self.meta.lock().clone(),
            edges: self.edges.lock().clone(),
        }
    }
}

/// A worker-private span buffer. All hot-path methods are a single branch
/// when tracing is disabled (`rec == None`); the buffer is merged into the
/// recorder on [`Lane::flush`] or drop.
pub struct Lane<'a> {
    rec: Option<&'a TraceRecorder>,
    worker: usize,
    buf: Vec<Span>,
}

impl<'a> Lane<'a> {
    /// Lane for `worker`; pass `None` to disable all recording.
    pub fn new(rec: Option<&'a TraceRecorder>, worker: usize) -> Lane<'a> {
        Lane {
            rec,
            worker,
            // ALLOC: one span buffer per worker, created at spawn time;
            // `record` pushes amortize over the kept capacity.
            buf: Vec::new(),
        }
    }

    /// Is recording enabled?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Current time (ns since the recorder epoch), or 0 when disabled.
    #[inline]
    pub fn now(&self) -> u64 {
        match self.rec {
            Some(rec) => rec.now_ns(),
            None => 0,
        }
    }

    /// Record `[start_ns, now]` as a span of `kind` (no-op when disabled).
    #[inline]
    pub fn record(&mut self, kind: SpanKind, task: Option<TaskId>, start_ns: u64) {
        if let Some(rec) = self.rec {
            let end_ns = rec.now_ns().max(start_ns);
            self.buf.push(Span {
                kind,
                task,
                worker: self.worker,
                start_ns,
                end_ns,
                label: kind.label(),
            });
        }
    }

    /// Merge the buffered spans into the recorder.
    pub fn flush(&mut self) {
        if let Some(rec) = self.rec {
            rec.merge_lane(std::mem::take(&mut self.buf));
        }
    }
}

impl Drop for Lane<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

// ---------------------------------------------------------------------
// Snapshot + analyzers
// ---------------------------------------------------------------------

/// Per-kernel aggregation of execute spans.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel family label (from [`TaskMeta`], or `"task"` when none was
    /// registered).
    pub kernel: &'static str,
    /// Number of execute spans attributed to the family.
    pub count: usize,
    /// Total execute nanoseconds.
    pub total_ns: u64,
    /// Total model flops.
    pub flops: f64,
    /// Sustained GFLOP/s (`flops / total_ns`), 0 when no time measured.
    pub gflops: f64,
}

/// Per-worker timeline shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Nanoseconds spent executing task bodies.
    pub busy_ns: u64,
    /// Nanoseconds waiting on the local/central queue.
    pub wait_ns: u64,
    /// Nanoseconds in wait intervals that ended in a steal.
    pub steal_ns: u64,
    /// Tasks executed.
    pub tasks: usize,
    /// Idle fraction of the trace wall time (1 − busy/wall).
    pub idle_frac: f64,
}

/// Result of the longest-weighted-path analysis over the measured DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Length of the heaviest dependency chain, in measured nanoseconds.
    pub length_ns: u64,
    /// The tasks on that chain, in execution order.
    pub tasks: Vec<TaskId>,
    /// Per-kernel share of the critical path, `(kernel, ns)`.
    pub by_kernel: Vec<(&'static str, u64)>,
}

/// An immutable, analyzed view of one recorded timeline.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, sorted by `(worker, start)`.
    pub spans: Vec<Span>,
    /// Solver-registered task metadata.
    pub meta: HashMap<TaskId, TaskMeta>,
    /// Measured-DAG dependency edges (`pred → succ`).
    pub edges: Vec<(TaskId, TaskId)>,
}

impl Trace {
    fn default_meta() -> TaskMeta {
        TaskMeta {
            kernel: "task",
            panel: 0,
            flops: 0.0,
        }
    }

    /// Worker spans only (everything but phases).
    pub fn worker_spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.worker != PHASE_LANE)
    }

    /// Wall-clock extent of the worker timeline, ns (0 when empty).
    pub fn wall_ns(&self) -> u64 {
        let lo = self.worker_spans().map(|s| s.start_ns).min();
        let hi = self.worker_spans().map(|s| s.end_ns).max();
        match (lo, hi) {
            (Some(lo), Some(hi)) => hi.saturating_sub(lo),
            _ => 0,
        }
    }

    /// Number of distinct workers that recorded spans.
    pub fn nworkers(&self) -> usize {
        let mut seen: Vec<usize> = self.worker_spans().map(|s| s.worker).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Total execute nanoseconds summed over every worker.
    pub fn total_busy_ns(&self) -> u64 {
        self.worker_spans()
            .filter(|s| s.kind == SpanKind::Execute)
            .map(Span::dur_ns)
            .sum()
    }

    /// Measured execute time per task, ns (attempts summed).
    pub fn task_durations(&self) -> HashMap<TaskId, u64> {
        let mut out: HashMap<TaskId, u64> = HashMap::new();
        for s in self.worker_spans() {
            if s.kind == SpanKind::Execute {
                if let Some(t) = s.task {
                    *out.entry(t).or_insert(0) += s.dur_ns();
                }
            }
        }
        out
    }

    /// Parallel efficiency = total execute time / (workers × wall).
    /// 1.0 means every worker computed for the whole run.
    pub fn parallel_efficiency(&self) -> f64 {
        let wall = self.wall_ns();
        let workers = self.nworkers();
        if wall == 0 || workers == 0 {
            return 0.0;
        }
        self.total_busy_ns() as f64 / (wall as f64 * workers as f64)
    }

    /// Execute-span aggregation by kernel family, heaviest first.
    pub fn kernel_breakdown(&self) -> Vec<KernelStats> {
        let mut acc: HashMap<&'static str, (usize, u64, f64)> = HashMap::new();
        let mut attempts_seen: HashMap<TaskId, usize> = HashMap::new();
        for s in self.worker_spans() {
            if s.kind != SpanKind::Execute {
                continue;
            }
            let meta = s
                .task
                .and_then(|t| self.meta.get(&t).copied())
                .unwrap_or_else(Self::default_meta);
            let e = acc.entry(meta.kernel).or_insert((0, 0, 0.0));
            e.0 += 1;
            e.1 += s.dur_ns();
            // Count a task's flops once even when attempts were retried.
            if let Some(t) = s.task {
                let n = attempts_seen.entry(t).or_insert(0);
                *n += 1;
                if *n == 1 {
                    e.2 += meta.flops;
                }
            } else {
                e.2 += meta.flops;
            }
        }
        let mut out: Vec<KernelStats> = acc
            .into_iter()
            .map(|(kernel, (count, total_ns, flops))| KernelStats {
                kernel,
                count,
                total_ns,
                flops,
                gflops: if total_ns > 0 {
                    flops / total_ns as f64 // flops/ns == GFLOP/s
                } else {
                    0.0
                },
            })
            .collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.kernel.cmp(b.kernel)));
        out
    }

    /// Per-worker busy/wait/steal shares, by worker index.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        let wall = self.wall_ns().max(1);
        let mut acc: HashMap<usize, WorkerStats> = HashMap::new();
        for s in self.worker_spans() {
            let e = acc.entry(s.worker).or_insert(WorkerStats {
                worker: s.worker,
                busy_ns: 0,
                wait_ns: 0,
                steal_ns: 0,
                tasks: 0,
                idle_frac: 0.0,
            });
            match s.kind {
                SpanKind::Execute => {
                    e.busy_ns += s.dur_ns();
                    e.tasks += 1;
                }
                SpanKind::QueueWait => e.wait_ns += s.dur_ns(),
                SpanKind::Steal => e.steal_ns += s.dur_ns(),
                SpanKind::Phase => {}
            }
        }
        let mut out: Vec<WorkerStats> = acc.into_values().collect();
        for w in &mut out {
            w.idle_frac = 1.0 - (w.busy_ns as f64 / wall as f64).min(1.0);
        }
        out.sort_by_key(|w| w.worker);
        out
    }

    /// Longest weighted path through the measured DAG: per-task measured
    /// execute durations as node weights, the registered edges as the
    /// dependency structure. The registered edges are assumed acyclic
    /// (they come from an engine that completed a run); a cycle would
    /// leave its members out of the path rather than hanging.
    pub fn critical_path(&self) -> CriticalPath {
        let dur = self.task_durations();
        let n = 1 + self
            .edges
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .chain(dur.keys().copied())
            .max()
            .unwrap_or(0);
        if dur.is_empty() {
            return CriticalPath {
                length_ns: 0,
                tasks: Vec::new(),
                by_kernel: Vec::new(),
            };
        }
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut indeg: Vec<u32> = vec![0; n];
        for &(p, s) in &self.edges {
            succs[p].push(s);
            indeg[s] += 1;
        }
        let weight = |t: TaskId| dur.get(&t).copied().unwrap_or(0);
        // Kahn order; cp[t] = weight(t) + max over preds of cp[pred].
        let mut cp: Vec<u64> = (0..n).map(&weight).collect();
        let mut best_pred: Vec<Option<TaskId>> = vec![None; n];
        let mut queue: Vec<TaskId> = (0..n).filter(|&t| indeg[t] == 0).collect();
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            for &s in &succs[t] {
                let cand = cp[t] + weight(s);
                if cand > cp[s] {
                    cp[s] = cand;
                    best_pred[s] = Some(t);
                }
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        let (end, &length_ns) = match cp.iter().enumerate().max_by_key(|&(_, &v)| v) {
            Some(x) => x,
            None => {
                return CriticalPath {
                    length_ns: 0,
                    tasks: Vec::new(),
                    by_kernel: Vec::new(),
                }
            }
        };
        let mut tasks = vec![end];
        while let Some(p) = best_pred[*tasks.last().map_or(&end, |t| t)] {
            tasks.push(p);
        }
        tasks.reverse();
        let mut by: HashMap<&'static str, u64> = HashMap::new();
        for &t in &tasks {
            let kernel = self
                .meta
                .get(&t)
                .map_or(Self::default_meta().kernel, |m| m.kernel);
            *by.entry(kernel).or_insert(0) += weight(t);
        }
        let mut by_kernel: Vec<(&'static str, u64)> = by.into_iter().collect();
        by_kernel.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        CriticalPath {
            length_ns,
            tasks,
            by_kernel,
        }
    }

    /// Paper-style plain-text metrics report: per-kernel breakdown,
    /// per-worker shares, critical path and parallel efficiency.
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let wall = self.wall_ns();
        let _ = writeln!(
            out,
            "trace: {} spans, {} workers, wall {:.3} ms",
            self.spans.len(),
            self.nworkers(),
            units::ns_to_secs(wall) * 1e3
        );
        for p in self.spans.iter().filter(|s| s.kind == SpanKind::Phase) {
            let _ = writeln!(
                out,
                "phase {:<14} {:>10.3} ms",
                p.label,
                units::ns_to_secs(p.dur_ns()) * 1e3
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>10}",
            "kernel", "tasks", "time ms", "GFlop/s"
        );
        for k in self.kernel_breakdown() {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>12.3} {:>10.2}",
                k.kernel,
                k.count,
                units::ns_to_secs(k.total_ns) * 1e3,
                k.gflops
            );
        }
        for w in self.worker_stats() {
            let _ = writeln!(
                out,
                "worker {:>3}: {:>5} tasks, busy {:>8.3} ms, wait {:>8.3} ms, \
                 steal {:>8.3} ms, idle {:>5.1}%",
                w.worker,
                w.tasks,
                units::ns_to_secs(w.busy_ns) * 1e3,
                units::ns_to_secs(w.wait_ns) * 1e3,
                units::ns_to_secs(w.steal_ns) * 1e3,
                w.idle_frac * 100.0
            );
        }
        let cp = self.critical_path();
        let _ = writeln!(
            out,
            "critical path: {:.3} ms over {} task(s) ({:.1}% of wall)",
            units::ns_to_secs(cp.length_ns) * 1e3,
            cp.tasks.len(),
            if wall > 0 {
                cp.length_ns as f64 / wall as f64 * 100.0
            } else {
                0.0
            }
        );
        for (kernel, ns) in &cp.by_kernel {
            let _ = writeln!(
                out,
                "  on path: {:<12} {:>10.3} ms",
                kernel,
                units::ns_to_secs(*ns) * 1e3
            );
        }
        let _ = writeln!(
            out,
            "parallel efficiency: {:.1}% (total work / workers x wall)",
            self.parallel_efficiency() * 100.0
        );
        out
    }

    /// ASCII per-worker Gantt chart, `width` columns wide. `#` = execute,
    /// `.` = queue-wait, `s` = steal-wait, space = idle.
    pub fn render_gantt(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let width = width.max(10);
        let lo = self.worker_spans().map(|s| s.start_ns).min().unwrap_or(0);
        let wall = self.wall_ns().max(1);
        let mut workers: Vec<usize> = self.worker_spans().map(|s| s.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gantt: {} columns over {:.3} ms ('#'=execute '.'=wait 's'=steal)",
            width,
            units::ns_to_secs(wall) * 1e3
        );
        for &w in &workers {
            // Per-cell dominant kind by covered nanoseconds.
            let mut cover = vec![[0u64; 3]; width]; // [exec, wait, steal]
            for s in self.worker_spans().filter(|s| s.worker == w) {
                let slot = match s.kind {
                    SpanKind::Execute => 0,
                    SpanKind::QueueWait => 1,
                    SpanKind::Steal => 2,
                    SpanKind::Phase => continue,
                };
                let a = (s.start_ns - lo) as u128 * width as u128 / wall as u128;
                let b = (s.end_ns - lo) as u128 * width as u128 / wall as u128;
                let a = (a as usize).min(width - 1);
                let b = (b as usize).min(width - 1);
                for cell in &mut cover[a..=b] {
                    cell[slot] += s.dur_ns().max(1) / (b - a + 1) as u64 + 1;
                }
            }
            let row: String = cover
                .iter()
                .map(|c| {
                    let m = c[0].max(c[1]).max(c[2]);
                    if m == 0 {
                        ' '
                    } else if c[0] == m {
                        '#'
                    } else if c[1] >= c[2] {
                        '.'
                    } else {
                        's'
                    }
                })
                .collect();
            let _ = writeln!(out, "w{w:<3}|{row}|");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(kind: SpanKind, task: Option<usize>, worker: usize, a: u64, b: u64) -> Span {
        Span {
            kind,
            task,
            worker,
            start_ns: a,
            end_ns: b,
            label: kind.label(),
        }
    }

    #[test]
    fn units_conversions_saturate_not_truncate() {
        assert_eq!(units::nanos_u64(Duration::from_nanos(17)), 17);
        assert_eq!(units::micros_u64(Duration::from_micros(42)), 42);
        // A duration whose nanos overflow u64 saturates instead of
        // wrapping (the old `as u64` would truncate).
        let huge = Duration::from_secs(u64::MAX / 1_000_000_000 + 10);
        assert_eq!(units::nanos_u64(huge), u64::MAX);
        assert!((units::ns_to_secs(1_500_000_000) - 1.5).abs() < 1e-12);
        assert!((units::ns_to_micros(2_500) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn lane_disabled_records_nothing_and_reads_no_clock() {
        let mut lane = Lane::new(None, 0);
        assert!(!lane.enabled());
        assert_eq!(lane.now(), 0);
        lane.record(SpanKind::Execute, Some(3), 0);
        lane.flush();
        assert!(lane.buf.is_empty());
    }

    #[test]
    fn lane_merges_into_recorder_on_drop() {
        let rec = TraceRecorder::new();
        {
            let mut lane = Lane::new(Some(&rec), 2);
            let t0 = lane.now();
            lane.record(SpanKind::Execute, Some(7), t0);
        }
        let trace = rec.snapshot();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].worker, 2);
        assert_eq!(trace.spans[0].task, Some(7));
    }

    #[test]
    fn phase_spans_live_on_the_phase_lane() {
        let rec = TraceRecorder::new();
        let out = rec.phase("symbolic", || 42);
        assert_eq!(out, 42);
        let trace = rec.snapshot();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].worker, PHASE_LANE);
        assert_eq!(trace.spans[0].label, "symbolic");
        // Phase spans do not count as worker timeline.
        assert_eq!(trace.nworkers(), 0);
        assert_eq!(trace.wall_ns(), 0);
    }

    fn chain_trace() -> Trace {
        // Tasks 0→1→2 serial on worker 0 (10, 20, 30 ns) plus a parallel
        // task 3 on worker 1 (25 ns), edges 0→1→2.
        let rec = TraceRecorder::new();
        rec.set_task_meta(0, "panel", 0, 20.0);
        rec.set_task_meta(1, "update", 1, 40.0);
        rec.set_task_meta(2, "panel", 1, 60.0);
        rec.set_task_meta(3, "update", 2, 50.0);
        rec.set_edges(vec![(0, 1), (1, 2)]);
        rec.merge_lane(vec![
            span(SpanKind::Execute, Some(0), 0, 0, 10),
            span(SpanKind::QueueWait, None, 0, 10, 12),
            span(SpanKind::Execute, Some(1), 0, 12, 32),
            span(SpanKind::Execute, Some(2), 0, 32, 62),
            span(SpanKind::Execute, Some(3), 1, 5, 30),
            span(SpanKind::Steal, None, 1, 0, 5),
        ]);
        rec.snapshot()
    }

    #[test]
    fn critical_path_is_the_weighted_chain() {
        let t = chain_trace();
        let cp = t.critical_path();
        assert_eq!(cp.tasks, vec![0, 1, 2]);
        assert_eq!(cp.length_ns, 60);
        // Chain length bounded by wall; at least the longest single task.
        assert!(cp.length_ns <= t.wall_ns());
        assert!(cp.length_ns >= 30);
        let panel_ns = cp
            .by_kernel
            .iter()
            .find(|(k, _)| *k == "panel")
            .map(|&(_, ns)| ns);
        assert_eq!(panel_ns, Some(40));
    }

    #[test]
    fn kernel_breakdown_aggregates_time_and_flops() {
        let t = chain_trace();
        let ks = t.kernel_breakdown();
        let update = ks.iter().find(|k| k.kernel == "update").expect("update row");
        assert_eq!(update.count, 2);
        assert_eq!(update.total_ns, 45);
        assert!((update.flops - 90.0).abs() < 1e-12);
        assert!((update.gflops - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worker_stats_and_efficiency() {
        let t = chain_trace();
        assert_eq!(t.nworkers(), 2);
        assert_eq!(t.wall_ns(), 62);
        let ws = t.worker_stats();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].busy_ns, 60);
        assert_eq!(ws[0].wait_ns, 2);
        assert_eq!(ws[1].steal_ns, 5);
        assert_eq!(ws[1].tasks, 1);
        let eff = t.parallel_efficiency();
        assert!((eff - 85.0 / 124.0).abs() < 1e-9, "eff={eff}");
    }

    #[test]
    fn retried_attempts_sum_time_but_count_flops_once() {
        let rec = TraceRecorder::new();
        rec.set_task_meta(0, "update", 0, 100.0);
        rec.merge_lane(vec![
            span(SpanKind::Execute, Some(0), 0, 0, 10),
            span(SpanKind::Execute, Some(0), 0, 20, 30),
        ]);
        let ks = rec.snapshot().kernel_breakdown();
        assert_eq!(ks[0].total_ns, 20);
        assert!((ks[0].flops - 100.0).abs() < 1e-12);
    }

    #[test]
    fn report_and_gantt_render() {
        let t = chain_trace();
        let report = t.render_report();
        assert!(report.contains("critical path"));
        assert!(report.contains("parallel efficiency"));
        assert!(report.contains("update"));
        let gantt = t.render_gantt(40);
        assert!(gantt.contains("w0  |"));
        assert!(gantt.contains('#'));
    }

    #[test]
    fn reset_tasks_keeps_phases_only() {
        let rec = TraceRecorder::new();
        rec.phase("order", || {});
        rec.set_task_meta(0, "panel", 0, 1.0);
        rec.set_edges(vec![(0, 1)]);
        rec.merge_lane(vec![span(SpanKind::Execute, Some(0), 0, 0, 5)]);
        rec.reset_tasks();
        let t = rec.snapshot();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].kind, SpanKind::Phase);
        assert!(t.meta.is_empty());
        assert!(t.edges.is_empty());
    }

    #[test]
    fn empty_trace_analyzers_are_benign() {
        let t = TraceRecorder::new().snapshot();
        assert_eq!(t.wall_ns(), 0);
        assert_eq!(t.critical_path().length_ns, 0);
        assert!(t.kernel_breakdown().is_empty());
        assert_eq!(t.parallel_efficiency(), 0.0);
    }
}
