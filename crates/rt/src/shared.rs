//! Runtime-managed shared mutable storage.
//!
//! A task runtime guarantees, through the dependency graph, that two tasks
//! never touch the same datum concurrently unless both accesses are reads.
//! The kernels therefore need *aliasable* mutable access to the coefficient
//! arrays — the same contract StarPU/PaRSEC codelets get from C pointers.
//! [`SharedSlice`] packages that contract: an `UnsafeCell`-backed slice
//! whose unsafe accessors document exactly what the scheduler must enforce.

use core::cell::UnsafeCell;

/// A heap slice with interior mutability, shareable across the worker
/// threads of an engine run.
///
/// # Safety contract
///
/// Callers of [`SharedSlice::slice_mut`] must guarantee — normally via the
/// runtime's dependency tracking — that no other thread accesses an
/// overlapping range for the duration of the borrow. Disjoint mutable
/// ranges are always fine.
///
/// Precisely, each borrow is an *access* of some element range in a mode
/// (read / exclusive write / lock-protected accumulation), and the
/// obligation is the invariant checked by [`crate::verify`]: for every
/// pair of tasks whose accesses overlap and conflict (not read–read, not
/// accumulate–accumulate), the engine's dependency graph must contain a
/// happens-before path between the two tasks. `check_static` proves this
/// for a whole submitted graph; the vector-clock [`crate::verify::RaceChecker`]
/// checks it on executed schedules. A graph that passes cannot produce
/// two live overlapping borrows here, in any schedule.
pub struct SharedSlice<T> {
    data: UnsafeCell<Box<[T]>>,
}

// SAFETY: all mutation goes through the documented unsafe accessors whose
// callers promise externally-synchronized, non-overlapping access.
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T: Clone + Default> SharedSlice<T> {
    /// Allocate `len` default-initialized elements.
    pub fn new_default(len: usize) -> Self {
        SharedSlice {
            data: UnsafeCell::new(vec![T::default(); len].into_boxed_slice()),
        }
    }
}

impl<T> SharedSlice<T> {
    /// Wrap an existing vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        SharedSlice {
            data: UnsafeCell::new(v.into_boxed_slice()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        // SAFETY: reading the length of the box never races with element
        // mutation (the box itself is never reallocated).
        unsafe { (&*self.data.get()).len() }
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable view of the whole slice.
    ///
    /// # Safety
    /// No thread may be mutating any element for the duration of the
    /// borrow.
    pub unsafe fn slice(&self) -> &[T] {
        unsafe { &*self.data.get() }
    }

    /// Mutable view of the whole slice.
    ///
    /// # Safety
    /// The caller must hold exclusive access (via runtime dependencies) to
    /// every element it actually touches, and concurrent callers must
    /// touch disjoint elements: the borrowing task's writes must be
    /// ordered by a happens-before edge against every conflicting access
    /// of the same elements (the invariant [`crate::verify::check_static`]
    /// verifies per engine graph).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [T] {
        unsafe { &mut *self.data.get() }
    }

    /// Simultaneous read view of `read` and write view of `write`, which
    /// must be disjoint ranges (checked).
    ///
    /// # Safety
    /// The caller must guarantee (via runtime dependencies) that no other
    /// thread writes `read` or touches `write` during the borrows — i.e.
    /// the task holds a verified read access on `read` and an exclusive
    /// (or lock-protected accumulating) access on `write` in the sense of
    /// [`crate::verify::Mode`].
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn disjoint_pair(
        &self,
        read: core::ops::Range<usize>,
        write: core::ops::Range<usize>,
    ) -> (&[T], &mut [T]) {
        assert!(
            read.end <= write.start || write.end <= read.start,
            "overlapping ranges {read:?} and {write:?}"
        );
        let len = self.len();
        assert!(read.end <= len && write.end <= len);
        // SAFETY: ranges are in-bounds and disjoint; exclusivity across
        // threads is the caller's documented obligation.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr();
            (
                core::slice::from_raw_parts(base.add(read.start), read.len()),
                core::slice::from_raw_parts_mut(base.add(write.start), write.len()),
            )
        }
    }

    /// Mutable view of one range, without touching the rest of the slice
    /// (other ranges may be concurrently borrowed by other tasks).
    ///
    /// # Safety
    /// The caller must hold exclusive access to `range` for the duration
    /// of the borrow: every other task accessing an overlapping range must
    /// be separated from this one by a dependency edge (or, for
    /// commutative scatter-adds, by the per-panel accumulation lock —
    /// [`crate::verify::Mode::Accum`]).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, range: core::ops::Range<usize>) -> &mut [T] {
        assert!(range.end <= self.len());
        // SAFETY: in-bounds; exclusivity is the caller's obligation.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr();
            core::slice::from_raw_parts_mut(base.add(range.start), range.len())
        }
    }

    /// Immutable view of one range.
    ///
    /// # Safety
    /// No thread may be mutating elements of `range` during the borrow.
    pub unsafe fn range(&self, range: core::ops::Range<usize>) -> &[T] {
        assert!(range.end <= self.len());
        // SAFETY: in-bounds; absence of writers is the caller's obligation.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr();
            core::slice::from_raw_parts(base.add(range.start), range.len())
        }
    }

    /// Consume the wrapper and return the underlying storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_inner().into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn disjoint_parallel_writes_are_visible() {
        let n = 1000;
        let shared = Arc::new(SharedSlice::<u64>::new_default(n));
        let nthreads = 4;
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..nthreads {
                let shared = Arc::clone(&shared);
                let counter = &counter;
                scope.spawn(move || {
                    // Each thread owns a disjoint stripe.
                    // SAFETY: stripes are disjoint by construction.
                    let s = unsafe { shared.slice_mut() };
                    for i in (t..n).step_by(nthreads) {
                        s[i] = i as u64 + 1;
                    }
                    counter.fetch_add(1, Ordering::Release);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), nthreads);
        // SAFETY: all writers joined.
        let s = unsafe { shared.slice() };
        for (i, &v) in s.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn roundtrip_vec() {
        let s = SharedSlice::from_vec(vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.into_vec(), vec![1, 2, 3]);
    }
}
