//! Runtime-managed shared mutable storage.
//!
//! A task runtime guarantees, through the dependency graph, that two tasks
//! never touch the same datum concurrently unless both accesses are reads.
//! The kernels therefore need *aliasable* mutable access to the coefficient
//! arrays — the same contract StarPU/PaRSEC codelets get from C pointers.
//! [`SharedSlice`] packages that contract: an `UnsafeCell`-backed slice
//! whose unsafe accessors document exactly what the scheduler must enforce.
//!
//! This module also owns [`release_pending`], the checked fan-in
//! decrement all three engines use to release successor tasks — the other
//! piece of runtime-managed shared state whose protocol is model-checked
//! (the `loom_models` fan-in model) rather than merely stress-tested.

use crate::sync::atomic::{AtomicU32, Ordering};
use core::cell::UnsafeCell;

/// A heap slice with interior mutability, shareable across the worker
/// threads of an engine run.
///
/// # Safety contract
///
/// Callers of [`SharedSlice::slice_mut`] must guarantee — normally via the
/// runtime's dependency tracking — that no other thread accesses an
/// overlapping range for the duration of the borrow. Disjoint mutable
/// ranges are always fine.
///
/// Precisely, each borrow is an *access* of some element range in a mode
/// (read / exclusive write / lock-protected accumulation), and the
/// obligation is the invariant checked by [`crate::verify`]: for every
/// pair of tasks whose accesses overlap and conflict (not read–read, not
/// accumulate–accumulate), the engine's dependency graph must contain a
/// happens-before path between the two tasks. `check_static` proves this
/// for a whole submitted graph; the vector-clock [`crate::verify::RaceChecker`]
/// checks it on executed schedules. A graph that passes cannot produce
/// two live overlapping borrows here, in any schedule.
pub struct SharedSlice<T> {
    data: UnsafeCell<Box<[T]>>,
    /// Cached so `len()` never forms a reference to the (possibly
    /// concurrently mutated) slice; the allocation is never resized.
    len: usize,
}

// SAFETY: all mutation goes through the documented unsafe accessors whose
// callers promise externally-synchronized, non-overlapping access.
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T: Clone + Default> SharedSlice<T> {
    /// Allocate `len` default-initialized elements.
    pub fn new_default(len: usize) -> Self {
        SharedSlice {
            data: UnsafeCell::new(vec![T::default(); len].into_boxed_slice()),
            len,
        }
    }
}

impl<T> SharedSlice<T> {
    /// Wrap an existing vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        let len = v.len();
        SharedSlice {
            data: UnsafeCell::new(v.into_boxed_slice()),
            len,
        }
    }

    /// Number of elements. Reads a cached field: the previous
    /// implementation dereferenced the `UnsafeCell` to ask the box,
    /// materializing a whole-slice shared reference that could overlap a
    /// live `slice_mut` borrow on another thread — exactly the kind of
    /// aliasing UB this PR's verification pass exists to remove.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base pointer to the element storage, derived without materializing
    /// any reference to the slice: a transient whole-slice `&`/`&mut`
    /// (what `(*cell.get()).as_mut_ptr()` auto-ref would create) may
    /// alias a live disjoint borrow held by another task, which is
    /// undefined behavior even if never dereferenced.
    fn base_ptr(&self) -> *mut T {
        // SAFETY: `data` always holds a live box; `addr_of_mut!` projects
        // through the Box place without creating a reference, so this
        // cannot conflict with outstanding element borrows.
        (unsafe { core::ptr::addr_of_mut!(**self.data.get()) }) as *mut T
    }

    /// Immutable view of the whole slice.
    ///
    /// # Safety
    /// No thread may be mutating any element for the duration of the
    /// borrow: every writer task must be ordered against this read by a
    /// dependency edge — the invariant [`crate::verify::check_static`]
    /// proves per engine graph (callers outside an engine run, e.g. after
    /// a join, uphold it trivially).
    pub unsafe fn slice(&self) -> &[T] {
        // SAFETY: storage is live and `len` elements long; absence of
        // concurrent writers is the caller's documented obligation.
        unsafe { core::slice::from_raw_parts(self.base_ptr(), self.len) }
    }

    /// Mutable view of the whole slice.
    ///
    /// # Safety
    /// The caller must hold exclusive access (via runtime dependencies) to
    /// every element it actually touches, and concurrent callers must
    /// touch disjoint elements: the borrowing task's writes must be
    /// ordered by a happens-before edge against every conflicting access
    /// of the same elements (the invariant [`crate::verify::check_static`]
    /// verifies per engine graph).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [T] {
        // SAFETY: storage is live and `len` elements long; element-wise
        // exclusivity (disjoint concurrent writers, happens-before
        // against conflicting accesses) is the caller's documented
        // obligation, upheld by the engines' dependency graphs and
        // machine-checked by `crate::verify::check_static`.
        unsafe { core::slice::from_raw_parts_mut(self.base_ptr(), self.len) }
    }

    /// Simultaneous read view of `read` and write view of `write`, which
    /// must be disjoint ranges (checked).
    ///
    /// # Safety
    /// The caller must guarantee (via runtime dependencies) that no other
    /// thread writes `read` or touches `write` during the borrows — i.e.
    /// the task holds a verified read access on `read` and an exclusive
    /// (or lock-protected accumulating) access on `write` in the sense of
    /// [`crate::verify::Mode`].
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn disjoint_pair(
        &self,
        read: core::ops::Range<usize>,
        write: core::ops::Range<usize>,
    ) -> (&[T], &mut [T]) {
        assert!(
            read.end <= write.start || write.end <= read.start,
            "overlapping ranges {read:?} and {write:?}"
        );
        let len = self.len();
        assert!(read.end <= len && write.end <= len);
        // SAFETY: ranges are in-bounds (asserted above) and disjoint; the
        // base pointer is reference-free, so the two views only assert
        // exclusivity over their own ranges. Cross-thread exclusivity on
        // those ranges is the caller's documented obligation (a verified
        // read access on `read`, an exclusive or lock-protected
        // accumulating access on `write` — `crate::verify::Mode`).
        unsafe {
            let base = self.base_ptr();
            (
                core::slice::from_raw_parts(base.add(read.start), read.len()),
                core::slice::from_raw_parts_mut(base.add(write.start), write.len()),
            )
        }
    }

    /// Mutable view of one range, without touching the rest of the slice
    /// (other ranges may be concurrently borrowed by other tasks).
    ///
    /// # Safety
    /// The caller must hold exclusive access to `range` for the duration
    /// of the borrow: every other task accessing an overlapping range must
    /// be separated from this one by a dependency edge (or, for
    /// commutative scatter-adds, by the per-panel accumulation lock —
    /// [`crate::verify::Mode::Accum`]).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, range: core::ops::Range<usize>) -> &mut [T] {
        assert!(range.end <= self.len());
        // SAFETY: in-bounds (asserted); the view covers only `range`, so
        // concurrent borrows of disjoint ranges never alias. Exclusivity
        // of `range` itself is the caller's obligation, upheld by a
        // dependency edge or the per-panel accumulation lock and
        // machine-checked by `crate::verify` (static graph proof +
        // vector-clock schedule checker).
        unsafe {
            let base = self.base_ptr();
            core::slice::from_raw_parts_mut(base.add(range.start), range.len())
        }
    }

    /// Immutable view of one range.
    ///
    /// # Safety
    /// No thread may be mutating elements of `range` during the borrow.
    pub unsafe fn range(&self, range: core::ops::Range<usize>) -> &[T] {
        assert!(range.end <= self.len());
        // SAFETY: in-bounds (asserted); absence of concurrent writers to
        // `range` is the caller's obligation — every writer of an
        // overlapping range must be ordered against this task by a
        // dependency edge (`crate::verify::check_static` invariant).
        unsafe {
            let base = self.base_ptr();
            core::slice::from_raw_parts(base.add(range.start), range.len())
        }
    }

    /// Consume the wrapper and return the underlying storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_inner().into_vec()
    }
}

/// A successor's pending counter was released more times than it has
/// predecessors — a corrupted task graph (duplicate successor edges,
/// understated `npred`) or an engine double-release bug. The unchecked
/// `fetch_sub` the engines previously used silently wraps the `u32` here,
/// masking the corruption; [`release_pending`] surfaces it instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseUnderflow {
    /// The successor task whose counter underflowed.
    pub succ: usize,
}

impl core::fmt::Display for ReleaseUnderflow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "pending-counter underflow releasing task {}: more releases than predecessors",
            self.succ
        )
    }
}

impl std::error::Error for ReleaseUnderflow {}

/// Checked fan-in release: decrement `pending` toward readiness.
///
/// Returns `Ok(true)` iff this call performed the *final* release (the
/// counter reached zero) — the caller then, exactly once across all
/// predecessors, enqueues the successor. Returns
/// [`Err(ReleaseUnderflow)`](ReleaseUnderflow) when the counter is
/// already zero, in **every** build profile (strictly stronger than a
/// debug assertion: release builds must not mask graph corruption
/// either); the engines route it through the checked-execution layer as
/// `EngineError::ReleaseUnderflow`.
pub fn release_pending(pending: &AtomicU32, succ: usize) -> Result<bool, ReleaseUnderflow> {
    // ORDERING: Relaxed is enough for the initial read — the CAS below
    // re-validates the value and carries the ordering.
    let mut cur = pending.load(Ordering::Relaxed);
    loop {
        if cur == 0 {
            return Err(ReleaseUnderflow { succ });
        }
        // ORDERING: AcqRel on success. Release so this predecessor's
        // writes are published into the counter's release sequence;
        // Acquire so the *final* decrementer observes every earlier
        // predecessor's writes before the successor is enqueued. The
        // RMW chain keeps the release sequence intact — this is the
        // property the loom fan-in model checks exhaustively (and whose
        // Relaxed weakening its negative twin proves fatal).
        match pending.compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return Ok(cur == 1),
            Err(seen) => cur = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn disjoint_parallel_writes_are_visible() {
        let n = 1000;
        let shared = Arc::new(SharedSlice::<u64>::new_default(n));
        let nthreads = 4;
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..nthreads {
                let shared = Arc::clone(&shared);
                let counter = &counter;
                scope.spawn(move || {
                    // Each thread owns a disjoint stripe.
                    // SAFETY: stripes are disjoint by construction.
                    let s = unsafe { shared.slice_mut() };
                    for i in (t..n).step_by(nthreads) {
                        s[i] = i as u64 + 1;
                    }
                    counter.fetch_add(1, Ordering::Release);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Acquire), nthreads);
        // SAFETY: all writers joined.
        let s = unsafe { shared.slice() };
        for (i, &v) in s.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn roundtrip_vec() {
        let s = SharedSlice::from_vec(vec![1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn len_never_touches_element_storage() {
        // `len()` must stay callable while another thread holds a live
        // mutable borrow (it used to form a whole-slice reference).
        let shared = Arc::new(SharedSlice::<u32>::new_default(64));
        std::thread::scope(|scope| {
            let s2 = Arc::clone(&shared);
            scope.spawn(move || {
                // SAFETY: sole writer; the other thread only calls len().
                let s = unsafe { s2.slice_mut() };
                for v in s.iter_mut() {
                    *v = 3;
                }
            });
            for _ in 0..100 {
                assert_eq!(shared.len(), 64);
            }
        });
    }

    #[test]
    fn release_pending_counts_down_and_reports_final() {
        let pending = AtomicU32::new(3);
        assert_eq!(release_pending(&pending, 7), Ok(false));
        assert_eq!(release_pending(&pending, 7), Ok(false));
        assert_eq!(release_pending(&pending, 7), Ok(true));
    }

    #[test]
    fn release_pending_underflow_is_typed_not_wrapping() {
        let pending = AtomicU32::new(1);
        assert_eq!(release_pending(&pending, 9), Ok(true));
        // The double release must NOT wrap to u32::MAX…
        let err = release_pending(&pending, 9).unwrap_err();
        assert_eq!(err, ReleaseUnderflow { succ: 9 });
        assert!(err.to_string().contains("task 9"));
        // …and must leave the counter untouched.
        assert_eq!(pending.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn release_pending_exactly_one_final_release_under_contention() {
        let pending = AtomicU32::new(64);
        let finals = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pending = &pending;
                let finals = &finals;
                scope.spawn(move || {
                    for _ in 0..16 {
                        if release_pending(pending, 0).unwrap() {
                            finals.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(finals.load(Ordering::SeqCst), 1);
        assert_eq!(pending.load(Ordering::SeqCst), 0);
    }
}
