//! Model atomics: every access is a visible scheduling point, and the
//! memory-ordering argument actually *does something*.
//!
//! Each location carries, next to its value, an optional "message" vector
//! clock — the happens-before frontier published by the last release-class
//! store (C++11 release sequence, conservatively approximated):
//!
//! * `store(Release)` publishes the writer's clock; `store(Relaxed)`
//!   *clears* the message (a relaxed store breaks the release sequence).
//! * `load(Acquire)` joins the message into the reader's clock;
//!   `load(Relaxed)` joins nothing.
//! * read-modify-writes with a release ordering *join* their clock into
//!   the message (an RMW continues the release sequence — this is what
//!   makes the fan-in counter sound: the final decrementer acquires every
//!   earlier decrementer's writes). A `Relaxed` RMW leaves the message
//!   untouched and joins nothing, which is exactly why the weakened
//!   fan-in model in the `loom_models` negative tests fails.
//!
//! `SeqCst` is treated as `AcqRel`: the single total order of SC
//! operations is not modeled (our protocols never rely on it — no
//! store-buffering/IRIW idioms), and `compare_exchange_weak` never fails
//! spuriously (the retry loops it sits in are exercised by real CAS
//! contention instead).

use super::sched;
use std::sync::Mutex as OsMutex;
pub use std::sync::atomic::Ordering;

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

struct AtomicState<T> {
    val: T,
    msg: Option<sched::VClock>,
}

macro_rules! model_atomic {
    ($name:ident, $ty:ty, [$($int_ops:tt)*]) => {
        /// Model counterpart of the `std::sync::atomic` type of the same
        /// name; see the module docs for the ordering semantics.
        pub struct $name {
            s: OsMutex<AtomicState<$ty>>,
        }

        impl $name {
            /// New location holding `v`, with no published message.
            pub const fn new(v: $ty) -> Self {
                $name {
                    s: OsMutex::new(AtomicState { val: v, msg: None }),
                }
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $ty {
                sched::yield_point();
                sched::with_exec(|st, me| {
                    let s = self.s.lock().unwrap();
                    if acquires(ord) {
                        if let Some(m) = &s.msg {
                            st.clocks[me].join(m);
                        }
                    }
                    s.val
                })
            }

            /// Atomic store.
            pub fn store(&self, v: $ty, ord: Ordering) {
                sched::yield_point();
                sched::with_exec(|st, me| {
                    let mut s = self.s.lock().unwrap();
                    s.val = v;
                    s.msg = if releases(ord) {
                        Some(st.clocks[me].clone())
                    } else {
                        None
                    };
                })
            }

            fn rmw(&self, ord: Ordering, f: impl FnOnce($ty) -> $ty) -> $ty {
                sched::yield_point();
                sched::with_exec(|st, me| {
                    let mut s = self.s.lock().unwrap();
                    if acquires(ord) {
                        if let Some(m) = &s.msg {
                            st.clocks[me].join(m);
                        }
                    }
                    let old = s.val;
                    s.val = f(old);
                    if releases(ord) {
                        let mine = st.clocks[me].clone();
                        match &mut s.msg {
                            Some(m) => m.join(&mine),
                            None => s.msg = Some(mine),
                        }
                    }
                    old
                })
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |_| v)
            }

            /// Strong compare-and-exchange.
            #[allow(clippy::result_unit_err)]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                sched::yield_point();
                sched::with_exec(|st, me| {
                    let mut s = self.s.lock().unwrap();
                    if s.val == current {
                        if acquires(success) {
                            if let Some(m) = &s.msg {
                                st.clocks[me].join(m);
                            }
                        }
                        s.val = new;
                        if releases(success) {
                            let mine = st.clocks[me].clone();
                            match &mut s.msg {
                                Some(m) => m.join(&mine),
                                None => s.msg = Some(mine),
                            }
                        }
                        Ok(current)
                    } else {
                        if acquires(failure) {
                            if let Some(m) = &s.msg {
                                st.clocks[me].join(m);
                            }
                        }
                        Err(s.val)
                    }
                })
            }

            /// Weak compare-and-exchange; the model never fails it
            /// spuriously (see module docs).
            #[allow(clippy::result_unit_err)]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Consume and return the value.
            pub fn into_inner(self) -> $ty {
                self.s.into_inner().unwrap().val
            }

            model_atomic!(@ops $ty, $($int_ops)*);
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "(model)"))
            }
        }
    };
    (@ops $ty:ty, int) => {
        /// Atomic add (wrapping); returns the previous value.
        pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
            self.rmw(ord, |x| x.wrapping_add(v))
        }

        /// Atomic subtract (wrapping); returns the previous value.
        pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
            self.rmw(ord, |x| x.wrapping_sub(v))
        }

        /// Atomic maximum; returns the previous value.
        pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
            self.rmw(ord, |x| x.max(v))
        }

        /// Atomic minimum; returns the previous value.
        pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
            self.rmw(ord, |x| x.min(v))
        }
    };
    (@ops $ty:ty, bool) => {
        /// Atomic OR; returns the previous value.
        pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
            self.rmw(ord, |x| x | v)
        }

        /// Atomic AND; returns the previous value.
        pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
            self.rmw(ord, |x| x & v)
        }
    };
}

model_atomic!(AtomicU32, u32, [int]);
model_atomic!(AtomicU64, u64, [int]);
model_atomic!(AtomicUsize, usize, [int]);
model_atomic!(AtomicBool, bool, [bool]);
