//! The execution scheduler and interleaving explorer behind [`crate::model`].
//!
//! One *model execution* runs the checked closure with every model thread
//! mapped to a real OS thread, but with at most one thread running at a
//! time: every visible operation (atomic access, mutex lock/unlock,
//! condvar wait/notify, spawn/join) re-enters this scheduler, which picks
//! the next thread to run. The sequence of picks is a *decision path*; the
//! explorer enumerates all decision paths depth-first, replaying the
//! recorded prefix and branching at the first unexhausted choice — the
//! stateless-search strategy of CHESS/loom.
//!
//! Happens-before is tracked with per-thread vector clocks (FastTrack
//! style): release stores publish the writer's clock on the location,
//! acquire loads join it, and read-modify-writes continue the release
//! sequence by joining in both directions. [`super::cell::ModelCell`]
//! checks every non-atomic access against those clocks, so a missing
//! ordering is reported as a data race in *whatever* interleaving the
//! explorer happens to run — the check does not depend on the racy access
//! pair executing "simultaneously".

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};

/// Maximum model threads per execution (including the main model thread).
/// Keeping the clock arrays fixed-size keeps every scheduler step
/// allocation-free on the hot path.
pub const MAX_THREADS: usize = 4;

/// A fixed-width vector clock over the model threads of one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    t: [u32; MAX_THREADS],
}

impl VClock {
    /// Pointwise maximum (the happens-before join).
    pub fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            if other.t[i] > self.t[i] {
                self.t[i] = other.t[i];
            }
        }
    }

    /// `self` happens-before-or-equal `other` (pointwise ≤).
    pub fn le(&self, other: &VClock) -> bool {
        (0..MAX_THREADS).all(|i| self.t[i] <= other.t[i])
    }

    /// Component `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.t[i]
    }

    /// Raise component `i` to at least `v`.
    pub fn set_max(&mut self, i: usize, v: u32) {
        if v > self.t[i] {
            self.t[i] = v;
        }
    }

    fn tick(&mut self, i: usize) {
        self.t[i] += 1;
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Runnable, waiting for the scheduler to pick it.
    Ready,
    /// The single currently-executing thread.
    Running,
    /// Parked on a mutex/condvar/join; `can_timeout` marks a timed wait
    /// the scheduler may wake spuriously (the timeout firing is just one
    /// more explorable scheduling decision).
    Blocked { can_timeout: bool },
    /// Closure returned (or unwound).
    Finished,
}

/// Why a blocked thread was woken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WakeReason {
    /// Another thread made it ready (notify / unlock / join target exit).
    Notified,
    /// The scheduler fired its timeout.
    Timeout,
}

struct Th {
    status: Status,
    /// What the thread is blocked on, for deadlock reports.
    why: &'static str,
    /// Threads blocked in `join` on this one.
    joiners: Vec<usize>,
}

/// Per-execution scheduler state. Exposed (crate-internally) so the model
/// primitives can read and join the vector clocks under the one lock.
pub(crate) struct ExecState {
    threads: Vec<Th>,
    /// Vector clock of each model thread (fixed slots, grown by spawn).
    pub(crate) clocks: Vec<VClock>,
    active: Option<usize>,
    abort: bool,
    failure: Option<String>,
    schedule: Vec<usize>,
    steps: usize,
}

impl ExecState {
    /// Record a failure (first one wins) and put the execution into abort
    /// mode so every thread unwinds at its next scheduler interaction.
    pub(crate) fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }

    /// The acting thread's current epoch `(thread, timestamp)`.
    pub(crate) fn epoch(&self, id: usize) -> (usize, u32) {
        (id, self.clocks[id].get(id))
    }
}

pub(crate) struct ExecShared {
    m: OsMutex<ExecState>,
    cv: OsCondvar,
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind model threads when an execution aborts;
/// not itself a failure.
pub(crate) struct Abort;

struct Ctx {
    shared: Arc<ExecShared>,
    id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<ExecShared>, usize) {
    CTX.with(|c| {
        let b = c.borrow();
        let ctx = b
            .as_ref()
            .expect("model primitive used outside model::check (build without --cfg loom, or move the state into the checked closure)");
        (Arc::clone(&ctx.shared), ctx.id)
    })
}

/// `true` on a thread currently executing inside a model execution.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Scheduler entry for a visible operation: hand control back and wait to
/// be picked again. Every model primitive calls this exactly once per
/// visible op, so one scheduler decision corresponds to one op.
pub(crate) fn yield_point() {
    let (shared, me) = ctx();
    let mut st = shared.m.lock().unwrap();
    if st.abort {
        drop(st);
        panic::panic_any(Abort);
    }
    st.threads[me].status = Status::Ready;
    st.threads[me].why = "runnable";
    st.active = None;
    shared.cv.notify_all();
    loop {
        if st.abort {
            drop(st);
            panic::panic_any(Abort);
        }
        if st.active == Some(me) {
            st.threads[me].status = Status::Running;
            return;
        }
        st = shared.cv.wait(st).unwrap();
    }
}

/// Park the current thread until another thread readies it (or, for timed
/// waits, until the scheduler fires the timeout). Being rescheduled counts
/// as the thread's next visible op — callers retry their operation
/// immediately without another [`yield_point`].
pub(crate) fn block_current(can_timeout: bool, why: &'static str) -> WakeReason {
    let (shared, me) = ctx();
    let mut st = shared.m.lock().unwrap();
    st.threads[me].status = Status::Blocked { can_timeout };
    st.threads[me].why = why;
    st.active = None;
    shared.cv.notify_all();
    loop {
        if st.abort {
            drop(st);
            panic::panic_any(Abort);
        }
        if st.active == Some(me) {
            let timed_out = matches!(st.threads[me].status, Status::Blocked { .. });
            st.threads[me].status = Status::Running;
            return if timed_out { WakeReason::Timeout } else { WakeReason::Notified };
        }
        st = shared.cv.wait(st).unwrap();
    }
}

/// Make blocked threads runnable (unlock / notify). Not itself a visible
/// op — the caller already yielded for the operation doing the waking.
pub(crate) fn make_ready(ids: &[usize]) {
    if ids.is_empty() {
        return;
    }
    let (shared, _) = ctx();
    let mut st = shared.m.lock().unwrap();
    for &id in ids {
        if matches!(st.threads[id].status, Status::Blocked { .. }) {
            st.threads[id].status = Status::Ready;
            st.threads[id].why = "runnable";
        }
    }
}

/// Run `f` with the execution state locked and the current thread id.
pub(crate) fn with_exec<R>(f: impl FnOnce(&mut ExecState, usize) -> R) -> R {
    let (shared, me) = ctx();
    let mut st = shared.m.lock().unwrap();
    f(&mut st, me)
}

/// Spawn a new model thread; returns its id. The spawn itself is a visible
/// op, and the child inherits the parent's happens-before frontier.
pub(crate) fn spawn_model(f: Box<dyn FnOnce() + Send + 'static>) -> usize {
    yield_point();
    let (shared, me) = ctx();
    let id = {
        let mut st = shared.m.lock().unwrap();
        let id = st.threads.len();
        assert!(
            id < MAX_THREADS,
            "model supports at most {MAX_THREADS} threads (including the main model thread)"
        );
        let parent = st.clocks[me].clone();
        st.clocks[id] = parent;
        // Fork rule: the child inherits the parent's clock *snapshot*;
        // the parent then ticks its own component so parent events
        // after the fork are not ordered before the child's.
        st.clocks[me].tick(me);
        st.threads.push(Th {
            status: Status::Ready,
            why: "spawned",
            joiners: Vec::new(),
        });
        id
    };
    let shared2 = Arc::clone(&shared);
    let h = std::thread::Builder::new()
        .name(format!("model-{id}"))
        .spawn(move || child_main(shared2, id, f))
        .expect("failed to spawn model OS thread");
    shared.handles.lock().unwrap().push(h);
    id
}

/// Block until model thread `target` finishes; joins its final clock
/// (the join happens-before edge).
pub(crate) fn join_model(target: usize) {
    yield_point();
    let (shared, me) = ctx();
    loop {
        {
            let mut st = shared.m.lock().unwrap();
            if matches!(st.threads[target].status, Status::Finished) {
                let final_clock = st.clocks[target].clone();
                st.clocks[me].join(&final_clock);
                return;
            }
            st.threads[target].joiners.push(me);
        }
        block_current(false, "thread join");
    }
}

fn child_main(shared: Arc<ExecShared>, id: usize, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: Arc::clone(&shared),
            id,
        })
    });
    let run = first_wait(&shared, id);
    let result = if run {
        panic::catch_unwind(AssertUnwindSafe(f))
    } else {
        Ok(())
    };
    finish_thread(&shared, id, result);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Wait for the first scheduling of a freshly-spawned thread. Returns
/// `false` if the execution aborted before the thread ever ran.
fn first_wait(shared: &ExecShared, me: usize) -> bool {
    let mut st = shared.m.lock().unwrap();
    loop {
        if st.abort {
            st.threads[me].status = Status::Running; // finish_thread expects to transition us
            return false;
        }
        if st.active == Some(me) {
            st.threads[me].status = Status::Running;
            return true;
        }
        st = shared.cv.wait(st).unwrap();
    }
}

fn finish_thread(
    shared: &ExecShared,
    me: usize,
    result: Result<(), Box<dyn std::any::Any + Send>>,
) {
    let mut st = shared.m.lock().unwrap();
    if let Err(payload) = result {
        if !payload.is::<Abort>() {
            let msg = panic_msg(payload.as_ref());
            st.fail(format!("model thread {me} panicked: {msg}"));
        }
    }
    st.threads[me].status = Status::Finished;
    let joiners: Vec<usize> = st.threads[me].joiners.drain(..).collect();
    for j in joiners {
        if matches!(st.threads[j].status, Status::Blocked { .. }) {
            st.threads[j].status = Status::Ready;
            st.threads[j].why = "runnable";
        }
    }
    st.active = None;
    shared.cv.notify_all();
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Suppress the default panic printout for panics on model threads: the
/// explorer reports them (with the failing schedule) itself. Same pattern
/// as `fault::install_quiet_injection_hook`.
fn install_quiet_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if in_model() {
                return;
            }
            prev(info);
        }));
    });
}

/// One scheduling decision: the runnable set at that point and which
/// member was picked. The explorer mutates `pick` to enumerate.
#[derive(Clone, Debug)]
struct Choice {
    options: Vec<usize>,
    pick: usize,
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct interleavings executed.
    pub executions: usize,
    /// `true` when the state space was covered exhaustively; `false`
    /// when [`Builder::check`] skipped on an exhausted exploration
    /// budget — the run proved nothing beyond the executions it did
    /// explore.
    pub complete: bool,
}

/// What class of failure the explorer is reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The model itself failed: a panic, deadlock, data race, lost
    /// update, or a nondeterministic-replay error.
    Property,
    /// The exploration budget (executions or total scheduler steps) ran
    /// out before the DFS converged — the model is too big, not
    /// (necessarily) wrong.
    BudgetExhausted,
}

/// A failed exploration: the first failing execution, with the schedule
/// (sequence of thread picks) that reproduces it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Property violation vs. exhausted exploration budget.
    pub kind: FailureKind,
    /// What went wrong (panic message, deadlock report, race report, …).
    pub message: String,
    /// Thread ids in scheduling order for the failing execution.
    pub schedule: Vec<usize>,
    /// 1-based index of the failing execution.
    pub execution: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model check failed on execution {}: {} (schedule: {:?})",
            self.execution, self.message, self.schedule
        )
    }
}

impl std::error::Error for Failure {}

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Abort exploration after this many executions (guards exponential
    /// blow-up from an over-large model).
    pub max_executions: usize,
    /// Abort one execution after this many scheduler steps (guards
    /// livelocked models, e.g. an unbounded spin loop).
    pub max_steps: usize,
    /// Abort exploration after this many scheduler steps **summed over
    /// all executions**. The per-limit pair alone admits a silent
    /// `max_executions × max_steps` worst case (2 × 10⁹ steps at the
    /// defaults — hours of "exploring" with no verdict); the total
    /// budget turns that into a typed [`FailureKind::BudgetExhausted`]
    /// in bounded time.
    pub max_total_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_executions: 200_000,
            max_steps: 10_000,
            max_total_steps: 20_000_000,
        }
    }
}

impl Builder {
    /// Exhaustively explore `f`; panic (with the failing schedule) on any
    /// panic, assertion failure, data race, or deadlock. An exhausted
    /// exploration *budget* is not a property failure: it is reported
    /// loudly on stderr and the returned report is marked
    /// `complete: false` — callers that require exhaustiveness must
    /// assert on it.
    pub fn check<F: Fn() + Send + Sync + 'static>(&self, f: F) -> Report {
        match self.try_check(f) {
            Ok(report) => report,
            Err(failure) if failure.kind == FailureKind::BudgetExhausted => {
                eprintln!(
                    "model check SKIPPED (exploration incomplete, nothing verified \
                     beyond {} executions): {failure}",
                    failure.execution.saturating_sub(1)
                );
                Report {
                    executions: failure.execution.saturating_sub(1),
                    complete: false,
                }
            }
            Err(failure) => panic!("{failure}"),
        }
    }

    /// Exhaustively explore `f`, returning the first failure instead of
    /// panicking — the hook for "teeth" tests that expect a model to
    /// fail. Check `Failure::kind`: a [`FailureKind::BudgetExhausted`]
    /// error means the DFS ran out of budget, not that the property
    /// failed.
    pub fn try_check<F: Fn() + Send + Sync + 'static>(&self, f: F) -> Result<Report, Failure> {
        assert!(!in_model(), "model::check cannot be nested inside a model");
        install_quiet_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut path: Vec<Choice> = Vec::new();
        let mut executions = 0usize;
        let mut total_steps = 0usize;
        loop {
            executions += 1;
            if executions > self.max_executions {
                return Err(Failure {
                    kind: FailureKind::BudgetExhausted,
                    message: format!(
                        "exploration exceeded {} executions without converging; shrink the model",
                        self.max_executions
                    ),
                    schedule: Vec::new(),
                    execution: executions,
                });
            }
            match run_one(&f, &mut path, self.max_steps) {
                Ok(steps) => total_steps += steps,
                Err((message, schedule)) => {
                    return Err(Failure {
                        kind: FailureKind::Property,
                        message,
                        schedule,
                        execution: executions,
                    });
                }
            }
            if total_steps > self.max_total_steps {
                return Err(Failure {
                    kind: FailureKind::BudgetExhausted,
                    message: format!(
                        "exploration exceeded the total step budget ({} scheduler steps \
                         across {executions} executions); shrink the model",
                        self.max_total_steps
                    ),
                    schedule: Vec::new(),
                    execution: executions,
                });
            }
            // Depth-first advance: bump the deepest unexhausted choice.
            loop {
                match path.last_mut() {
                    None => {
                        return Ok(Report {
                            executions,
                            complete: true,
                        })
                    }
                    Some(c) if c.pick + 1 < c.options.len() => {
                        c.pick += 1;
                        break;
                    }
                    Some(_) => {
                        path.pop();
                    }
                }
            }
        }
    }
}

/// Run one execution, replaying the decision prefix recorded in `path`
/// and recording any new choices at the tail. `Ok` carries the number of
/// scheduler steps the execution consumed (fed into the explorer's total
/// step budget).
fn run_one(
    f: &Arc<dyn Fn() + Send + Sync>,
    path: &mut Vec<Choice>,
    max_steps: usize,
) -> Result<usize, (String, Vec<usize>)> {
    let shared = Arc::new(ExecShared {
        m: OsMutex::new(ExecState {
            threads: vec![Th {
                status: Status::Ready,
                why: "spawned",
                joiners: Vec::new(),
            }],
            clocks: vec![VClock::default(); MAX_THREADS],
            active: None,
            abort: false,
            failure: None,
            schedule: Vec::new(),
            steps: 0,
        }),
        cv: OsCondvar::new(),
        handles: OsMutex::new(Vec::new()),
    });
    {
        let f0 = Arc::clone(f);
        let sh = Arc::clone(&shared);
        let h = std::thread::Builder::new()
            .name("model-0".to_string())
            .spawn(move || child_main(sh, 0, Box::new(move || f0())))
            .expect("failed to spawn model OS thread");
        shared.handles.lock().unwrap().push(h);
    }

    let mut cursor = 0usize;
    let outcome: Result<usize, (String, Vec<usize>)> = loop {
        let mut st = shared.m.lock().unwrap();
        while st.active.is_some() {
            st = shared.cv.wait(st).unwrap();
        }
        if st.abort || st.failure.is_some() {
            let schedule = st.schedule.clone();
            let message = st
                .failure
                .take()
                .unwrap_or_else(|| "execution aborted".to_string());
            break Err((message, schedule));
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(
                    t.status,
                    Status::Ready | Status::Blocked { can_timeout: true }
                )
            })
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| matches!(t.status, Status::Finished)) {
                break Ok(st.steps);
            }
            let detail = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.status, Status::Finished))
                .map(|(i, t)| format!("thread {i} blocked on {}", t.why))
                .collect::<Vec<_>>()
                .join("; ");
            break Err((format!("deadlock: {detail}"), st.schedule.clone()));
        }
        st.steps += 1;
        if st.steps > max_steps {
            break Err((
                format!("execution exceeded {max_steps} scheduler steps (livelocked model?)"),
                st.schedule.clone(),
            ));
        }
        let pick = if runnable.len() == 1 {
            // Forced move: not a branching point, keep the path small.
            runnable[0]
        } else if cursor < path.len() {
            let c = &path[cursor];
            if c.options != runnable {
                break Err((
                    format!(
                        "nondeterministic model: replay expected runnable set {:?}, found {:?} \
                         (model state must be created inside the checked closure)",
                        c.options, runnable
                    ),
                    st.schedule.clone(),
                ));
            }
            let p = c.options[c.pick];
            cursor += 1;
            p
        } else {
            path.push(Choice {
                options: runnable.clone(),
                pick: 0,
            });
            cursor += 1;
            runnable[0]
        };
        st.schedule.push(pick);
        st.clocks[pick].tick(pick);
        st.active = Some(pick);
        shared.cv.notify_all();
        drop(st);
    };

    // Tear down: abort unfinished threads (no-op on a clean finish) and
    // wait for every model OS thread to exit before the next execution.
    {
        let mut st = shared.m.lock().unwrap();
        st.abort = true;
        shared.cv.notify_all();
        while !st.threads.iter().all(|t| matches!(t.status, Status::Finished)) {
            st = shared.cv.wait(st).unwrap();
        }
    }
    for h in shared.handles.lock().unwrap().drain(..) {
        let _ = h.join();
    }
    // A failure recorded during teardown (e.g. a panic that raced the
    // scheduler) still fails the execution.
    if outcome.is_ok() {
        let mut st = shared.m.lock().unwrap();
        if let Some(message) = st.failure.take() {
            let schedule = st.schedule.clone();
            return Err((message, schedule));
        }
    }
    outcome
}
