//! Model threads: `spawn`/`join` with happens-before edges.

use super::sched;

/// Handle to a spawned model thread.
pub struct JoinHandle {
    id: usize,
}

impl JoinHandle {
    /// Block until the thread finishes; its effects happen-before the
    /// return (the join edge joins its final vector clock).
    pub fn join(self) {
        sched::join_model(self.id);
    }
}

/// Spawn a model thread running `f`. The spawn is a visible op and the
/// child inherits the parent's happens-before frontier. At most
/// [`super::MAX_THREADS`] threads may exist per execution.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
    JoinHandle {
        id: sched::spawn_model(Box::new(f)),
    }
}

/// A pure scheduling point: lets the explorer interleave here without any
/// memory effect (model analogue of `std::thread::yield_now`).
pub fn yield_now() {
    sched::yield_point();
}
