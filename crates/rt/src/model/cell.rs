//! Race-checked non-atomic storage for model tests.
//!
//! [`ModelCell`] plays the role of loom's `UnsafeCell`: the payload a
//! synchronization protocol is supposed to protect. Every access is
//! checked against the FastTrack happens-before invariant —
//!
//! * a read must happen-after the last write,
//! * a write must happen-after the last write *and* every read since it —
//!
//! using the vector clocks maintained by the scheduler. Because the check
//! compares clocks rather than observing timing, an unordered access pair
//! is reported as a data race in *every* execution that performs both
//! accesses, regardless of the order the explorer happened to run them in.
//! Cell accesses are deliberately **not** scheduling points: only the
//! synchronization ops around them branch the exploration.

use super::sched::{self, VClock};
use core::cell::UnsafeCell;
use std::sync::Mutex as OsMutex;

/// Shared non-atomic storage whose accesses are race-checked against the
/// model's happens-before relation.
pub struct ModelCell<T> {
    data: UnsafeCell<T>,
    state: OsMutex<CellState>,
}

struct CellState {
    /// Epoch of the last write: `(thread, timestamp)`.
    write: Option<(usize, u32)>,
    /// Per-thread timestamps of reads since the last write.
    reads: VClock,
}

// SAFETY: all access to `data` goes through `with`/`with_mut`, which
// assert happens-before ordering against every prior conflicting access
// (and abort the model run otherwise); the model scheduler additionally
// runs only one thread at a time, so checked accesses never overlap.
unsafe impl<T: Send> Send for ModelCell<T> {}
unsafe impl<T: Send> Sync for ModelCell<T> {}

impl<T> ModelCell<T> {
    /// New cell holding `v`.
    pub fn new(v: T) -> Self {
        ModelCell {
            data: UnsafeCell::new(v),
            state: OsMutex::new(CellState {
                write: None,
                reads: VClock::default(),
            }),
        }
    }

    fn race(&self, kind: &str, against: &str) -> ! {
        sched::with_exec(|st, me| {
            st.fail(format!(
                "data race: {kind} of ModelCell on thread {me} is not ordered after {against}"
            ));
        });
        std::panic::panic_any(sched::Abort)
    }

    /// Checked shared read access.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let ok = sched::with_exec(|st, me| {
            let mut cs = self.state.lock().unwrap();
            if let Some((wt, wts)) = cs.write {
                if st.clocks[me].get(wt) < wts {
                    return false;
                }
            }
            let (me, ts) = st.epoch(me);
            cs.reads.set_max(me, ts);
            true
        });
        if !ok {
            self.race("read", "the last write");
        }
        // SAFETY: happens-before against the last write was just checked,
        // and the scheduler runs one thread at a time.
        f(unsafe { &*self.data.get() })
    }

    /// Checked exclusive write access.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let ok = sched::with_exec(|st, me| {
            let mut cs = self.state.lock().unwrap();
            if let Some((wt, wts)) = cs.write {
                if st.clocks[me].get(wt) < wts {
                    return false;
                }
            }
            if !cs.reads.le(&st.clocks[me]) {
                return false;
            }
            cs.write = Some(st.epoch(me));
            cs.reads = VClock::default();
            true
        });
        if !ok {
            self.race("write", "every prior access");
        }
        // SAFETY: happens-before against every prior access was just
        // checked, and the scheduler runs one thread at a time.
        f(unsafe { &mut *self.data.get() })
    }

    /// Checked read of a `Copy` payload.
    pub fn read(&self) -> T
    where
        T: Copy,
    {
        self.with(|v| *v)
    }

    /// Checked overwrite.
    pub fn write(&self, v: T) {
        self.with_mut(|p| *p = v);
    }

    /// Consume the cell.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}
