//! Model `Mutex`/`Condvar` with the same shape as the std backend of
//! [`crate::sync`], so the whole runtime compiles unchanged under
//! `--cfg loom`.
//!
//! Lock/unlock, wait/notify and timed-wait are all visible scheduling
//! points. The mutex carries a vector clock joined on every release and
//! acquired on every acquisition (critical sections happen-before later
//! ones). Wake-ups use barging semantics: an unlock readies *all* waiters
//! and the scheduler explores every acquisition order. A timed wait
//! ([`Condvar::wait_timeout`]) parks the thread as
//! "blocked-but-may-time-out": the timeout firing is one more explorable
//! scheduling decision, which is exactly what lets the watchdog models
//! prove that a missed notify is survivable with a timed wait and a
//! deadlock with a plain one. There is no poisoning — a panicking model
//! thread aborts the whole execution and is reported by the explorer.

use super::sched::{self, WakeReason};
use core::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as OsMutex;
use std::time::Duration;

struct MState {
    held: bool,
    clock: sched::VClock,
    waiters: Vec<usize>,
}

/// Model mutex; API-compatible with the std-backed `sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    s: OsMutex<MState>,
    data: UnsafeCell<T>,
}

// SAFETY: the model scheduler enforces that `data` is only reachable
// through a held guard (`held` flag + single running thread), giving the
// same exclusion guarantee as a real mutex.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            s: OsMutex::new(MState {
                held: false,
                clock: sched::VClock::default(),
                // ALLOC: model-checker bookkeeping, never a production path.
                waiters: Vec::new(),
            }),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock; a visible scheduling point.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        sched::yield_point();
        loop {
            let acquired = sched::with_exec(|st, me| {
                let mut s = self.s.lock().unwrap();
                if s.held {
                    s.waiters.push(me);
                    false
                } else {
                    s.held = true;
                    let published = s.clock.clone();
                    st.clocks[me].join(&published);
                    true
                }
            });
            if acquired {
                return MutexGuard { m: self };
            }
            // Being rescheduled after the park is the retry op.
            sched::block_current(false, "mutex lock");
        }
    }

    fn raw_unlock(&self) {
        let waiters = sched::with_exec(|st, me| {
            let mut s = self.s.lock().unwrap();
            debug_assert!(s.held, "unlock of an unheld model mutex");
            s.held = false;
            let mine = st.clocks[me].clone();
            s.clock.join(&mine);
            std::mem::take(&mut s.waiters)
        });
        sched::make_ready(&waiters);
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mutex(model)")
    }
}

/// Guard for the model [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    m: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while `held` is true for this
        // thread; the scheduler runs one thread at a time.
        unsafe { &*self.m.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive while held.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Unlock is a visible op, except during an unwind (an aborting
        // execution must not re-enter the scheduler from a panic).
        if !std::thread::panicking() {
            sched::yield_point();
        }
        self.m.raw_unlock();
    }
}

struct CvState {
    waiters: Vec<usize>,
}

/// Model condvar; API-compatible with the std-backed `sync::Condvar`.
pub struct Condvar {
    s: OsMutex<CvState>,
}

impl Condvar {
    /// New condvar.
    pub fn new() -> Condvar {
        Condvar {
            s: OsMutex::new(CvState {
                // ALLOC: model-checker bookkeeping, never a production path.
                waiters: Vec::new(),
            }),
        }
    }

    fn wait_inner<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        can_timeout: bool,
    ) -> MutexGuard<'a, T> {
        let m = guard.m;
        // The wait op: register, release the mutex, park — atomic with
        // respect to the model scheduler (no yield until the park).
        sched::yield_point();
        sched::with_exec(|_st, me| {
            self.s.lock().unwrap().waiters.push(me);
        });
        std::mem::forget(guard);
        m.raw_unlock();
        let reason = sched::block_current(can_timeout, "condvar wait");
        if reason == WakeReason::Timeout {
            // Timed out: nobody notified us, deregister.
            sched::with_exec(|_st, me| {
                self.s.lock().unwrap().waiters.retain(|&w| w != me);
            });
        }
        m.lock()
    }

    /// Block until notified.
    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, false)
    }

    /// Block until notified or "the timeout elapses" — in the model, the
    /// timeout is a scheduling decision, not wall-clock time.
    pub fn wait_timeout<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: Duration,
    ) -> MutexGuard<'a, T> {
        self.wait_inner(guard, true)
    }

    /// Wake one waiter (the longest-waiting one; a lost notify — no
    /// waiter registered — is a no-op, exactly the hazard the shutdown
    /// models probe).
    pub fn notify_one(&self) {
        sched::yield_point();
        let woken = sched::with_exec(|_st, _me| {
            let mut s = self.s.lock().unwrap();
            if s.waiters.is_empty() {
                None
            } else {
                Some(s.waiters.remove(0))
            }
        });
        if let Some(w) = woken {
            sched::make_ready(&[w]);
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        sched::yield_point();
        let woken = sched::with_exec(|_st, _me| std::mem::take(&mut self.s.lock().unwrap().waiters));
        sched::make_ready(&woken);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Condvar(model)")
    }
}
