//! An in-repo loom-style model checker for the runtime's synchronization
//! protocols.
//!
//! # Why in-repo
//!
//! The workspace carries **zero external dependencies**, so instead of
//! depending on the `loom` crate this module implements the same
//! technique — exhaustive, replay-based exploration of thread
//! interleavings with a vector-clock memory model — scoped to exactly
//! what the `dagfact` runtime needs. The `sync` shim selects it under
//! `--cfg loom` (see [`crate::sync`]), so the engines' own deques,
//! budget ledger and trace lanes compile unmodified against the model
//! primitives and are checked *as written*, not as re-transcribed
//! pseudo-code.
//!
//! # What a check does
//!
//! [`check`]/[`try_check`] run a closure under a cooperative scheduler:
//! one OS thread per model thread, exactly one running at a time, with
//! every synchronization operation a scheduling point. The explorer
//! enumerates all interleavings depth-first (replaying decision
//! prefixes), and fails on:
//!
//! * a panic / failed assertion in the closure (reported with the
//!   failing schedule),
//! * a deadlock (no runnable thread, some thread unfinished),
//! * a data race on a [`ModelCell`] — an access pair on the protected
//!   payload not ordered by the happens-before relation induced by the
//!   modeled atomics/mutexes (see [`atomic`] for the ordering rules).
//!
//! # What it abstracts away
//!
//! `SeqCst` is modeled as `AcqRel` (no single SC order), weak CAS never
//! fails spuriously, `Mutex` wake-ups barge, and timed waits time out
//! whenever the scheduler decides they do. All four are either
//! conservative for our protocols or irrelevant to them; DESIGN.md §11
//! spells out the argument, and Miri/TSan cover the gaps on real
//! executions.
//!
//! # Example
//!
//! ```
//! use dagfact_rt::model::{self, cell::ModelCell};
//! use std::sync::Arc;
//! use std::sync::atomic::Ordering;
//!
//! model::check(|| {
//!     let data = Arc::new(ModelCell::new(0u32));
//!     let flag = Arc::new(model::atomic::AtomicBool::new(false));
//!     let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
//!     let t = model::thread::spawn(move || {
//!         d2.write(42);
//!         f2.store(true, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) {
//!         assert_eq!(data.read(), 42); // Acquire saw the flag ⇒ sees the data
//!     }
//!     t.join();
//! });
//! ```

pub mod atomic;
pub mod cell;
mod sched;
pub mod sync;
pub mod thread;

pub use cell::ModelCell;
pub use sched::{in_model, Builder, Failure, FailureKind, Report, MAX_THREADS};

/// Exhaustively model-check `f` with default limits; panics with the
/// failing schedule on any failure.
pub fn check<F: Fn() + Send + Sync + 'static>(f: F) -> Report {
    Builder::default().check(f)
}

/// Exhaustively model-check `f`, returning the first failure instead of
/// panicking — for negative ("teeth") tests that expect a model to fail.
pub fn try_check<F: Fn() + Send + Sync + 'static>(f: F) -> Result<Report, Failure> {
    Builder::default().try_check(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn trivial_model_runs_once() {
        let report = check(|| {
            let c = cell::ModelCell::new(1u32);
            assert_eq!(c.read(), 1);
        });
        assert_eq!(report.executions, 1);
    }

    #[test]
    fn two_writers_explore_multiple_interleavings() {
        let report = check(|| {
            let a = Arc::new(atomic::AtomicU32::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                a2.fetch_add(1, Ordering::AcqRel);
            });
            a.fetch_add(1, Ordering::AcqRel);
            t.join();
            assert_eq!(a.load(Ordering::Acquire), 2);
        });
        assert!(report.executions > 1, "expected >1 interleavings");
    }

    #[test]
    fn release_acquire_handoff_is_race_free() {
        check(|| {
            let data = Arc::new(cell::ModelCell::new(0u64));
            let flag = Arc::new(atomic::AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.write(7);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.read(), 7);
            }
            t.join();
        });
    }

    #[test]
    fn relaxed_handoff_is_reported_as_race() {
        let failure = try_check(|| {
            let data = Arc::new(cell::ModelCell::new(0u64));
            let flag = Arc::new(atomic::AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.write(7);
                // Relaxed publish: the reader's Acquire has nothing to
                // synchronize with.
                f2.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) {
                let _ = data.read();
            }
            t.join();
        })
        .expect_err("relaxed publish must race");
        assert!(failure.message.contains("data race"), "got: {failure}");
    }

    #[test]
    fn unsynchronized_writes_are_reported_as_race() {
        let failure = try_check(|| {
            let data = Arc::new(cell::ModelCell::new(0u64));
            let d2 = Arc::clone(&data);
            let t = thread::spawn(move || d2.write(1));
            data.write(2);
            t.join();
        })
        .expect_err("two unordered writes must race");
        assert!(failure.message.contains("data race"), "got: {failure}");
    }

    #[test]
    fn mutex_protects_plain_data() {
        check(|| {
            let m = Arc::new(sync::Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let t = thread::spawn(move || {
                *m2.lock() += 1;
            });
            *m.lock() += 1;
            t.join();
            assert_eq!(*m.lock(), 2);
        });
    }

    #[test]
    fn abba_lock_order_deadlocks() {
        let failure = try_check(|| {
            let a = Arc::new(sync::Mutex::new(()));
            let b = Arc::new(sync::Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop(_ga);
            drop(_gb);
            t.join();
        })
        .expect_err("ABBA must deadlock in some interleaving");
        assert!(failure.message.contains("deadlock"), "got: {failure}");
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn assertion_failures_carry_the_schedule() {
        let failure = try_check(|| {
            let a = Arc::new(atomic::AtomicU32::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                a2.store(1, Ordering::Release);
            });
            // Fails in interleavings where the store lands first.
            assert_eq!(a.load(Ordering::Acquire), 0, "saw the store");
            t.join();
        })
        .expect_err("some interleaving must see the store");
        assert!(failure.message.contains("saw the store"), "got: {failure}");
        assert!(failure.execution >= 1);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        check(|| {
            let m = Arc::new(sync::Mutex::new(false));
            let cv = Arc::new(sync::Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let t = thread::spawn(move || {
                let mut g = m2.lock();
                *g = true;
                cv2.notify_one();
            });
            {
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
            }
            t.join();
        });
    }

    #[test]
    fn join_establishes_happens_before() {
        check(|| {
            let data = Arc::new(cell::ModelCell::new(0u8));
            let d2 = Arc::clone(&data);
            let t = thread::spawn(move || d2.write(9));
            t.join();
            assert_eq!(data.read(), 9); // join edge orders the read
        });
    }

    #[test]
    fn execution_limit_is_enforced() {
        let failure = Builder {
            max_executions: 2,
            ..Builder::default()
        }
        .try_check(|| {
            let a = Arc::new(atomic::AtomicU32::new(0));
            let a2 = Arc::clone(&a);
            let b2 = Arc::clone(&a);
            let t1 = thread::spawn(move || {
                a2.fetch_add(1, Ordering::AcqRel);
                a2.fetch_add(1, Ordering::AcqRel);
            });
            let t2 = thread::spawn(move || {
                b2.fetch_add(1, Ordering::AcqRel);
                b2.fetch_add(1, Ordering::AcqRel);
            });
            t1.join();
            t2.join();
        })
        .expect_err("2 executions cannot cover this");
        assert!(failure.message.contains("exceeded 2 executions"), "got: {failure}");
        assert_eq!(
            failure.kind,
            FailureKind::BudgetExhausted,
            "an exhausted execution cap is a budget error, not a property failure"
        );
    }

    /// Regression: before the total step budget existed, the per-limit
    /// pair admitted a silent `max_executions × max_steps` worst case
    /// (2 × 10⁹ scheduler steps at the defaults) — a too-big model spun
    /// for hours producing no verdict. The cross-execution budget must
    /// end exploration in bounded time with a *typed* error so teeth
    /// tests can't mistake it for the failure they expect.
    #[test]
    fn total_step_budget_is_enforced_and_typed() {
        let builder = Builder {
            max_total_steps: 40,
            ..Builder::default()
        };
        let big_model = || {
            let a = Arc::new(atomic::AtomicU32::new(0));
            let a2 = Arc::clone(&a);
            let b2 = Arc::clone(&a);
            let t1 = thread::spawn(move || {
                a2.fetch_add(1, Ordering::AcqRel);
                a2.fetch_add(1, Ordering::AcqRel);
            });
            let t2 = thread::spawn(move || {
                b2.fetch_add(1, Ordering::AcqRel);
                b2.fetch_add(1, Ordering::AcqRel);
            });
            t1.join();
            t2.join();
        };
        let failure = builder.try_check(big_model).expect_err("40 total steps cannot cover this");
        assert_eq!(failure.kind, FailureKind::BudgetExhausted);
        assert!(failure.message.contains("total step budget"), "got: {failure}");

        // `check` must NOT panic on an exhausted budget (incomplete is
        // not broken) — it skips loudly and marks the report incomplete.
        let report = builder.check(big_model);
        assert!(!report.complete, "a budget-exhausted check cannot claim completeness");
    }

    /// The sibling property: exhaustive runs advertise completeness.
    #[test]
    fn complete_exploration_is_marked_complete() {
        let report = check(|| {
            let a = Arc::new(atomic::AtomicU32::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                a2.fetch_add(1, Ordering::AcqRel);
            });
            a.fetch_add(1, Ordering::AcqRel);
            t.join();
        });
        assert!(report.complete);
    }
}
