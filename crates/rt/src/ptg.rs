//! The PaRSEC-like engine: parameterized task graphs with local dependency
//! release and data-reuse scheduling.
//!
//! PaRSEC's defining trait (§IV) is that the DAG is never stored: a
//! compact, algebraic description lets "each computational unit immediately
//! release the dependencies of the completed task solely using the local
//! knowledge of the DAG". [`PtgProgram`] is that description — successor
//! and predecessor-count *functions* over a dense task index space. The
//! engine materializes nothing but one atomic counter per task ("tasks do
//! not exist until they are ready to be executed").
//!
//! Scheduling follows PaRSEC's data-reuse policy: released successors go to
//! the front of the releasing worker's LIFO deque (the freshly-written
//! panel is still hot in its cache), and idle workers steal from the back
//! of a victim — the owner-LIFO / thief-FIFO discipline of
//! [`crate::deque`].
//!
//! [`run_ptg_checked`] executes under the fault-tolerant layer of
//! [`crate::fault`]; [`run_ptg`] is the legacy path that panics on the
//! calling thread if the run fails.

use crate::deque::{Injector, Stealer, WorkerDeque};
use crate::fault::{EngineError, RunConfig, RunReport, Supervisor, TaskOutcome};
use crate::shared::release_pending;
use crate::sync::atomic::AtomicU32;
use crate::trace::{Lane, SpanKind};

/// Algebraic task-graph description (the PTG). Task ids form the dense
/// range `0..num_tasks()`; the shape functions must be pure.
pub trait PtgProgram: Sync {
    /// Total number of tasks.
    fn num_tasks(&self) -> usize;
    /// Number of predecessors of `task` (computed locally, the analogue of
    /// PaRSEC's compile-time dependency counts).
    fn num_predecessors(&self, task: usize) -> u32;
    /// Append the successors of `task` to `out` (cleared by the caller).
    fn successors(&self, task: usize, out: &mut Vec<usize>);
    /// Execute the task body on `worker`.
    fn execute(&self, task: usize, worker: usize);
    /// Scheduling priority (higher first); only consulted for steal-order
    /// tie-breaking and the seed distribution.
    fn priority(&self, _task: usize) -> f64 {
        0.0
    }
}

/// Run a [`PtgProgram`] to completion on `nworkers` threads.
///
/// Panics on the calling thread if a task panics; prefer
/// [`run_ptg_checked`] for structured errors.
pub fn run_ptg<P: PtgProgram>(program: &P, nworkers: usize) {
    if let Err(e) = run_ptg_checked(program, nworkers, RunConfig::default()) {
        panic!("ptg engine failed: {e}");
    }
}

/// Run a [`PtgProgram`] under the fault-tolerant layer: task panics
/// become [`EngineError::TaskPanicked`], transient failures are retried
/// per `config.retry` (the task is re-pushed on the failing worker's
/// deque), and the watchdog converts a stalled scheduler into
/// [`EngineError::Stalled`].
pub fn run_ptg_checked<P: PtgProgram>(
    program: &P,
    nworkers: usize,
    config: RunConfig,
) -> Result<RunReport, EngineError> {
    if nworkers == 0 {
        return Err(EngineError::NoWorkers);
    }
    let ntasks = program.num_tasks();
    // ALLOC: run setup — one tracer handle and one counter table per run.
    let tracer = config.trace.clone();
    let sup = Supervisor::new(ntasks, config);
    if ntasks == 0 {
        return sup.finish();
    }
    // The only per-task state: remaining-predecessor counters.
    let pending: Vec<AtomicU32> = (0..ntasks)
        .map(|t| AtomicU32::new(program.num_predecessors(t)))
        .collect();
    // ALLOC: per-worker LIFO deques + global injector for the seeds and
    // the bounded rings' overflow spills — engine setup, once per run.
    let deques: Vec<WorkerDeque> = (0..nworkers).map(|_| WorkerDeque::new()).collect();
    let stealers: Vec<Stealer> = deques.iter().map(|d| d.stealer()).collect();
    let injector: Injector<usize> = Injector::new();
    // ALLOC: seed roots, collected and pushed once at startup in priority
    // order so early steals grab urgent work.
    let mut roots: Vec<usize> = (0..ntasks)
        .filter(|&t| program.num_predecessors(t) == 0)
        .collect();
    roots.sort_by(|&a, &b| program.priority(b).total_cmp(&program.priority(a)));
    for t in roots {
        injector.push(t);
    }

    let supref = &sup;
    let deques = &deques;
    let traceref = tracer.as_deref();
    let body = |w: usize| {
        // BOUNDS: `w` is the scope-spawn index, < nworkers == deques.len().
        let local = &deques[w];
        // ALLOC: per-worker successor buffer, reused across tasks.
        let mut succ_buf: Vec<usize> = Vec::new();
        let mut lane = Lane::new(traceref, w);
        // Open interval of not-executing time; closed (as QueueWait or
        // Steal) when the next task is acquired.
        let mut wait_from = lane.now();
        loop {
            if supref.remaining() == 0 || supref.halted() {
                break;
            }
            // Memory-pressure throttle: keep ready work queued while the
            // budget's admission width is saturated.
            if !supref.try_admit() {
                if supref.idle_check() {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            // Local LIFO first (data reuse), then the injector, then steal.
            // Only the per-worker deque steals count as steals for the
            // trace: the injector only holds the seed distribution.
            let mut stolen = false;
            let task = local
                .pop()
                .or_else(|| injector.steal())
                .or_else(|| {
                    let hit = stealers.iter().enumerate().find_map(|(v, s)| {
                        if v == w {
                            None
                        } else {
                            s.steal()
                        }
                    });
                    stolen = hit.is_some();
                    hit
                });
            let Some(t) = task else {
                // Idle: service the watchdog, then yield to the OS.
                if supref.idle_check() {
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            let kind = if stolen { SpanKind::Steal } else { SpanKind::QueueWait };
            lane.record(kind, Some(t), wait_from);
            let exec_from = lane.now();
            let outcome = supref.run_task(t, || program.execute(t, w));
            lane.record(SpanKind::Execute, Some(t), exec_from);
            wait_from = lane.now();
            match outcome {
                TaskOutcome::Completed => {
                    succ_buf.clear();
                    program.successors(t, &mut succ_buf);
                    // Local release: highest-priority successor pushed last
                    // so the LIFO pop picks it up next (hot data path).
                    // The checked decrement turns a double release (bad
                    // num_predecessors / duplicate successors) into a
                    // poisoned run instead of a wrapped counter.
                    succ_buf.sort_by(|&a, &b| program.priority(a).total_cmp(&program.priority(b)));
                    let mut underflow = false;
                    // BOUNDS: successor ids < ntasks index `pending`.
                    for &s in &succ_buf {
                        match release_pending(&pending[s], s) {
                            Ok(true) => {
                                // ALLOC: bounded-ring push is store-only; a
                                // full deque spills to the injector
                                // (correct, just colder).
                                if let Err(s) = local.push(s) {
                                    injector.push(s);
                                }
                            }
                            Ok(false) => {}
                            Err(e) => {
                                supref.poison_with(EngineError::ReleaseUnderflow { task: e.succ });
                                underflow = true;
                                break;
                            }
                        }
                    }
                    if underflow {
                        break;
                    }
                    supref.task_done(t);
                }
                TaskOutcome::Retry => {
                    // Backoff already applied; keep the task local.
                    // ALLOC: store-only ring push; injector only on overflow.
                    if let Err(t) = local.push(t) {
                        injector.push(t);
                    }
                }
                TaskOutcome::Aborted => break,
            }
        }
    };

    if nworkers == 1 {
        body(0);
    } else {
        std::thread::scope(|scope| {
            for w in 1..nworkers {
                scope.spawn(move || body(w));
            }
            body(0);
        });
    }
    sup.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A 2D "wavefront" program: task (i, j) depends on (i-1, j) and
    /// (i, j-1) — the classic PTG example from the DPLASMA papers.
    struct Wavefront {
        n: usize,
        log: Mutex<Vec<usize>>,
    }
    impl Wavefront {
        fn idx(&self, i: usize, j: usize) -> usize {
            i * self.n + j
        }
    }
    impl PtgProgram for Wavefront {
        fn num_tasks(&self) -> usize {
            self.n * self.n
        }
        fn num_predecessors(&self, t: usize) -> u32 {
            let (i, j) = (t / self.n, t % self.n);
            u32::from(i > 0) + u32::from(j > 0)
        }
        fn successors(&self, t: usize, out: &mut Vec<usize>) {
            let (i, j) = (t / self.n, t % self.n);
            if i + 1 < self.n {
                out.push(self.idx(i + 1, j));
            }
            if j + 1 < self.n {
                out.push(self.idx(i, j + 1));
            }
        }
        fn execute(&self, t: usize, _w: usize) {
            self.log.lock().unwrap().push(t);
        }
        fn priority(&self, t: usize) -> f64 {
            // Anti-diagonal depth: earlier waves are more urgent.
            let (i, j) = (t / self.n, t % self.n);
            -((i + j) as f64)
        }
    }

    #[test]
    fn wavefront_respects_dependencies() {
        for nworkers in [1, 2, 4] {
            let p = Wavefront {
                n: 12,
                log: Mutex::new(Vec::new()),
            };
            run_ptg(&p, nworkers);
            let log = p.log.into_inner().unwrap();
            assert_eq!(log.len(), 144);
            let mut pos = vec![0usize; 144];
            for (k, &t) in log.iter().enumerate() {
                pos[t] = k;
            }
            for i in 0..12 {
                for j in 0..12 {
                    let t = i * 12 + j;
                    if i > 0 {
                        assert!(pos[(i - 1) * 12 + j] < pos[t]);
                    }
                    if j > 0 {
                        assert!(pos[i * 12 + j - 1] < pos[t]);
                    }
                }
            }
        }
    }

    #[test]
    fn every_task_runs_exactly_once_under_contention() {
        struct Counter {
            n: usize,
            counts: Vec<AtomicUsize>,
        }
        impl PtgProgram for Counter {
            fn num_tasks(&self) -> usize {
                self.n
            }
            fn num_predecessors(&self, _t: usize) -> u32 {
                0
            }
            fn successors(&self, _t: usize, _out: &mut Vec<usize>) {}
            fn execute(&self, t: usize, _w: usize) {
                self.counts[t].fetch_add(1, Ordering::SeqCst);
            }
        }
        let p = Counter {
            n: 10_000,
            counts: (0..10_000).map(|_| AtomicUsize::new(0)).collect(),
        };
        run_ptg(&p, 4);
        assert!(p.counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_chain_single_worker() {
        struct Chain {
            n: usize,
            log: Mutex<Vec<usize>>,
        }
        impl PtgProgram for Chain {
            fn num_tasks(&self) -> usize {
                self.n
            }
            fn num_predecessors(&self, t: usize) -> u32 {
                u32::from(t > 0)
            }
            fn successors(&self, t: usize, out: &mut Vec<usize>) {
                if t + 1 < self.n {
                    out.push(t + 1);
                }
            }
            fn execute(&self, t: usize, _w: usize) {
                self.log.lock().unwrap().push(t);
            }
        }
        let p = Chain {
            n: 500,
            log: Mutex::new(Vec::new()),
        };
        run_ptg(&p, 1);
        assert_eq!(p.log.into_inner().unwrap(), (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn empty_program_is_noop() {
        struct Empty;
        impl PtgProgram for Empty {
            fn num_tasks(&self) -> usize {
                0
            }
            fn num_predecessors(&self, _: usize) -> u32 {
                unreachable!()
            }
            fn successors(&self, _: usize, _: &mut Vec<usize>) {
                unreachable!()
            }
            fn execute(&self, _: usize, _: usize) {
                unreachable!()
            }
        }
        run_ptg(&Empty, 2);
    }

    #[test]
    fn checked_run_reports_success() {
        let p = Wavefront {
            n: 6,
            log: Mutex::new(Vec::new()),
        };
        let report = run_ptg_checked(&p, 4, RunConfig::default()).unwrap();
        assert_eq!(report.ntasks, 36);
        assert_eq!(report.completed, 36);
        assert_eq!(p.log.into_inner().unwrap().len(), 36);
    }

    #[test]
    fn understated_predecessor_count_reports_release_underflow() {
        // Task 0's successors list task 1 twice, but the program claims
        // one predecessor: the second release underflows and must surface
        // as a typed error, not a wrapped counter.
        struct Corrupt;
        impl PtgProgram for Corrupt {
            fn num_tasks(&self) -> usize {
                2
            }
            fn num_predecessors(&self, t: usize) -> u32 {
                u32::from(t == 1)
            }
            fn successors(&self, t: usize, out: &mut Vec<usize>) {
                if t == 0 {
                    out.push(1);
                    out.push(1);
                }
            }
            fn execute(&self, _t: usize, _w: usize) {}
        }
        let err = run_ptg_checked(&Corrupt, 2, RunConfig::default()).unwrap_err();
        assert!(
            matches!(err, EngineError::ReleaseUnderflow { task: 1 }),
            "expected ReleaseUnderflow for task 1, got: {err}"
        );
    }
}
