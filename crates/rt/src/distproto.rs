//! Message protocol primitives for the distributed fan-in engine: an
//! idempotent apply log (at-least-once delivery → exactly-once
//! application) and per-message retransmit state (bounded attempts with
//! exponential backoff, duplicate-ack absorption, idempotent release).
//!
//! The dist engine (`dagfact-core::dist`) runs these single-threaded
//! inside its discrete-event loop, but the protocol itself must be sound
//! under *concurrent* duplicate delivery — a retransmitted message and
//! its original can race into a receiver on a real cluster. The types
//! therefore synchronize through [`crate::sync`] (Mutex + atomics) and
//! are exhaustively model-checked in the `loom_models` suite (protocol
//! 6: retransmit/ack with duplicate delivery, plus its negative "teeth"
//! twin that bypasses the apply log and is caught as a data race).

use crate::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use crate::sync::Mutex;
use std::collections::HashSet;

/// A message identity: the fan-in pair it belongs to and the delivery
/// epoch (bumped when a recovered shard re-requests the pair, so a stale
/// pre-crash duplicate can never satisfy a post-recovery request).
pub type MsgKey = (u64, u64);

/// Idempotent application log. Every delivery attempt of a message calls
/// [`ApplyLog::apply_if_new`]; exactly one caller per `(pair, epoch)` is
/// told to apply the payload, every duplicate is absorbed. The interior
/// mutex is the happens-before edge that makes the winner's payload
/// write visible to whoever observes the key as applied.
#[derive(Debug, Default)]
pub struct ApplyLog {
    applied: Mutex<HashSet<MsgKey>>,
}

impl ApplyLog {
    /// Empty log.
    pub fn new() -> ApplyLog {
        ApplyLog::default()
    }

    /// First delivery of `(pair, epoch)`? `true` exactly once per key —
    /// the caller applies the payload; `false` means a duplicate that
    /// must be dropped (its ack is still sent: the sender may have
    /// missed the first one).
    pub fn apply_if_new(&self, pair: u64, epoch: u64) -> bool {
        self.applied.lock().insert((pair, epoch))
    }

    /// Has `(pair, epoch)` been applied?
    pub fn seen(&self, pair: u64, epoch: u64) -> bool {
        self.applied.lock().contains(&(pair, epoch))
    }

    /// Forget every epoch of `pair` — recovery resets a restored panel
    /// to its assembled state, so the pair's contributions must apply
    /// again.
    pub fn forget_pair(&self, pair: u64) {
        self.applied.lock().retain(|&(p, _)| p != pair);
    }

    /// Number of applied keys.
    pub fn len(&self) -> usize {
        self.applied.lock().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.applied.lock().is_empty()
    }
}

/// Bounded-retransmit budget exhausted: the network kept eating the
/// message past `attempts` sends. Surfaced by the dist engine as a typed
/// recovery failure, never a silent hang or a wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitExhausted {
    /// Send attempts made (= the configured maximum).
    pub attempts: u32,
}

impl core::fmt::Display for RetransmitExhausted {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "retransmit budget exhausted after {} attempts", self.attempts)
    }
}

impl std::error::Error for RetransmitExhausted {}

/// Sender-side state of one outstanding fan-in message: attempt counter
/// against a bounded budget, first-ack detection (duplicate final acks
/// are absorbed), and the idempotent release latch that frees the
/// retained payload once the target panel is checkpointed.
#[derive(Debug)]
pub struct SendState {
    attempts: AtomicU32,
    max_attempts: u32,
    acked: AtomicBool,
    released: AtomicBool,
}

impl SendState {
    /// Fresh state with a total send budget of `max_attempts` (≥ 1).
    pub fn new(max_attempts: u32) -> SendState {
        SendState {
            attempts: AtomicU32::new(0),
            max_attempts: max_attempts.max(1),
            acked: AtomicBool::new(false),
            released: AtomicBool::new(false),
        }
    }

    /// Reserve one send attempt. Returns the 1-based attempt number, or
    /// the typed exhaustion error once the budget is spent. An acked
    /// message never retransmits.
    pub fn try_send(&self) -> Result<u32, RetransmitExhausted> {
        if self.is_acked() {
            return Err(RetransmitExhausted {
                attempts: self.attempts.load(Ordering::Acquire),
            });
        }
        // ORDERING: AcqRel read-modify-write keeps concurrent reservers
        // from sharing an attempt number; the counter guards no payload.
        let prev = self.attempts.fetch_add(1, Ordering::AcqRel);
        if prev >= self.max_attempts {
            // Undo the overshoot so repeated polls cannot wrap the
            // counter; the budget stays pinned at max_attempts.
            self.attempts.fetch_sub(1, Ordering::AcqRel);
            return Err(RetransmitExhausted {
                attempts: self.max_attempts,
            });
        }
        Ok(prev + 1)
    }

    /// Exponential backoff (µs) before retransmitting `attempt` (1-based):
    /// `base · 2^(attempt-1)`, saturating.
    pub fn backoff_micros(base_micros: u64, attempt: u32) -> u64 {
        base_micros.saturating_mul(1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(u64::MAX))
    }

    /// Record an ack. `true` for the first ack only — duplicates of the
    /// final ack land here and are absorbed without double-completing
    /// the message.
    pub fn mark_acked(&self) -> bool {
        // ORDERING: AcqRel swap — exactly one acker observes false, and
        // the winner's prior protocol writes are visible to later
        // readers of `is_acked`.
        !self.acked.swap(true, Ordering::AcqRel)
    }

    /// Has the message been acked?
    pub fn is_acked(&self) -> bool {
        self.acked.load(Ordering::Acquire)
    }

    /// Latch the release of the retained payload (the target panel is
    /// checkpointed; the buffer can be freed). `true` exactly once —
    /// duplicate Release messages are benign.
    pub fn mark_released(&self) -> bool {
        // ORDERING: AcqRel swap — exactly one releaser frees the buffer.
        !self.released.swap(true, Ordering::AcqRel)
    }

    /// Has the payload been released?
    pub fn is_released(&self) -> bool {
        self.released.load(Ordering::Acquire)
    }

    /// Send attempts made so far.
    pub fn attempts(&self) -> u32 {
        self.attempts.load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn apply_log_is_exactly_once_per_key() {
        let log = ApplyLog::new();
        assert!(log.apply_if_new(3, 0));
        assert!(!log.apply_if_new(3, 0), "duplicate absorbed");
        assert!(log.apply_if_new(3, 1), "new epoch applies again");
        assert!(log.apply_if_new(4, 0), "other pairs independent");
        assert_eq!(log.len(), 3);
        assert!(log.seen(3, 0));
        assert!(!log.seen(5, 0));
    }

    #[test]
    fn forget_pair_clears_all_epochs() {
        let log = ApplyLog::new();
        log.apply_if_new(7, 0);
        log.apply_if_new(7, 1);
        log.apply_if_new(8, 0);
        log.forget_pair(7);
        assert!(!log.seen(7, 0));
        assert!(!log.seen(7, 1));
        assert!(log.seen(8, 0), "other pairs untouched");
        // Post-recovery redelivery applies again.
        assert!(log.apply_if_new(7, 0));
    }

    #[test]
    fn send_budget_is_bounded_and_typed() {
        let s = SendState::new(3);
        assert_eq!(s.try_send(), Ok(1));
        assert_eq!(s.try_send(), Ok(2));
        assert_eq!(s.try_send(), Ok(3));
        assert_eq!(s.try_send(), Err(RetransmitExhausted { attempts: 3 }));
        // The counter stays pinned; polling the exhausted state forever
        // never wraps it.
        for _ in 0..100 {
            assert!(s.try_send().is_err());
        }
        assert_eq!(s.attempts(), 3);
    }

    #[test]
    fn duplicate_final_ack_is_absorbed() {
        let s = SendState::new(4);
        s.try_send().expect("first send");
        assert!(s.mark_acked(), "first ack completes the message");
        assert!(!s.mark_acked(), "duplicate final ack absorbed");
        assert!(s.is_acked());
        // An acked message never retransmits.
        assert!(s.try_send().is_err());
    }

    #[test]
    fn release_latch_is_idempotent() {
        let s = SendState::new(1);
        assert!(s.mark_released());
        assert!(!s.mark_released(), "duplicate Release is benign");
        assert!(s.is_released());
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        assert_eq!(SendState::backoff_micros(100, 1), 100);
        assert_eq!(SendState::backoff_micros(100, 2), 200);
        assert_eq!(SendState::backoff_micros(100, 5), 1600);
        assert_eq!(SendState::backoff_micros(100, 200), u64::MAX);
        assert_eq!(SendState::backoff_micros(0, 3), 0);
    }
}
