//! Trace-layer integration suite: span guarantees under real concurrent
//! execution on all three engines.
//!
//! Checked invariants:
//! * every task gets exactly one execute span (no retries configured);
//! * per-worker spans are monotonic and non-overlapping — a worker's
//!   timeline, sorted by start, never has a span starting before the
//!   previous one ended;
//! * the critical path over the measured DAG is bounded by the wall clock
//!   below and the heaviest single task above;
//! * with tracing disabled nothing is recorded.

use dagfact_rt::dataflow::DataflowGraph;
use dagfact_rt::fault::RunConfig;
use dagfact_rt::native::{run_native_checked, NativeTask};
use dagfact_rt::ptg::{run_ptg_checked, PtgProgram};
use dagfact_rt::trace::SpanKind;
use dagfact_rt::{AccessMode, Trace, TraceRecorder};
use std::sync::Arc;
use std::time::Duration;

const NWORKERS: usize = 4;

fn traced_config(rec: &Arc<TraceRecorder>) -> RunConfig {
    RunConfig {
        trace: Some(rec.clone()),
        ..RunConfig::default()
    }
}

/// A fork-join diamond: 0 → {1..=width} → width+1, with sleepy bodies so
/// several workers genuinely overlap in time.
fn diamond(width: usize) -> Vec<NativeTask> {
    let mut tasks = vec![NativeTask {
        owner: 0,
        npred: 0,
        succs: (1..=width).collect(),
        priority: 10.0,
    }];
    for i in 1..=width {
        tasks.push(NativeTask {
            owner: i % NWORKERS,
            npred: 1,
            succs: vec![width + 1],
            priority: 5.0,
        });
    }
    tasks.push(NativeTask {
        owner: 0,
        npred: width as u32,
        succs: vec![],
        priority: 1.0,
    });
    tasks
}

fn edges_of(tasks: &[NativeTask]) -> Vec<(usize, usize)> {
    tasks
        .iter()
        .enumerate()
        .flat_map(|(t, task)| task.succs.iter().map(move |&s| (t, s)))
        .collect()
}

/// Per-worker spans must be monotonic and non-overlapping: sorted by
/// start, each span begins no earlier than the previous one ended.
fn assert_monotone_per_worker(trace: &Trace) {
    let mut workers: Vec<usize> = trace.worker_spans().map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    assert!(!workers.is_empty(), "no worker spans recorded");
    for w in workers {
        let mut spans: Vec<_> = trace.worker_spans().filter(|s| s.worker == w).collect();
        spans.sort_by_key(|s| (s.start_ns, s.end_ns));
        for pair in spans.windows(2) {
            assert!(
                pair[1].start_ns >= pair[0].end_ns,
                "worker {w}: span {:?} overlaps {:?}",
                pair[0],
                pair[1]
            );
        }
        for s in &spans {
            assert!(s.end_ns >= s.start_ns, "negative span {s:?}");
        }
    }
}

fn assert_one_execute_per_task(trace: &Trace, ntasks: usize) {
    let mut seen = vec![0usize; ntasks];
    for s in trace.worker_spans() {
        if s.kind == SpanKind::Execute {
            seen[s.task.expect("execute spans carry their task")] += 1;
        }
    }
    for (t, &n) in seen.iter().enumerate() {
        assert_eq!(n, 1, "task {t} has {n} execute spans");
    }
}

fn assert_critical_path_bounds(trace: &Trace) {
    let cp = trace.critical_path();
    let wall = trace.wall_ns();
    assert!(
        cp.length_ns <= wall,
        "critical path {} ns exceeds wall {} ns",
        cp.length_ns,
        wall
    );
    let max_task = trace.task_durations().into_values().max().unwrap_or(0);
    assert!(
        cp.length_ns >= max_task,
        "critical path {} ns below heaviest task {} ns",
        cp.length_ns,
        max_task
    );
    assert!(!cp.tasks.is_empty());
}

#[test]
fn native_engine_spans_are_consistent() {
    let tasks = diamond(24);
    let rec = TraceRecorder::shared();
    rec.set_edges(edges_of(&tasks));
    run_native_checked(&tasks, NWORKERS, traced_config(&rec), |_t, _w| {
        std::thread::sleep(Duration::from_micros(300));
    })
    .unwrap();
    let trace = rec.snapshot();
    assert_one_execute_per_task(&trace, tasks.len());
    assert_monotone_per_worker(&trace);
    assert_critical_path_bounds(&trace);
    // The diamond forces the chain 0 → mid → sink onto the path.
    let cp = trace.critical_path();
    assert_eq!(cp.tasks.first(), Some(&0));
    assert_eq!(cp.tasks.last(), Some(&(tasks.len() - 1)));
    assert!(trace.parallel_efficiency() > 0.0);
    assert!(trace.parallel_efficiency() <= 1.0 + 1e-9);
}

#[test]
fn dataflow_engine_spans_are_consistent() {
    // A RAW chain per datum, WAW-crossed: 32 tasks over 4 data.
    let ndata = 4;
    let ntasks = 32;
    let mut g = DataflowGraph::new(ndata);
    for i in 0..ntasks {
        g.submit(
            &[(i % ndata, AccessMode::ReadWrite)],
            (ntasks - i) as f64,
            move |_w| std::thread::sleep(Duration::from_micros(200)),
        );
    }
    let edges = g.edges();
    let rec = TraceRecorder::shared();
    rec.set_edges(edges);
    g.execute_checked(NWORKERS, traced_config(&rec)).unwrap();
    let trace = rec.snapshot();
    assert_one_execute_per_task(&trace, ntasks);
    assert_monotone_per_worker(&trace);
    assert_critical_path_bounds(&trace);
    // 32 tasks in 4 independent chains of 8: the path is one chain.
    assert_eq!(trace.critical_path().tasks.len(), ntasks / ndata);
}

#[test]
fn ptg_engine_spans_are_consistent() {
    struct Wavefront {
        n: usize,
    }
    impl Wavefront {
        fn idx(&self, i: usize, j: usize) -> usize {
            i * self.n + j
        }
    }
    impl PtgProgram for Wavefront {
        fn num_tasks(&self) -> usize {
            self.n * self.n
        }
        fn num_predecessors(&self, t: usize) -> u32 {
            let (i, j) = (t / self.n, t % self.n);
            u32::from(i > 0) + u32::from(j > 0)
        }
        fn successors(&self, t: usize, out: &mut Vec<usize>) {
            let (i, j) = (t / self.n, t % self.n);
            if i + 1 < self.n {
                out.push(self.idx(i + 1, j));
            }
            if j + 1 < self.n {
                out.push(self.idx(i, j + 1));
            }
        }
        fn execute(&self, _t: usize, _w: usize) {
            std::thread::sleep(Duration::from_micros(150));
        }
    }
    let p = Wavefront { n: 8 };
    let mut edges = Vec::new();
    let mut buf = Vec::new();
    for t in 0..p.num_tasks() {
        buf.clear();
        p.successors(t, &mut buf);
        edges.extend(buf.iter().map(|&s| (t, s)));
    }
    let rec = TraceRecorder::shared();
    rec.set_edges(edges);
    run_ptg_checked(&p, NWORKERS, traced_config(&rec)).unwrap();
    let trace = rec.snapshot();
    assert_one_execute_per_task(&trace, p.num_tasks());
    assert_monotone_per_worker(&trace);
    assert_critical_path_bounds(&trace);
    // An n×n wavefront's dependency depth is 2n−1 tasks.
    assert_eq!(trace.critical_path().tasks.len(), 2 * p.n - 1);
}

#[test]
fn disabled_tracing_records_nothing() {
    let tasks = diamond(8);
    run_native_checked(&tasks, 2, RunConfig::default(), |_t, _w| {}).unwrap();

    let mut g = DataflowGraph::new(2);
    for i in 0..8 {
        g.submit(&[(i % 2, AccessMode::ReadWrite)], 1.0, |_w| {});
    }
    g.execute_checked(2, RunConfig::default()).unwrap();

    struct Bag;
    impl PtgProgram for Bag {
        fn num_tasks(&self) -> usize {
            8
        }
        fn num_predecessors(&self, _t: usize) -> u32 {
            0
        }
        fn successors(&self, _t: usize, _out: &mut Vec<usize>) {}
        fn execute(&self, _t: usize, _w: usize) {}
    }
    run_ptg_checked(&Bag, 2, RunConfig::default()).unwrap();

    // A recorder that was never attached sees nothing — and an attached
    // one records only for its own run.
    let rec = TraceRecorder::shared();
    assert!(rec.is_empty());
    run_native_checked(&diamond(4), 2, RunConfig::default(), |_t, _w| {}).unwrap();
    assert!(rec.is_empty(), "untraced run leaked spans into the recorder");
}

/// The report and Gantt renderers stay total on real traces (no panics,
/// non-empty output) — they feed the CLI `--metrics` path.
#[test]
fn renderers_work_on_live_trace() {
    let tasks = diamond(12);
    let rec = TraceRecorder::shared();
    rec.set_edges(edges_of(&tasks));
    for (t, _) in tasks.iter().enumerate() {
        rec.set_task_meta(t, "1d-panel", t, 1.0e6);
    }
    run_native_checked(&tasks, NWORKERS, traced_config(&rec), |_t, _w| {
        std::thread::sleep(Duration::from_micros(200));
    })
    .unwrap();
    let trace = rec.snapshot();
    let report = trace.render_report();
    assert!(report.contains("critical path:"));
    assert!(report.contains("parallel efficiency:"));
    assert!(report.contains("1d-panel"));
    let gantt = trace.render_gantt(72);
    assert!(gantt.contains("w0"));
    assert!(gantt.contains('#'));
}
