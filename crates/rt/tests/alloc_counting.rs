//! Dynamic twin of the `lint-hot` static analyzer (DESIGN.md §13): a
//! counting global allocator proving that the loops the analyzer holds
//! allocation-clean really do run at zero heap traffic in steady state.
//!
//! The static rule reasons about *reachable call sites*; this test
//! closes the loop on the dynamic side — if someone slips an allocation
//! past the analyzer (through a stoplisted method name, a macro body,
//! or a trait object), the counter catches it at runtime.
//!
//! Everything runs inside ONE `#[test]` function: the counter is a
//! process-global, and libtest runs `#[test]` functions on parallel
//! threads, so separate tests would observe each other's traffic.

use dagfact_rt::deque::{Injector, WorkerDeque};
use dagfact_rt::shared::release_pending;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// System allocator that counts allocations, but only on threads that
/// opted in via [`MEASURING`] — libtest's harness threads (output
/// capture, timers) allocate concurrently and would make a global
/// counter flaky.
struct Counting;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

// SAFETY: pure pass-through to the System allocator; the only added
// behavior is a Relaxed counter bump and a const-initialized
// thread-local read (no allocation, so no reentrancy).
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout contract as the caller's, forwarded.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr came from this allocator's alloc/realloc with
        // this layout, which forwarded to System.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: ptr/layout/new_size contract forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

/// Allocations performed by THIS thread while running `f`.
fn allocs_during<F: FnOnce()>(f: F) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    f();
    MEASURING.with(|m| m.set(false));
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_hot_loops_do_not_allocate() {
    const ITERS: usize = 10_000;

    // --- deque: owner push/pop at steady state -------------------------
    // The Chase-Lev ring is allocated once at construction; every
    // push/pop afterwards — including thousands of wrap-arounds — must
    // never touch the allocator.
    let w = WorkerDeque::new();
    for i in 0..64 {
        w.push(i).expect("warm-up fits the ring");
    }
    for _ in 0..64 {
        let _ = w.pop();
    }
    let n = allocs_during(|| {
        for i in 0..ITERS {
            w.push(i).expect("ring never grows past depth 1");
            assert_eq!(w.pop(), Some(i));
        }
    });
    assert_eq!(n, 0, "WorkerDeque push/pop allocated {n} times");

    // --- deque: thief steal path ---------------------------------------
    let s = w.stealer();
    for i in 0..64 {
        w.push(i).expect("warm-up fits the ring");
    }
    let n = allocs_during(|| {
        for _ in 0..ITERS {
            match s.steal() {
                Some(i) => w.push(i).expect("constant occupancy fits the ring"),
                None => unreachable!("deque drained under a single thread"),
            }
        }
        let _ = s.len();
        let _ = s.is_empty();
        let _ = w.spare();
    });
    assert_eq!(n, 0, "Stealer::steal allocated {n} times");

    // --- deque: batched steal ------------------------------------------
    // The batch loop is plain CAS-per-item with a caller-supplied sink;
    // nothing on the path may allocate.
    let w2 = WorkerDeque::new();
    let s2 = w2.stealer();
    for i in 0..64 {
        w2.push(i).expect("warm-up fits the ring");
    }
    let n = allocs_during(|| {
        for _ in 0..ITERS / 8 {
            let first = s2.steal_batch(8, |v| {
                w2.push(v).expect("items cycle back into the same ring");
            });
            let first = first.expect("deque never drains under a single thread");
            w2.push(first).expect("items cycle back into the same ring");
        }
    });
    assert_eq!(n, 0, "Stealer::steal_batch allocated {n} times");

    // --- injector seed/drain cycle at steady state ---------------------
    let inj = Injector::new();
    for i in 0..64 {
        inj.push(i);
    }
    for _ in 0..64 {
        let _ = inj.steal();
    }
    let n = allocs_during(|| {
        for i in 0..ITERS {
            inj.push(i);
            assert_eq!(inj.steal(), Some(i));
        }
    });
    assert_eq!(n, 0, "Injector push/steal allocated {n} times");

    // --- fan-in release CAS --------------------------------------------
    // Runs once per DAG edge; must be pure atomics.
    let pending = AtomicU32::new(u32::MAX);
    let n = allocs_during(|| {
        for _ in 0..ITERS {
            match release_pending(&pending, 7) {
                Ok(now_ready) => assert!(!now_ready),
                Err(e) => panic!("unexpected underflow: {e:?}"),
            }
        }
    });
    assert_eq!(n, 0, "release_pending allocated {n} times");
}
