//! Exhaustive model checks of the runtime's six core synchronization
//! protocols, run under `--cfg loom` (`make check-loom`).
//!
//! Each protocol gets a positive model — the property holds on **every**
//! interleaving the explorer can produce — and a negative "teeth" twin
//! that weakens the protocol (a relaxed ordering, a dropped lock, a
//! plain wait where a timed one is required) and asserts the checker
//! *catches* it. The teeth tests are what make a green run meaningful:
//! they prove the checker can see the failure class at all.
//!
//! The components under test are the real ones — `release_pending`,
//! `WorkerDeque`, `MemoryBudget`, `TraceRecorder`/`Lane`,
//! `ApplyLog`/`SendState` — compiled against the model backend of
//! [`dagfact_rt::sync`], not re-transcribed pseudo-code.

#![cfg(loom)]

use dagfact_rt::budget::{MemoryBudget, PressureLevel};
use dagfact_rt::deque::WorkerDeque;
use dagfact_rt::distproto::{ApplyLog, SendState};
use dagfact_rt::model::{self, cell::ModelCell, thread};
use dagfact_rt::release_pending;
use dagfact_rt::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use dagfact_rt::sync::{Arc, Condvar, Mutex};
use dagfact_rt::trace::{Lane, SpanKind, TraceRecorder};
use std::time::Duration;

// ---------------------------------------------------------------------
// Model 1: fan-in pending-counter release
// ---------------------------------------------------------------------

/// Two predecessors each publish a payload, then decrement the shared
/// pending counter through [`release_pending`]. Exactly one of them
/// observes the final release and must see *both* payloads (the AcqRel
/// RMW chain keeps the release sequence intact).
#[test]
fn fan_in_release_fires_exactly_once_with_full_visibility() {
    model::check(|| {
        let pending = Arc::new(AtomicU32::new(2));
        let a = Arc::new(ModelCell::new(0u32));
        let b = Arc::new(ModelCell::new(0u32));
        let fired = Arc::new(AtomicU32::new(0));

        let (p2, a2, b2, f2) = (
            Arc::clone(&pending),
            Arc::clone(&a),
            Arc::clone(&b),
            Arc::clone(&fired),
        );
        let t = thread::spawn(move || {
            a2.write(1);
            if release_pending(&p2, 9).expect("no underflow") {
                // Final releaser runs the successor: both predecessor
                // payloads must be visible.
                assert_eq!(a2.read(), 1);
                assert_eq!(b2.read(), 2);
                f2.fetch_add(1, Ordering::AcqRel);
            }
        });

        b.write(2);
        if release_pending(&pending, 9).expect("no underflow") {
            assert_eq!(a.read(), 1);
            assert_eq!(b.read(), 2);
            fired.fetch_add(1, Ordering::AcqRel);
        }

        t.join();
        assert_eq!(fired.load(Ordering::Acquire), 1, "successor enqueued once");
        assert_eq!(pending.load(Ordering::Acquire), 0);
    });
}

/// Teeth: the same fan-in with a `Relaxed` decrement tears the
/// happens-before edge — the final releaser reads the other
/// predecessor's payload without ordering, and the checker must report
/// the data race.
#[test]
fn fan_in_with_relaxed_decrement_is_a_data_race() {
    let failure = model::try_check(|| {
        let pending = Arc::new(AtomicU32::new(2));
        let a = Arc::new(ModelCell::new(0u32));
        let b = Arc::new(ModelCell::new(0u32));

        let (p2, a2, b2) = (Arc::clone(&pending), Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            a2.write(1);
            if p2.fetch_sub(1, Ordering::Relaxed) == 1 {
                let _ = a2.read();
                let _ = b2.read();
            }
        });

        b.write(2);
        if pending.fetch_sub(1, Ordering::Relaxed) == 1 {
            let _ = a.read();
            let _ = b.read();
        }

        t.join();
    })
    .expect_err("a Relaxed fan-in decrement must race");
    assert!(failure.message.contains("data race"), "got: {failure}");
}

/// Underflow stays typed (never wraps) in every interleaving: three
/// releases against a counter of two — the third, whoever performs it,
/// gets `Err(ReleaseUnderflow)`.
#[test]
fn fan_in_underflow_is_typed_in_every_interleaving() {
    model::check(|| {
        let pending = Arc::new(AtomicU32::new(2));
        let errs = Arc::new(AtomicU32::new(0));

        let (p2, e2) = (Arc::clone(&pending), Arc::clone(&errs));
        let t = thread::spawn(move || {
            // This predecessor releases twice (a duplicate edge).
            for _ in 0..2 {
                if release_pending(&p2, 3).is_err() {
                    e2.fetch_add(1, Ordering::AcqRel);
                }
            }
        });
        if release_pending(&pending, 3).is_err() {
            errs.fetch_add(1, Ordering::AcqRel);
        }
        t.join();

        assert_eq!(errs.load(Ordering::Acquire), 1, "exactly one typed underflow");
        assert_eq!(pending.load(Ordering::Acquire), 0, "counter never wraps");
    });
}

// ---------------------------------------------------------------------
// Model 2: owner-LIFO / thief-FIFO deque
// ---------------------------------------------------------------------

/// Owner pops and a thief steals concurrently: every item is taken
/// exactly once, owner sees LIFO order, thief sees FIFO order. The
/// single-remaining-item case exercises the Chase-Lev `top` CAS
/// arbitration between `pop` and `steal` in every interleaving.
#[test]
fn deque_owner_and_thief_take_each_item_exactly_once() {
    model::check(|| {
        // Tiny ring: every model atomic is explorable state.
        let w = WorkerDeque::with_capacity(4);
        w.push(1).expect("fits");
        w.push(2).expect("fits");
        let s = w.stealer();
        let taken = Arc::new(Mutex::new(Vec::new()));

        let t2 = Arc::clone(&taken);
        let t = thread::spawn(move || {
            let mut mine = Vec::new();
            // Two bounded attempts (`None` can mean "lost the CAS
            // race"; the engines poll, the model keeps the attempt
            // count finite to bound the interleaving space).
            for _ in 0..2 {
                if let Some(v) = s.steal() {
                    mine.push(v);
                }
            }
            // Thief steals from the FIFO (cold) end.
            assert!(mine == [] as [usize; 0] || mine == [1] || mine == [1, 2]);
            t2.lock().extend(mine);
        });

        let mut mine = Vec::new();
        // One pop attempt concurrent with the thief; the post-join drain
        // below is single-threaded and adds no interleavings.
        if let Some(v) = w.pop() {
            mine.push(v);
        }
        t.join();
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        // Owner pops from the LIFO (hot) end.
        assert!(mine == [] as [usize; 0] || mine == [2] || mine == [2, 1]);
        taken.lock().extend(mine);
        let mut all = taken.lock().clone();
        all.sort_unstable();
        assert_eq!(all, [1, 2], "each item taken exactly once");
    });
}

/// Teeth: check-then-act on the stealer's racy `is_empty` snapshot. Two
/// thieves both observe one remaining item; the loser's `unwrap` panics
/// — under Chase-Lev, `steal` additionally returns `None` on a lost CAS,
/// so the hazard is even wider than under the old mutex deque. This is
/// why the engines treat emptiness as a hint only.
#[test]
fn deque_check_then_act_on_snapshot_panics_somewhere() {
    let failure = model::try_check(|| {
        let w = WorkerDeque::with_capacity(4);
        w.push(7).expect("fits");
        let s1 = w.stealer();
        let s2 = w.stealer();

        let t = thread::spawn(move || {
            if !s1.is_empty() {
                s1.steal().unwrap();
            }
        });
        if !s2.is_empty() {
            s2.steal().unwrap();
        }
        t.join();
    })
    .expect_err("TOCTOU on the emptiness snapshot must panic in some interleaving");
    assert!(failure.message.contains("unwrap"), "got: {failure}");
}

// ---------------------------------------------------------------------
// Model 7: Chase-Lev batched steal (ROADMAP item 5)
// ---------------------------------------------------------------------

/// A thief batch-steals (one `top` CAS per item) while the owner pops:
/// the batch plus the owner's pops cover every item exactly once in
/// every interleaving — loss-freedom and no double-take for the exact
/// protocol `native`'s steal path runs.
#[test]
fn deque_batched_steal_and_owner_pop_cover_each_item_exactly_once() {
    model::check(|| {
        let w = WorkerDeque::with_capacity(4);
        for i in 1..=3 {
            w.push(i).expect("fits");
        }
        let s = w.stealer();
        let taken = Arc::new(Mutex::new(Vec::new()));

        let t2 = Arc::clone(&taken);
        let t = thread::spawn(move || {
            let mut mine = Vec::new();
            if let Some(first) = s.steal_batch(3, |v| mine.push(v)) {
                mine.insert(0, first);
            }
            // FIFO end: stolen items are an in-order run from the cold
            // end.
            for pair in mine.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "batch must be contiguous from the cold end");
            }
            t2.lock().extend(mine);
        });

        let mut mine = Vec::new();
        // One pop attempt concurrent with the batch; the post-join drain
        // is single-threaded and adds no interleavings.
        if let Some(v) = w.pop() {
            mine.push(v);
        }
        t.join();
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        taken.lock().extend(mine);
        let mut all = taken.lock().clone();
        all.sort_unstable();
        assert_eq!(all, [1, 2, 3], "each item taken exactly once, none lost");
    });
}

/// Teeth: the batched steal that looks cheaper — claim `k = 2` items
/// with a **single** `top` CAS (`t -> t + 2`) — double-takes against a
/// LIFO owner. The owner's plain pops never touch `top` while more than
/// one entry remains, so it can take a slot *inside* the thief's claimed
/// window and the wide CAS still succeeds. This is exactly why
/// `Stealer::steal_batch` pays one CAS per item.
#[test]
fn deque_wide_cas_batch_steal_double_takes_against_the_owner() {
    use dagfact_rt::sync::atomic::{AtomicU64, AtomicUsize};

    // The Chase-Lev ring with the unsound batch shortcut, inlined (the
    // real `deque` module does not expose one, by design).
    struct WideBatch {
        top: AtomicU64,
        bottom: AtomicU64,
        slots: Vec<AtomicUsize>,
    }
    impl WideBatch {
        fn pop(&self) -> Option<usize> {
            let b = self.bottom.load(Ordering::Relaxed);
            if self.top.load(Ordering::Relaxed) >= b {
                return None;
            }
            let b = b - 1;
            self.bottom.store(b, Ordering::SeqCst);
            let t = self.top.load(Ordering::SeqCst);
            if t < b {
                // More than one entry left: plain take, no CAS — the
                // legitimate Chase-Lev owner fast path the wide batch
                // CAS is unsound against.
                return Some(self.slots[b as usize].load(Ordering::Relaxed));
            }
            if t == b {
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then(|| self.slots[b as usize].load(Ordering::Relaxed));
            }
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }

        /// The unsound part: two slots, one CAS.
        fn steal_two(&self) -> Option<[usize; 2]> {
            let t = self.top.load(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::SeqCst);
            if b - t < 2 {
                return None;
            }
            let v0 = self.slots[t as usize].load(Ordering::Relaxed);
            let v1 = self.slots[t as usize + 1].load(Ordering::Relaxed);
            self.top
                .compare_exchange(t, t + 2, Ordering::SeqCst, Ordering::Relaxed)
                .ok()
                .map(|_| [v0, v1])
        }
    }

    let failure = model::try_check(|| {
        let d = Arc::new(WideBatch {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(3),
            slots: (0..4).map(AtomicUsize::new).collect(),
        });
        let seen = Arc::new(Mutex::new([0u8; 3]));

        let (d2, s2) = (Arc::clone(&d), Arc::clone(&seen));
        let t = thread::spawn(move || {
            if let Some(pair) = d2.steal_two() {
                let mut seen = s2.lock();
                for v in pair {
                    seen[v] += 1;
                    assert!(seen[v] == 1, "item {v} taken twice");
                }
            }
        });

        while let Some(v) = d.pop() {
            let mut seen = seen.lock();
            seen[v] += 1;
            assert!(seen[v] == 1, "item {v} taken twice");
        }
        t.join();
    })
    .expect_err("a k=2 single-CAS batch must double-take in some interleaving");
    assert!(failure.message.contains("taken twice"), "got: {failure}");
}

// ---------------------------------------------------------------------
// Model 3: condvar watchdog shutdown
// ---------------------------------------------------------------------

/// The correct protocol: the shutdown flag mutates under the mutex and
/// the notify follows the mutation. A plain (untimed) wait never loses
/// the wakeup and never deadlocks.
#[test]
fn condvar_shutdown_under_lock_never_loses_the_wakeup() {
    model::check(|| {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());

        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = thread::spawn(move || {
            let mut g = m2.lock();
            *g = true;
            cv2.notify_one();
        });

        {
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        }
        t.join();
    });
}

/// The watchdog pattern: the flag is published *outside* the mutex, so
/// the notify can fire before the waiter parks — but a **timed** wait
/// makes the lost wakeup survivable: the timeout is always a schedulable
/// exit, so no interleaving deadlocks. This is exactly why the engines'
/// idle loops use `wait_timeout` + `idle_check`.
#[test]
fn condvar_timed_wait_survives_a_lost_wakeup() {
    model::check(|| {
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let flag = Arc::new(AtomicBool::new(false));

        let (cv2, f2) = (Arc::clone(&cv), Arc::clone(&flag));
        let t = thread::spawn(move || {
            f2.store(true, Ordering::Release);
            cv2.notify_one();
        });

        let g = m.lock();
        if !flag.load(Ordering::Acquire) {
            // The notify may already have fired (and been lost); the
            // timeout guarantees progress either way.
            let _g = cv.wait_timeout(g, Duration::from_millis(1));
        }
        t.join();
        assert!(flag.load(Ordering::Acquire));
    });
}

/// Teeth: the same broken publish with a **plain** wait deadlocks in the
/// interleaving where the notify lands between the flag check and the
/// park — the classic lost wakeup, reported by the explorer.
#[test]
fn condvar_plain_wait_loses_the_wakeup_and_deadlocks() {
    let failure = model::try_check(|| {
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let flag = Arc::new(AtomicBool::new(false));

        let (cv2, f2) = (Arc::clone(&cv), Arc::clone(&flag));
        let t = thread::spawn(move || {
            f2.store(true, Ordering::Release);
            cv2.notify_one();
        });

        let g = m.lock();
        if !flag.load(Ordering::Acquire) {
            let _g = cv.wait(g);
        }
        t.join();
    })
    .expect_err("a plain wait must deadlock on the lost wakeup");
    assert!(failure.message.contains("deadlock"), "got: {failure}");
}

// ---------------------------------------------------------------------
// Model 4: memory-budget ledger
// ---------------------------------------------------------------------

/// Concurrent charges never exceed the cap (the CAS admission check),
/// at least one contender is admitted, and the ledger drains to zero.
/// The single-threaded prologue walks the pressure rungs.
#[test]
fn budget_ledger_respects_cap_and_drains() {
    model::check(|| {
        let b = MemoryBudget::with_cap(100);

        // Pressure-rung transitions (deterministic prologue).
        b.try_charge(85, 0).expect("fits");
        assert_eq!(b.level(), PressureLevel::Yellow);
        b.try_charge(7, 0).expect("fits");
        assert_eq!(b.level(), PressureLevel::Orange);
        assert_eq!(b.admission_width(), Some(2));
        b.release(92);
        assert_eq!(b.level(), PressureLevel::Green);

        // Concurrent admission: 60 + 60 over a cap of 100.
        let admitted = Arc::new(AtomicU32::new(0));
        let (b2, adm2) = (Arc::clone(&b), Arc::clone(&admitted));
        let t = thread::spawn(move || {
            if b2.try_charge(60, 1).is_ok() {
                adm2.fetch_add(1, Ordering::AcqRel);
                b2.release(60);
            }
        });
        if b.try_charge(60, 2).is_ok() {
            admitted.fetch_add(1, Ordering::AcqRel);
            b.release(60);
        }
        t.join();

        assert!(admitted.load(Ordering::Acquire) >= 1, "no livelock: someone got in");
        assert_eq!(b.used(), 0, "ledger drains");
        assert!(b.peak() <= 100, "cap never exceeded");
    });
}

/// Teeth: a load/store ledger (instead of the CAS loop) loses an update
/// when two charges interleave — the explorer finds the interleaving
/// where the final balance is wrong.
#[test]
fn budget_load_store_ledger_loses_updates() {
    let failure = model::try_check(|| {
        let used = Arc::new(AtomicU32::new(0));
        let u2 = Arc::clone(&used);
        let t = thread::spawn(move || {
            let v = u2.load(Ordering::Acquire);
            u2.store(v + 60, Ordering::Release);
        });
        let v = used.load(Ordering::Acquire);
        used.store(v + 60, Ordering::Release);
        t.join();
        assert_eq!(used.load(Ordering::Acquire), 120, "lost update");
    })
    .expect_err("a load/store ledger must lose an update somewhere");
    assert!(failure.message.contains("lost update"), "got: {failure}");
}

// ---------------------------------------------------------------------
// Model 5: trace-lane handoff
// ---------------------------------------------------------------------

/// Two workers record into private lanes that merge into the recorder on
/// drop (worker exit); a detached lane records nothing. Every span
/// arrives exactly once, in every interleaving of the merges.
#[test]
fn trace_lanes_merge_on_worker_exit() {
    model::check(|| {
        let rec = TraceRecorder::shared();

        let r2 = Arc::clone(&rec);
        let t = thread::spawn(move || {
            let mut lane = Lane::new(Some(&r2), 1);
            assert!(lane.enabled());
            let t0 = lane.now();
            lane.record(SpanKind::Execute, Some(0), t0);
            // Lane drops here: merge-on-worker-exit.
        });

        {
            let mut lane = Lane::new(Some(&rec), 0);
            let t0 = lane.now();
            lane.record(SpanKind::Execute, Some(1), t0);
        }

        {
            // Detached lane: tracing disabled, records nothing, merges
            // nothing.
            let mut lane = Lane::new(None, 2);
            assert!(!lane.enabled());
            lane.record(SpanKind::Execute, Some(2), 0);
        }

        t.join();
        assert_eq!(rec.len(), 2, "both attached spans, nothing from the detached lane");
    });
}

/// Teeth: workers sharing one *unsynchronized* span buffer instead of
/// private lanes race on the flush — the reason `Lane` buffers privately
/// and merges under the recorder's mutex.
#[test]
fn trace_shared_unsynchronized_buffer_is_a_data_race() {
    let failure = model::try_check(|| {
        let buf = Arc::new(ModelCell::new(Vec::<u32>::new()));
        let b2 = Arc::clone(&buf);
        let t = thread::spawn(move || b2.with_mut(|v| v.push(1)));
        buf.with_mut(|v| v.push(2));
        t.join();
    })
    .expect_err("two unsynchronized flushes must race");
    assert!(failure.message.contains("data race"), "got: {failure}");
}

// ---------------------------------------------------------------------
// Model 6: dist retransmit/ack — idempotent apply under duplicate
// delivery (DESIGN.md §14)
// ---------------------------------------------------------------------

/// A retransmitted fan-in message races its original into the receiver:
/// the apply log admits exactly one of the two concurrent deliveries,
/// the winner's payload write is visible to whoever observes the key as
/// applied, duplicate final acks collapse to one completion, and
/// duplicate Release messages free the retained buffer exactly once —
/// in **every** interleaving.
#[test]
fn dist_duplicate_delivery_applies_exactly_once() {
    model::check(|| {
        let log = Arc::new(ApplyLog::new());
        let send = Arc::new(SendState::new(4));
        let panel = Arc::new(ModelCell::new(0u32));
        let acks = Arc::new(AtomicU32::new(0));
        let freed = Arc::new(AtomicU32::new(0));

        let (l2, s2, p2, a2, f2) = (
            Arc::clone(&log),
            Arc::clone(&send),
            Arc::clone(&panel),
            Arc::clone(&acks),
            Arc::clone(&freed),
        );
        let t = thread::spawn(move || {
            // Delivery of the retransmitted copy (pair 1, epoch 0).
            if l2.apply_if_new(1, 0) {
                p2.with_mut(|v| *v += 5);
            }
            // Its ack (the sender may see two of these).
            if s2.mark_acked() {
                a2.fetch_add(1, Ordering::AcqRel);
            }
            // A duplicated Release for the retained buffer.
            if s2.mark_released() {
                f2.fetch_add(1, Ordering::AcqRel);
            }
        });

        // Delivery of the original copy of the same message.
        if log.apply_if_new(1, 0) {
            panel.with_mut(|v| *v += 5);
        }
        if send.mark_acked() {
            acks.fetch_add(1, Ordering::AcqRel);
        }
        if send.mark_released() {
            freed.fetch_add(1, Ordering::AcqRel);
        }

        t.join();
        // The apply-log mutex is the happens-before edge: whoever joins
        // both threads sees the single application.
        assert_eq!(panel.read(), 5, "payload applied exactly once");
        assert_eq!(acks.load(Ordering::Acquire), 1, "duplicate final ack absorbed");
        assert_eq!(freed.load(Ordering::Acquire), 1, "buffer freed exactly once");
        assert!(send.is_acked());
        assert!(send.is_released());
    });
}

/// Teeth: the same duplicate delivery *without* the apply log — both
/// copies scatter into the panel unsynchronized. The explorer must
/// report the data race (and in the interleavings where both complete,
/// the panel would hold 2× the contribution: the silent-corruption case
/// the log exists to prevent).
#[test]
fn dist_duplicate_delivery_without_apply_log_is_a_data_race() {
    let failure = model::try_check(|| {
        let panel = Arc::new(ModelCell::new(0u32));
        let p2 = Arc::clone(&panel);
        let t = thread::spawn(move || {
            p2.with_mut(|v| *v += 5);
        });
        panel.with_mut(|v| *v += 5);
        t.join();
    })
    .expect_err("unlogged duplicate applications must race");
    assert!(failure.message.contains("data race"), "got: {failure}");
}

// ---------------------------------------------------------------------
// Shim semantics under the model backend
// ---------------------------------------------------------------------

/// Mutations made inside a critical section are visible to the next
/// holder — same contract as the std backend's poison-recovering lock
/// (the model has no poisoning: a panicking holder aborts the whole
/// execution and is reported, which is strictly stricter).
#[test]
fn model_mutex_publishes_critical_section_writes() {
    model::check(|| {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        t.join();
        assert_eq!(*m.lock(), 2);
    });
}

/// `wait_timeout` returns the reacquired guard after a timeout with no
/// notifier in sight — the caller re-checks its predicate either way,
/// matching the std backend's signature and contract.
#[test]
fn model_wait_timeout_returns_guard_without_notifier() {
    model::check(|| {
        let m = Mutex::new(41u32);
        let cv = Condvar::new();
        let g = m.lock();
        // No other thread exists: the only schedulable exit is the
        // timeout, and the guard comes back usable.
        let mut g = cv.wait_timeout(g, Duration::from_millis(1));
        *g += 1;
        assert_eq!(*g, 42);
    });
}
