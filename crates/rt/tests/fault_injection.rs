//! Cross-engine fault-injection suite: every engine must survive the same
//! fault plans with identical observable semantics — a mid-DAG panic
//! surfaces as `Err(EngineError::TaskPanicked)` without hanging or
//! aborting the process, transient failures are retried to success within
//! the configured budget, and a broken dependency graph trips the
//! watchdog instead of deadlocking.
//!
//! Every test runs the engine on a helper thread with a hard timeout so a
//! regression that re-introduces a hang fails the test instead of wedging
//! the suite.

use dagfact_rt::dataflow::DataflowGraph;
use dagfact_rt::native::{run_native_checked, NativeTask};
use dagfact_rt::ptg::{run_ptg_checked, PtgProgram};
use dagfact_rt::{AccessMode, EngineError, FaultPlan, RetryPolicy, RunConfig, RunReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Hard wall-clock bound for one engine run; far above anything the tiny
/// DAGs here need, far below the CI timeout.
const TEST_TIMEOUT: Duration = Duration::from_secs(20);

const NTASKS: usize = 64;
const NWORKERS: usize = 4;

/// Run `f` on a scoped thread and panic if it exceeds [`TEST_TIMEOUT`]
/// (the engine hung — exactly the regression this suite guards against).
fn with_timeout<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        s.spawn(move || {
            let _ = tx.send(f());
        });
        match rx.recv_timeout(TEST_TIMEOUT) {
            Ok(r) => r,
            Err(_) => panic!("engine did not finish within {TEST_TIMEOUT:?}: hang regression"),
        }
    })
}

/// A chain DAG (task t depends on t-1) — the worst case for fault
/// propagation because every task after the faulty one is still pending
/// when the run is poisoned.
fn chain_tasks() -> Vec<NativeTask> {
    (0..NTASKS)
        .map(|t| NativeTask {
            owner: t % NWORKERS,
            npred: u32::from(t > 0),
            succs: if t + 1 < NTASKS { vec![t + 1] } else { vec![] },
            priority: 0.0,
        })
        .collect()
}

struct ChainProgram;

impl PtgProgram for ChainProgram {
    fn num_tasks(&self) -> usize {
        NTASKS
    }
    fn num_predecessors(&self, t: usize) -> u32 {
        u32::from(t > 0)
    }
    fn successors(&self, t: usize, out: &mut Vec<usize>) {
        if t + 1 < NTASKS {
            out.push(t + 1);
        }
    }
    fn execute(&self, _t: usize, _w: usize) {}
}

/// Counting PTG chain for the transient tests.
struct CountingChain<'a> {
    count: &'a AtomicUsize,
}

impl PtgProgram for CountingChain<'_> {
    fn num_tasks(&self) -> usize {
        NTASKS
    }
    fn num_predecessors(&self, t: usize) -> u32 {
        u32::from(t > 0)
    }
    fn successors(&self, t: usize, out: &mut Vec<usize>) {
        if t + 1 < NTASKS {
            out.push(t + 1);
        }
    }
    fn execute(&self, _t: usize, _w: usize) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

fn panic_config() -> RunConfig {
    RunConfig {
        fault_plan: Some(Arc::new(FaultPlan::new().panic_on(NTASKS / 2))),
        retry: RetryPolicy::default(),
        watchdog: Some(Duration::from_secs(10)),
        ..RunConfig::default()
    }
}

fn transient_config() -> RunConfig {
    RunConfig {
        fault_plan: Some(Arc::new(FaultPlan::new().transient_on(NTASKS / 2, 2))),
        retry: RetryPolicy::retrying(),
        watchdog: Some(Duration::from_secs(10)),
        ..RunConfig::default()
    }
}

fn assert_panicked_mid_task(result: Result<RunReport, EngineError>) {
    match result {
        Err(EngineError::TaskPanicked { task, attempts, .. }) => {
            assert_eq!(task, NTASKS / 2);
            assert_eq!(attempts, 1);
        }
        other => panic!("expected TaskPanicked, got {other:?}"),
    }
}

fn assert_retried_to_success(report: RunReport, executed: usize) {
    assert_eq!(report.completed, NTASKS);
    assert_eq!(executed, NTASKS, "every body runs exactly once");
    assert!(report.retries >= 2, "two injected failures → ≥2 retries");
    assert_eq!(report.faults_injected, 2);
    let (task, attempts) = report.task_attempts[0];
    assert_eq!(task, NTASKS / 2);
    assert_eq!(attempts, 3, "fail, fail, succeed");
}

// ---------------------------------------------------------------------
// Injected panic → Err(TaskPanicked), no hang, successors cancelled
// ---------------------------------------------------------------------

#[test]
fn native_panic_injection_returns_error() {
    let result = with_timeout(|| {
        let executed = AtomicUsize::new(0);
        let tasks = chain_tasks();
        let r = run_native_checked(&tasks, NWORKERS, panic_config(), |_, _| {
            executed.fetch_add(1, Ordering::Relaxed);
        });
        // The injection fires before the body: the faulty task and its
        // descendants never execute.
        assert_eq!(executed.load(Ordering::Relaxed), NTASKS / 2);
        r
    });
    assert_panicked_mid_task(result);
}

#[test]
fn dataflow_panic_injection_returns_error() {
    let result = with_timeout(|| {
        let executed = AtomicUsize::new(0);
        let mut g = DataflowGraph::new(1);
        for _ in 0..NTASKS {
            let executed = &executed;
            g.submit(&[(0, AccessMode::ReadWrite)], 0.0, move |_| {
                executed.fetch_add(1, Ordering::Relaxed);
            });
        }
        let r = g.execute_checked(NWORKERS, panic_config());
        assert_eq!(executed.load(Ordering::Relaxed), NTASKS / 2);
        r
    });
    assert_panicked_mid_task(result);
}

#[test]
fn ptg_panic_injection_returns_error() {
    let result = with_timeout(|| run_ptg_checked(&ChainProgram, NWORKERS, panic_config()));
    assert_panicked_mid_task(result);
}

/// A genuine (non-injected) body panic must also surface as an error with
/// the original payload preserved, on every engine.
#[test]
fn real_body_panic_is_captured_with_message() {
    let config = || RunConfig {
        watchdog: Some(Duration::from_secs(10)),
        ..RunConfig::default()
    };
    let tasks = chain_tasks();
    let result = with_timeout(|| {
        run_native_checked(&tasks, NWORKERS, config(), |t, _| {
            assert!(t != 7, "numerics exploded");
        })
    });
    match result {
        Err(EngineError::TaskPanicked { task: 7, message, .. }) => {
            assert!(message.contains("numerics exploded"), "{message}");
        }
        other => panic!("expected TaskPanicked{{task:7}}, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Transient fail-twice-then-succeed → completes, retries visible
// ---------------------------------------------------------------------

#[test]
fn native_transient_faults_are_retried() {
    let (report, executed) = with_timeout(|| {
        let executed = AtomicUsize::new(0);
        let tasks = chain_tasks();
        let r = run_native_checked(&tasks, NWORKERS, transient_config(), |_, _| {
            executed.fetch_add(1, Ordering::Relaxed);
        })
        .expect("transient faults within budget must not fail the run");
        (r, executed.load(Ordering::Relaxed))
    });
    assert_retried_to_success(report, executed);
}

#[test]
fn dataflow_transient_faults_are_retried() {
    let (report, executed) = with_timeout(|| {
        let executed = AtomicUsize::new(0);
        let mut g = DataflowGraph::new(1);
        for _ in 0..NTASKS {
            let executed = &executed;
            g.submit(&[(0, AccessMode::ReadWrite)], 0.0, move |_| {
                executed.fetch_add(1, Ordering::Relaxed);
            });
        }
        let r = g
            .execute_checked(NWORKERS, transient_config())
            .expect("transient faults within budget must not fail the run");
        (r, executed.load(Ordering::Relaxed))
    });
    assert_retried_to_success(report, executed);
}

#[test]
fn ptg_transient_faults_are_retried() {
    let (report, executed) = with_timeout(|| {
        let executed = AtomicUsize::new(0);
        let r = run_ptg_checked(&CountingChain { count: &executed }, NWORKERS, transient_config())
            .expect("transient faults within budget must not fail the run");
        (r, executed.load(Ordering::Relaxed))
    });
    assert_retried_to_success(report, executed);
}

/// A task that fails transiently more often than the budget allows turns
/// into `RetryBudgetExhausted` — still an orderly Err, not a hang.
#[test]
fn retry_budget_exhaustion_is_an_error() {
    let config = RunConfig {
        fault_plan: Some(Arc::new(FaultPlan::new().transient_on(3, 99))),
        retry: RetryPolicy::retrying(),
        watchdog: Some(Duration::from_secs(10)),
        ..RunConfig::default()
    };
    let tasks = chain_tasks();
    let result = with_timeout(|| run_native_checked(&tasks, NWORKERS, config, |_, _| {}));
    match result {
        Err(EngineError::RetryBudgetExhausted { task: 3, attempts }) => {
            assert_eq!(attempts, RetryPolicy::retrying().max_attempts);
        }
        other => panic!("expected RetryBudgetExhausted, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Watchdog: a broken DAG stalls → Err(Stalled) instead of deadlock
// ---------------------------------------------------------------------

#[test]
fn native_watchdog_detects_unsatisfiable_dag() {
    // Task 1 claims a predecessor that no task releases.
    let tasks = vec![
        NativeTask { owner: 0, npred: 0, succs: vec![], priority: 0.0 },
        NativeTask { owner: 0, npred: 1, succs: vec![], priority: 0.0 },
    ];
    let config = RunConfig {
        watchdog: Some(Duration::from_millis(200)),
        ..RunConfig::default()
    };
    let result = with_timeout(|| run_native_checked(&tasks, 2, config, |_, _| {}));
    match result {
        Err(EngineError::Stalled { remaining, stuck, .. }) => {
            assert_eq!(remaining, 1);
            assert_eq!(stuck, vec![1]);
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}

#[test]
fn ptg_watchdog_detects_unsatisfiable_dag() {
    struct Broken;
    impl PtgProgram for Broken {
        fn num_tasks(&self) -> usize {
            2
        }
        fn num_predecessors(&self, t: usize) -> u32 {
            // Task 1 waits forever: nobody lists it as a successor.
            u32::from(t == 1)
        }
        fn successors(&self, _t: usize, _out: &mut Vec<usize>) {}
        fn execute(&self, _t: usize, _w: usize) {}
    }
    let config = RunConfig {
        watchdog: Some(Duration::from_millis(200)),
        ..RunConfig::default()
    };
    let result = with_timeout(|| run_ptg_checked(&Broken, 2, config));
    match result {
        Err(EngineError::Stalled { remaining: 1, stuck, .. }) => assert_eq!(stuck, vec![1]),
        other => panic!("expected Stalled, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Sampled (probabilistic) plans: deterministic chaos across a real DAG
// ---------------------------------------------------------------------

#[test]
fn random_transients_complete_on_every_engine() {
    // ~25% of tasks fail once before succeeding; seeded → reproducible.
    let plan = || {
        Some(Arc::new(
            FaultPlan::with_seed(7).random_transient(0.25, 1),
        ))
    };
    let config = || RunConfig {
        fault_plan: plan(),
        retry: RetryPolicy::retrying(),
        watchdog: Some(Duration::from_secs(10)),
        ..RunConfig::default()
    };

    let (native, dataflow, ptg) = with_timeout(|| {
        let tasks = chain_tasks();
        let native = run_native_checked(&tasks, NWORKERS, config(), |_, _| {}).unwrap();

        let mut g = DataflowGraph::new(1);
        for _ in 0..NTASKS {
            g.submit(&[(0, AccessMode::ReadWrite)], 0.0, |_| {});
        }
        let dataflow = g.execute_checked(NWORKERS, config()).unwrap();

        let count = AtomicUsize::new(0);
        let ptg = run_ptg_checked(&CountingChain { count: &count }, NWORKERS, config()).unwrap();
        (native, dataflow, ptg)
    });

    for report in [&native, &dataflow, &ptg] {
        assert_eq!(report.completed, NTASKS);
        assert!(report.retries > 0, "seed 7 @ 25% must hit at least one task");
    }
    // Fault sampling keys on (seed, task), not scheduling order: all three
    // engines draw the identical fault set.
    assert_eq!(native.faults_injected, dataflow.faults_injected);
    assert_eq!(native.faults_injected, ptg.faults_injected);
    assert_eq!(native.task_attempts, dataflow.task_attempts);
    assert_eq!(native.task_attempts, ptg.task_attempts);
}

/// Delays alone never fail a run — they only stretch it (and count as
/// injected faults for observability).
#[test]
fn injected_delays_do_not_fail_the_run() {
    let config = RunConfig {
        fault_plan: Some(Arc::new(
            FaultPlan::new()
                .delay_on(1, Duration::from_millis(5))
                .delay_on(2, Duration::from_millis(5)),
        )),
        watchdog: Some(Duration::from_secs(10)),
        ..RunConfig::default()
    };
    let tasks = chain_tasks();
    let report =
        with_timeout(|| run_native_checked(&tasks, NWORKERS, config, |_, _| {}).unwrap());
    assert_eq!(report.completed, NTASKS);
    assert_eq!(report.faults_injected, 2);
    assert!(report.retries == 0);
}

/// Zero workers is a configuration error, rejected as a structured
/// `EngineError::NoWorkers` by every checked engine instead of an
/// assert in the entry point (hot-path purity: panic-free engines).
#[test]
fn zero_workers_is_a_structured_rejection() {
    let tasks = chain_tasks();
    let r = run_native_checked(&tasks, 0, RunConfig::default(), |_, _| {});
    assert!(matches!(r, Err(EngineError::NoWorkers)), "{r:?}");

    let g = DataflowGraph::new(4);
    let r = g.execute_checked(0, RunConfig::default());
    assert!(matches!(r, Err(EngineError::NoWorkers)), "{r:?}");

    let r = run_ptg_checked(&ChainProgram, 0, RunConfig::default());
    assert!(matches!(r, Err(EngineError::NoWorkers)), "{r:?}");
}
