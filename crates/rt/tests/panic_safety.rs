//! A panicking task body must propagate to the caller instead of
//! deadlocking the worker pool — for all three engines, at every worker
//! count.

use dagfact_rt::dataflow::DataflowGraph;
use dagfact_rt::native::{run_native, NativeTask};
use dagfact_rt::ptg::{run_ptg, PtgProgram};
use dagfact_rt::AccessMode;

fn expect_panic(f: impl FnOnce() + std::panic::UnwindSafe) {
    let result = std::panic::catch_unwind(f);
    assert!(result.is_err(), "task panic was swallowed");
}

#[test]
fn native_engine_propagates_task_panic() {
    for nworkers in [1usize, 4] {
        let tasks: Vec<NativeTask> = (0..64)
            .map(|i| NativeTask {
                owner: i % 4,
                npred: 0,
                succs: vec![],
                priority: 0.0,
            })
            .collect();
        expect_panic(move || {
            run_native(&tasks, nworkers, |t, _| {
                if t == 13 {
                    panic!("boom");
                }
            });
        });
    }
}

#[test]
fn dataflow_engine_propagates_task_panic() {
    for nworkers in [1usize, 4] {
        expect_panic(move || {
            let mut g = DataflowGraph::new(4);
            for i in 0..64usize {
                g.submit(&[(i % 4, AccessMode::ReadWrite)], 0.0, move |_| {
                    if i == 17 {
                        panic!("boom");
                    }
                });
            }
            g.execute(nworkers);
        });
    }
}

#[test]
fn ptg_engine_propagates_task_panic() {
    struct Explodes;
    impl PtgProgram for Explodes {
        fn num_tasks(&self) -> usize {
            64
        }
        fn num_predecessors(&self, _t: usize) -> u32 {
            0
        }
        fn successors(&self, _t: usize, _out: &mut Vec<usize>) {}
        fn execute(&self, t: usize, _w: usize) {
            if t == 21 {
                panic!("boom");
            }
        }
    }
    for nworkers in [1usize, 4] {
        expect_panic(move || run_ptg(&Explodes, nworkers));
    }
}
