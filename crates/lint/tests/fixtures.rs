//! Fixture corpus for the hot-path purity analyzer (DESIGN.md §13).
//!
//! Each case is a small source snippet with a known-positive or
//! known-negative outcome per rule, checked against golden findings
//! (rule, detail, witness chain, baseline key) through the public
//! pipeline an external consumer sees: `parse_file` → `CallGraph::build`
//! → `check_hot_paths` → `Baseline::drift`.

use dagfact_lint::baseline::Baseline;
use dagfact_lint::callgraph::CallGraph;
use dagfact_lint::config::parse_hotpaths;
use dagfact_lint::hotpath::{check_hot_paths, HotFinding, HotRule};
use dagfact_lint::parse::parse_file;
use dagfact_lint::unwrap::check_unwrap;

/// Run the analyzer over a set of `(module, source)` fixture files with
/// one hot root.
fn analyze(files: &[(&str, &str)], root: &str) -> Vec<HotFinding> {
    let parsed: Vec<_> = files
        .iter()
        .map(|(module, src)| parse_file(src, module))
        .collect();
    // Align a (path, comments) record to each function, as lint_hot does.
    let mut meta = Vec::new();
    for (i, p) in parsed.iter().enumerate() {
        for _ in &p.functions {
            meta.push((format!("fixture{i}.rs"), p.comments.clone()));
        }
    }
    let g = CallGraph::build(parsed);
    let roots = g.by_qname.get(root).unwrap_or_else(|| {
        panic!("fixture root {root} did not resolve; known: {:?}", {
            let mut k: Vec<_> = g.by_qname.keys().collect();
            k.sort();
            k
        })
    });
    check_hot_paths(&g, roots, &|i| meta[i].clone())
}

fn golden(findings: &[HotFinding]) -> Vec<(HotRule, String)> {
    findings
        .iter()
        .map(|f| (f.rule, f.detail.clone()))
        .collect()
}

// --- rule: allocation ----------------------------------------------------

#[test]
fn alloc_positive_ctor_method_macro_clone() {
    let f = analyze(
        &[(
            "k::gemm",
            "pub fn hot() {\n\
             \x20 let v = Vec::with_capacity(8);\n\
             \x20 v.push(1);\n\
             \x20 let w = vec![0; 4];\n\
             \x20 let x = w.clone();\n\
             }",
        )],
        "k::gemm::hot",
    );
    assert_eq!(
        golden(&f),
        vec![
            (HotRule::Alloc, "Vec::with_capacity".into()),
            (HotRule::Alloc, ".push()".into()),
            (HotRule::Alloc, "vec!".into()),
            (HotRule::Alloc, ".clone()".into()),
        ]
    );
    // Baseline keys are line-free and stable.
    assert_eq!(f[0].key(), "alloc|k::gemm::hot|Vec::with_capacity");
}

#[test]
fn alloc_negative_marker_and_iterators() {
    let f = analyze(
        &[(
            "k::gemm",
            "pub fn hot(dst: &mut [f64], src: &[f64]) {\n\
             \x20 // ALLOC: pooled at spawn; amortized to zero per task.\n\
             \x20 buf.push(1);\n\
             \x20 for (d, s) in dst.iter_mut().zip(src.iter()) { *d += *s; }\n\
             }",
        )],
        "k::gemm::hot",
    );
    assert!(f.is_empty(), "expected clean, got {f:?}");
}

// --- rule: locks ---------------------------------------------------------

#[test]
fn lock_positive_mutex_rwlock_condvar() {
    let f = analyze(
        &[(
            "r::native",
            "pub fn hot() { q.lock(); s.read(); s.write(); cv.wait(g); }",
        )],
        "r::native::hot",
    );
    assert_eq!(
        golden(&f),
        vec![
            (HotRule::Lock, ".lock()".into()),
            (HotRule::Lock, ".read()".into()),
            (HotRule::Lock, ".write()".into()),
            (HotRule::Lock, ".wait()".into()),
        ]
    );
}

#[test]
fn lock_negative_justified_protocol() {
    let f = analyze(
        &[(
            "r::native",
            "pub fn hot() {\n\
             \x20 // LOCK: owner/thief deque protocol, model-checked.\n\
             \x20 q.lock();\n\
             }",
        )],
        "r::native::hot",
    );
    assert!(f.is_empty(), "expected clean, got {f:?}");
}

// --- rule: panic sites ---------------------------------------------------

#[test]
fn panic_positive_no_marker_escape_hatch() {
    // Panic findings accept NO justification marker: the fix is a
    // structured error or a baseline entry, never a comment.
    let f = analyze(
        &[(
            "r::ptg",
            "pub fn hot() {\n\
             \x20 // HOT: this marker must NOT silence a panic site.\n\
             \x20 x.unwrap();\n\
             \x20 y.expect(\"msg\");\n\
             \x20 panic!(\"boom\");\n\
             \x20 assert!(cond);\n\
             }",
        )],
        "r::ptg::hot",
    );
    assert_eq!(
        golden(&f),
        vec![
            (HotRule::Panic, ".unwrap()".into()),
            (HotRule::Panic, ".expect()".into()),
            (HotRule::Panic, "panic!".into()),
            (HotRule::Panic, "assert!".into()),
        ]
    );
}

#[test]
fn panic_negative_debug_assert_is_free() {
    let f = analyze(
        &[(
            "r::ptg",
            "pub fn hot(i: usize, n: usize) { debug_assert!(i < n); debug_assert_eq!(n % 2, 0); }",
        )],
        "r::ptg::hot",
    );
    assert!(f.is_empty(), "expected clean, got {f:?}");
}

// --- rule: slice indexing ------------------------------------------------

#[test]
fn index_positive_and_bounds_negative() {
    let f = analyze(
        &[(
            "k::trsm",
            "pub fn hot(a: &[f64], i: usize) -> f64 { a[i] }\n\
             pub fn safe(a: &[f64], i: usize) -> f64 {\n\
             \x20 // BOUNDS: i < a.len() by the caller's panel contract.\n\
             \x20 a[i]\n\
             }",
        )],
        "k::trsm::hot",
    );
    assert_eq!(golden(&f), vec![(HotRule::Index, "slice indexing".into())]);
    let f = analyze(
        &[(
            "k::trsm",
            "pub fn hot(a: &[f64], i: usize) -> f64 {\n\
             \x20 // BOUNDS: i < a.len() by the caller's panel contract.\n\
             \x20 a[i]\n\
             }",
        )],
        "k::trsm::hot",
    );
    assert!(f.is_empty(), "expected clean, got {f:?}");
}

// --- rule: blocking I/O --------------------------------------------------

#[test]
fn io_positive_macros_files_sleep() {
    let f = analyze(
        &[(
            "r::native",
            "pub fn hot() { println!(\"{}\", 1); let f = File::open(p); thread::sleep(d); }",
        )],
        "r::native::hot",
    );
    assert_eq!(
        golden(&f),
        vec![
            (HotRule::Io, "println!".into()),
            (HotRule::Io, "File::open".into()),
            (HotRule::Io, "thread::sleep".into()),
        ]
    );
}

// --- rule: tracing -------------------------------------------------------

#[test]
fn trace_positive_recorder_negative_lane_wrappers() {
    let f = analyze(
        &[(
            "r::native",
            "pub fn hot(rec: &TraceRecorder) { rec.merge_lane(l); lane.record(span); }",
        )],
        "r::native::hot",
    );
    // merge_lane is TraceRecorder-unique; .record() is the sanctioned
    // detached-check Lane wrapper and stays silent.
    assert_eq!(golden(&f), vec![(HotRule::Trace, ".merge_lane()".into())]);
}

#[test]
fn trace_negative_inside_trace_module() {
    let f = analyze(
        &[("r::trace", "pub fn hot(r: &mut R) { r.merge_lane(l); }")],
        "r::trace::hot",
    );
    assert!(f.is_empty(), "the trace module implements the recorder");
}

// --- call-graph resolution across fixture files --------------------------

#[test]
fn cross_file_resolution_carries_witness_chain() {
    let f = analyze(
        &[
            (
                "r::native",
                "use crate::queue::Ready;\n\
                 pub fn run() { step(); }\n\
                 fn step() { crate::queue::grab(); }",
            ),
            (
                "r::queue",
                "pub struct Ready;\n\
                 pub fn grab() { Ready::refill(); }\n\
                 impl Ready { fn refill() { let v: Vec<u8> = Vec::new(); } }",
            ),
        ],
        "r::native::run",
    );
    assert_eq!(golden(&f), vec![(HotRule::Alloc, "Vec::new".into())]);
    assert_eq!(
        f[0].chain,
        vec![
            "r::native::run",
            "r::native::step",
            "r::queue::grab",
            "r::queue::Ready::refill",
        ]
    );
}

#[test]
fn unreachable_violations_stay_silent() {
    let f = analyze(
        &[(
            "r::native",
            "pub fn hot() {}\n\
             pub fn cold() { v.push(1); q.lock(); x.unwrap(); }",
        )],
        "r::native::hot",
    );
    assert!(f.is_empty(), "cold() is not reachable from hot()");
}

#[test]
fn cfg_test_modules_are_invisible() {
    let f = analyze(
        &[(
            "r::native",
            "pub fn hot() {}\n\
             #[cfg(test)]\n\
             mod tests { pub fn hot() { v.push(1); } }",
        )],
        "r::native::hot",
    );
    assert!(f.is_empty(), "test-only twin must not shadow the hot fn");
}

// --- baseline drift ------------------------------------------------------

#[test]
fn baseline_gates_new_and_stale_keys() {
    let f = analyze(
        &[("k::gemm", "pub fn hot() { v.push(1); }")],
        "k::gemm::hot",
    );
    let keys: Vec<String> = f.iter().map(HotFinding::key).collect();

    // Exact baseline: clean.
    let b = Baseline::from_json(&format!(
        "{{\"version\":1,\"keys\":[\"{}\"]}}",
        keys[0]
    ))
    .expect("baseline parses");
    assert!(b.drift(keys.iter().map(String::as_str)).is_clean());

    // Empty baseline: the finding is NEW and fails the gate.
    let empty = Baseline::from_json("{\"version\":1,\"keys\":[]}").expect("parses");
    let d = empty.drift(keys.iter().map(String::as_str));
    assert_eq!(d.new, keys);
    assert!(d.stale.is_empty());

    // Baseline with an extra key: STALE (burn-down win) also drifts.
    let stale = Baseline::from_json(
        "{\"version\":1,\"keys\":[\"alloc|k::gemm::hot|.push()\",\"lock|gone::fn|.lock()\"]}",
    )
    .expect("parses");
    let d = stale.drift(keys.iter().map(String::as_str));
    assert!(d.new.is_empty());
    assert_eq!(d.stale, vec!["lock|gone::fn|.lock()".to_string()]);
}

// --- hot-roots config ----------------------------------------------------

#[test]
fn hotpaths_config_roundtrip_and_errors() {
    let roots = parse_hotpaths(
        "# comment\n[[root]]\npath = \"a::b::c\"\nnote = \"why\"\n\n[[root]]\npath = \"d::e\"\n",
    )
    .expect("valid config");
    assert_eq!(roots.len(), 2);
    assert_eq!(roots[0].path, "a::b::c");
    assert!(parse_hotpaths("[[root]]\npath = \"\"\n").is_err());
    assert!(parse_hotpaths("[[root]]\nmystery = true\n").is_err());
}

// --- the consolidated unwrap rule ---------------------------------------

#[test]
fn unwrap_rule_strips_cfg_test_modules() {
    let src = "pub fn lib_code() { x.unwrap(); }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   fn t() { y.unwrap(); }\n\
               }\n";
    let f = check_unwrap(src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 1);
}
