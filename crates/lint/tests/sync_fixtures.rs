//! Fixture corpus for the lock-discipline & atomics-protocol analyzer
//! (DESIGN.md §16).
//!
//! Each case is a small source snippet with a known-positive or
//! known-negative outcome per rule, checked against golden findings
//! (rule, detail, witness chain, baseline key) through the public
//! pipeline `lint-sync` runs: `parse_file` → `CallGraph::build` →
//! `syncgraph::analyze` / `atomics::analyze_atomics` →
//! `Baseline::drift`. Every seeded defect has a clean twin proving the
//! rule keys on the defect, not on the construct.

use dagfact_lint::atomics::{analyze_atomics, AtomReport};
use dagfact_lint::baseline::Baseline;
use dagfact_lint::callgraph::CallGraph;
use dagfact_lint::parse::parse_file;
use dagfact_lint::syncgraph::{analyze, FnCtx, SyncFinding, SyncReport, SyncRule};
use std::rc::Rc;

/// Run both passes over a set of `(module, source)` fixture files, the
/// same way the `lint-sync` driver does.
fn run(files: &[(&str, &str)]) -> (SyncReport, AtomReport) {
    let parsed: Vec<_> = files
        .iter()
        .map(|(module, src)| parse_file(src, module))
        .collect();
    let mut meta: Vec<FnCtx> = Vec::new();
    for (i, p) in parsed.iter().enumerate() {
        let tokens = Rc::new(p.tokens.clone());
        let comments = Rc::new(p.comments.clone());
        for _ in &p.functions {
            meta.push(FnCtx {
                file: format!("fixture{i}.rs"),
                tokens: tokens.clone(),
                comments: comments.clone(),
            });
        }
    }
    let g = CallGraph::build(parsed);
    let ctx = |i: usize| meta[i].clone();
    (analyze(&g, &ctx), analyze_atomics(&g, &ctx))
}

fn golden(findings: &[SyncFinding]) -> Vec<(SyncRule, String)> {
    findings
        .iter()
        .map(|f| (f.rule, f.detail.clone()))
        .collect()
}

// --- lock-order cycles ---------------------------------------------------

#[test]
fn seeded_two_lock_cycle_is_a_deadlock_witness() {
    let (r, _) = run(&[(
        "fx::dead",
        "impl S {\n\
         \x20 fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
         \x20 fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
         }",
    )]);
    assert_eq!(r.sites.len(), 4);
    assert_eq!(r.edges.len(), 2);
    assert_eq!(
        golden(&r.findings),
        vec![(
            SyncRule::LockCycle,
            "lock-order cycle: S.a <-> S.b".to_string()
        )]
    );
    // The witness chain names both edges with their source locations.
    let f = &r.findings[0];
    assert_eq!(f.chain.len(), 2);
    assert!(f.chain[0].starts_with("S.a -> S.b in fx::dead::S::ab"), "{:?}", f.chain);
    assert!(f.chain[1].starts_with("S.b -> S.a in fx::dead::S::ba"), "{:?}", f.chain);
    // Baseline keys are line-free and stable.
    assert_eq!(
        f.key(),
        "lock-cycle|fx::dead::S::ab|lock-order cycle: S.a <-> S.b"
    );
}

#[test]
fn consistent_lock_order_clean_twin() {
    let (r, _) = run(&[(
        "fx::dead",
        "impl S {\n\
         \x20 fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
         \x20 fn ab2(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
         }",
    )]);
    // Same order everywhere: the graph has edges but no cycle.
    assert_eq!(r.edges.len(), 2);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn cross_file_cycle_is_found_through_the_whole_graph() {
    let (r, _) = run(&[
        (
            "fx::east",
            "impl S { fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); } }",
        ),
        (
            "fx::west",
            "impl S { fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); } }",
        ),
    ]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, SyncRule::LockCycle);
    assert_eq!(r.findings[0].detail, "lock-order cycle: S.a <-> S.b");
}

// --- guards across blocking calls ----------------------------------------

#[test]
fn seeded_guard_across_recv_with_golden_key() {
    let (r, _) = run(&[(
        "fx::chan",
        "impl S { fn pump(&self) { let g = self.state.lock(); let m = self.rx.recv(); } }",
    )]);
    assert_eq!(
        golden(&r.findings),
        vec![(
            SyncRule::HeldBlocking,
            "guard `S.state` held across .recv()".to_string()
        )]
    );
    assert_eq!(
        r.findings[0].key(),
        "held-across-blocking|fx::chan::S::pump|guard `S.state` held across .recv()"
    );
    assert_eq!(r.findings[0].chain, vec!["fx::chan::S::pump".to_string()]);
}

#[test]
fn guard_released_before_recv_clean_twin() {
    let (r, _) = run(&[(
        "fx::chan",
        "impl S { fn pump(&self) { { let g = self.state.lock(); } let m = self.rx.recv(); } \
         fn pump2(&self) { let g = self.state.lock(); drop(g); let m = self.rx.recv(); } }",
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn guard_across_blocking_callee_carries_witness_chain() {
    let (r, _) = run(&[(
        "fx::deep",
        "impl S {\n\
         \x20 fn outer(&self) { let g = self.state.lock(); self.drain_inbox(); }\n\
         \x20 fn drain_inbox(&self) { self.relay(); }\n\
         \x20 fn relay(&self) { let m = self.rx.recv(); }\n\
         }",
    )]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, SyncRule::HeldBlocking);
    assert_eq!(
        f.detail,
        "guard `S.state` held across .recv() in `fx::deep::S::relay`"
    );
    // Witness chain: the holder, then the BFS path to the blocking call.
    assert_eq!(
        f.chain,
        vec![
            "fx::deep::S::outer".to_string(),
            "fx::deep::S::drain_inbox".to_string(),
            "fx::deep::S::relay".to_string(),
        ]
    );
}

#[test]
fn guard_across_alloc_heavy_callee_is_flagged_with_clean_twin() {
    let heavy = "fn expand() { let mut v = Vec::with_capacity(9); v.push(1); let w = v.clone(); }";
    let (r, _) = run(&[(
        "fx::alloc",
        &format!(
            "impl S {{ fn f(&self) {{ let g = self.state.lock(); expand(); }} }} {heavy}"
        ),
    )]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, SyncRule::HeldAlloc);
    assert_eq!(
        r.findings[0].detail,
        "guard `S.state` held across alloc-heavy callee `fx::alloc::expand` (3 alloc sites)"
    );
    // Clean twin: same callee invoked after the guard is gone.
    let (r, _) = run(&[(
        "fx::alloc",
        &format!(
            "impl S {{ fn f(&self) {{ {{ let g = self.state.lock(); }} expand(); }} }} {heavy}"
        ),
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn condvar_wait_consuming_its_own_guard_is_sanctioned() {
    let (r, _) = run(&[(
        "fx::cv",
        "impl S { fn park(&self) { let mut q = self.queue.lock(); \
         q = self.cond.wait(q); } }",
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

// --- atomics pairing -----------------------------------------------------

#[test]
fn seeded_unpaired_release_store_with_site_chain() {
    let (_, a) = run(&[(
        "fx::atom",
        "impl S { fn publish(&self) { self.flag.store(true, Ordering::Release); } }",
    )]);
    assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
    let f = &a.findings[0];
    assert_eq!(f.rule, SyncRule::UnpairedRelease);
    assert_eq!(f.detail, "`S.flag` has Release-side writes but no Acquire load");
    assert_eq!(
        f.key(),
        "unpaired-release|fx::atom::S::publish|`S.flag` has Release-side writes but no Acquire load"
    );
    assert_eq!(
        f.chain,
        vec!["store(Release) in fx::atom::S::publish (fixture0.rs:1)".to_string()]
    );
}

#[test]
fn paired_release_acquire_clean_twin() {
    let (_, a) = run(&[(
        "fx::atom",
        "impl S { fn publish(&self) { self.flag.store(true, Ordering::Release); } \
         fn observe(&self) -> bool { self.flag.load(Ordering::Acquire) } }",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert_eq!(a.sites.len(), 2);
}

#[test]
fn unpaired_acquire_load_is_the_mirror_defect() {
    let (_, a) = run(&[(
        "fx::atom",
        "impl S { fn observe(&self) -> bool { self.flag.load(Ordering::Acquire) } }",
    )]);
    assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
    assert_eq!(a.findings[0].rule, SyncRule::UnpairedAcquire);
    assert_eq!(
        a.findings[0].detail,
        "`S.flag` has Acquire loads but no Release-side write"
    );
}

#[test]
fn seeded_mismarked_relaxed_and_ordering_note_twin() {
    // Relaxed with no written-down reason: flagged.
    let (_, a) = run(&[(
        "fx::atom",
        "impl S { fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); } }",
    )]);
    assert_eq!(
        golden(&a.findings),
        vec![(
            SyncRule::UnjustifiedRelaxed,
            "`S.hits` fetch_add(Relaxed) without an ORDERING: note".to_string()
        )]
    );
    // Twin: the note within the marker window suppresses it.
    let (_, a) = run(&[(
        "fx::atom",
        "impl S { fn bump(&self) {\n\
         \x20 // ORDERING: statistics counter; no memory is published.\n\
         \x20 self.hits.fetch_add(1, Ordering::Relaxed); } }",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn cx_failure_ordering_stronger_than_success_load_is_flagged() {
    let (_, a) = run(&[(
        "fx::atom",
        "impl S { fn claim(&self) { \
         let _ = self.owner.compare_exchange(0, 1, Ordering::AcqRel, Ordering::SeqCst); \
         self.owner.store(0, Ordering::Release); } }",
    )]);
    assert!(
        a.findings.iter().any(|f| f.rule == SyncRule::CxFailureOrdering
            && f.detail
                == "`S.owner` compare_exchange failure ordering SeqCst is stronger than the \
                    success load (AcqRel)"),
        "{:?}",
        a.findings
    );
    // Twin: failure no stronger than the success ordering's load side.
    let (_, a) = run(&[(
        "fx::atom",
        "impl S { fn claim(&self) { \
         let _ = self.owner.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); \
         self.owner.store(0, Ordering::Release); } }",
    )]);
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

// --- baseline drift ------------------------------------------------------

#[test]
fn baseline_gate_fails_drift_in_both_directions() {
    let (r, _) = run(&[(
        "fx::chan",
        "impl S { fn pump(&self) { let g = self.state.lock(); let m = self.rx.recv(); } }",
    )]);
    let keys: Vec<String> = r.findings.iter().map(SyncFinding::key).collect();
    assert_eq!(keys.len(), 1);

    // Exact baseline: clean.
    let b = Baseline::from_json(&format!("{{\"version\":1,\"keys\":[\"{}\"]}}", keys[0]))
        .expect("baseline parses");
    assert!(b.drift(keys.iter().map(String::as_str)).is_clean());

    // Empty baseline: the finding is NEW and fails the gate.
    let empty = Baseline::from_json("{\"version\":1,\"keys\":[]}").expect("parses");
    let d = empty.drift(keys.iter().map(String::as_str));
    assert_eq!(d.new, keys);
    assert!(d.stale.is_empty());

    // Baseline with an extra key: STALE (burn-down win) also drifts.
    let stale = Baseline::from_json(&format!(
        "{{\"version\":1,\"keys\":[\"{}\",\"lock-cycle|gone::fn|lock-order cycle: A <-> B\"]}}",
        keys[0]
    ))
    .expect("parses");
    let d = stale.drift(keys.iter().map(String::as_str));
    assert!(d.new.is_empty());
    assert_eq!(
        d.stale,
        vec!["lock-cycle|gone::fn|lock-order cycle: A <-> B".to_string()]
    );
}
