//! Source-level concurrency lints for the dagfact workspace.
//!
//! Three rules, all line-based heuristics tuned to this repo's layout
//! (the test module, when present, is the last item of a file):
//!
//! 1. **SAFETY contract** — every line with an `unsafe` token (block,
//!    `unsafe impl`, `unsafe fn`) must have a `// SAFETY:` comment (or a
//!    `# Safety` doc section, for declarations) on the same line or
//!    within the preceding [`WINDOW`] lines. The comment is the proof
//!    obligation: it names the invariant and the verifier upholding it.
//! 2. **Relaxed justification** — every `Ordering::Relaxed` in non-test
//!    code must carry a `// ORDERING:` comment in the same window
//!    explaining why no happens-before edge is needed.
//! 3. **Sync-shim bypass** — non-test runtime code must not
//!    `use std::sync` directly: everything goes through `crate::sync`
//!    so the `--cfg loom` model backend sees every operation. The shim
//!    itself and the model checker are exempt.
//!
//! The rules run as the `lint-safety` binary (wired into `make
//! lint-strict` / `make check`) and are unit-tested here.

pub mod atomics;
pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod hotpath;
pub mod lex;
pub mod parse;
pub mod syncgraph;
pub mod unwrap;

use std::fmt;

/// How many preceding lines a justifying comment may sit above the
/// construct it justifies (multi-line comments push the marker up).
pub const WINDOW: usize = 12;

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without an adjacent `// SAFETY:` / `# Safety` contract.
    MissingSafety,
    /// `Ordering::Relaxed` without an adjacent `// ORDERING:` note.
    UnjustifiedRelaxed,
    /// Direct `use std::sync` where `crate::sync` is required.
    SyncShimBypass,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::MissingSafety => write!(f, "unsafe without a SAFETY contract"),
            Rule::UnjustifiedRelaxed => {
                write!(f, "Ordering::Relaxed without an ORDERING justification")
            }
            Rule::SyncShimBypass => {
                write!(f, "direct `use std::sync` bypasses the crate::sync shim")
            }
        }
    }
}

/// One rule violation at one line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The offending line, trimmed.
    pub excerpt: String,
}

/// Per-file rule selection.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Enforce the ORDERING rule (non-test library code only).
    pub check_ordering: bool,
    /// Enforce the shim rule (rt library code only).
    pub check_shim: bool,
}

impl Options {
    /// All rules (rt library sources).
    pub fn rt_lib() -> Options {
        Options {
            check_ordering: true,
            check_shim: true,
        }
    }

    /// SAFETY + ORDERING (non-rt library sources).
    pub fn lib() -> Options {
        Options {
            check_ordering: true,
            check_shim: false,
        }
    }

    /// SAFETY only (tests, examples, benches).
    pub fn tests() -> Options {
        Options {
            check_ordering: false,
            check_shim: false,
        }
    }
}

/// The code part of a line: everything before a `//` comment, with
/// doc/comment-only lines reduced to the empty string.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// Does `code` contain `unsafe` as a standalone token (not as part of an
/// identifier like `unsafe_op_in_unsafe_fn`)?
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let before_ok = start == 0 || {
            let c = bytes[start - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let after_ok = end == code.len() || {
            let c = bytes[end] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Is any line in `lines[lo..=hi]` a justifying marker for `needle`?
fn window_has(lines: &[&str], hi: usize, needle: &str) -> bool {
    let lo = hi.saturating_sub(WINDOW);
    lines[lo..=hi].iter().any(|l| l.contains(needle))
}

/// First line (0-based) of the trailing test module, if any — the first
/// `#[cfg(test)]` / `#[cfg(all(test, …))]` attribute. Valid for this
/// repo's layout, where the test module is the last item of a file.
fn test_boundary(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test")
        })
        .unwrap_or(lines.len())
}

/// Run the enabled rules over one file's source.
pub fn check_source(src: &str, opts: Options) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let boundary = test_boundary(&lines);
    let mut findings = Vec::new();

    for (i, &line) in lines.iter().enumerate() {
        let code = code_part(line);

        // Rule 1: SAFETY contracts (everywhere, tests included — test
        // unsafe is still unsafe).
        if has_unsafe_token(code)
            && !window_has(&lines, i, "SAFETY:")
            && !window_has(&lines, i, "# Safety")
        {
            findings.push(Finding {
                line: i + 1,
                rule: Rule::MissingSafety,
                excerpt: line.trim().to_string(),
            });
        }

        if i >= boundary {
            continue;
        }

        // Rule 2: Relaxed needs a written-down reason.
        if opts.check_ordering
            && code.contains("Ordering::Relaxed")
            && !window_has(&lines, i, "ORDERING:")
        {
            findings.push(Finding {
                line: i + 1,
                rule: Rule::UnjustifiedRelaxed,
                excerpt: line.trim().to_string(),
            });
        }

        // Rule 3: the runtime synchronizes through the shim only.
        if opts.check_shim && code.trim_start().starts_with("use std::sync") {
            findings.push(Finding {
                line: i + 1,
                rule: Rule::SyncShimBypass,
                excerpt: line.trim().to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commented_unsafe_passes() {
        let src = "// SAFETY: stripes are disjoint.\nlet s = unsafe { x.slice_mut() };\n";
        assert!(check_source(src, Options::rt_lib()).is_empty());
    }

    #[test]
    fn bare_unsafe_is_flagged() {
        let src = "let s = unsafe { x.slice_mut() };\n";
        let f = check_source(src, Options::rt_lib());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::MissingSafety);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn multi_line_safety_comment_within_window_passes() {
        let mut src = String::from("// SAFETY: a long argument\n");
        for _ in 0..(WINDOW - 2) {
            src.push_str("// continued\n");
        }
        src.push_str("unsafe impl Sync for T {}\n");
        assert!(check_source(&src, Options::rt_lib()).is_empty());
    }

    #[test]
    fn safety_comment_outside_window_is_flagged() {
        let mut src = String::from("// SAFETY: too far away\n");
        for _ in 0..(WINDOW + 3) {
            src.push_str("let x = 1;\n");
        }
        src.push_str("unsafe impl Sync for T {}\n");
        let f = check_source(&src, Options::rt_lib());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::MissingSafety);
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn_decl() {
        let src = "/// # Safety\n/// Caller must own the range.\npub unsafe fn slice(&self) {}\n";
        assert!(check_source(src, Options::rt_lib()).is_empty());
    }

    #[test]
    fn unsafe_in_comment_or_identifier_is_not_flagged() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n// this mentions unsafe aliasing\n";
        assert!(check_source(src, Options::rt_lib()).is_empty());
    }

    #[test]
    fn relaxed_without_note_is_flagged_in_lib_only() {
        let src = "a.load(Ordering::Relaxed);\n#[cfg(test)]\nmod tests {\n  // b\n  fn t() { a.load(Ordering::Relaxed); }\n}\n";
        let f = check_source(src, Options::rt_lib());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UnjustifiedRelaxed);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn relaxed_with_note_passes() {
        let src = "// ORDERING: stats counter.\na.load(Ordering::Relaxed);\n";
        assert!(check_source(src, Options::rt_lib()).is_empty());
    }

    #[test]
    fn std_sync_import_is_flagged_only_with_shim_rule() {
        let src = "use std::sync::Arc;\n";
        let f = check_source(src, Options::rt_lib());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::SyncShimBypass);
        assert!(check_source(src, Options::lib()).is_empty());
    }

    #[test]
    fn std_sync_import_in_tests_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::sync::Arc;\n}\n";
        assert!(check_source(src, Options::rt_lib()).is_empty());
    }

    #[test]
    fn tests_options_still_enforce_safety() {
        let src = "let s = unsafe { x.slice() };\n";
        let f = check_source(src, Options::tests());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::MissingSafety);
    }
}
