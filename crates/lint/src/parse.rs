//! Item-level parser for the hot-path analyzer.
//!
//! Walks the token stream of one file and extracts what the call-graph
//! and the purity rules need — nothing more:
//!
//! * the module tree (inline `mod x { … }`; file modules come from the
//!   file's path, supplied by the workspace scanner);
//! * `use` imports, per module, for call-path resolution;
//! * every function (free, `impl` method, trait default method) with the
//!   *events* in its body: path calls, method calls, macro invocations
//!   and index expressions;
//! * the comments (via [`crate::lex`]) so rules can check justification
//!   markers (`// BOUNDS:`, `// ALLOC:`, …) near an event.
//!
//! `#[cfg(test)]` / `#[cfg(all(test, …))]` items are skipped entirely —
//! test code is allowed to allocate, lock and panic.

use crate::lex::{lex, Comment, Tok, Token};
use std::collections::HashMap;

/// Something a function body does that the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `path::to::f(…)` (also `f(…)`, `Type::assoc(…)`, `Self::f(…)`).
    Call {
        /// The path segments as written.
        path: Vec<String>,
        /// 1-based source line.
        line: usize,
    },
    /// `.name(…)` method call.
    Method {
        /// Method name.
        name: String,
        /// 1-based source line.
        line: usize,
    },
    /// `name!(…)` macro invocation (contents are *not* descended into).
    Macro {
        /// Macro name (first path segment).
        name: String,
        /// 1-based source line.
        line: usize,
    },
    /// `expr[…]` index/slice expression.
    Index {
        /// 1-based source line.
        line: usize,
    },
}

impl Event {
    /// The event's source line.
    pub fn line(&self) -> usize {
        match self {
            Event::Call { line, .. }
            | Event::Method { line, .. }
            | Event::Macro { line, .. }
            | Event::Index { line } => *line,
        }
    }
}

/// One parsed function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Fully qualified name: `crate::mod::f` or `crate::mod::Type::f`.
    pub qname: String,
    /// Module path (`crate::mod`).
    pub module: String,
    /// `impl`/`trait` type context, if any.
    pub self_type: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body events, in order.
    pub events: Vec<Event>,
    /// Half-open token range of the body (inside the braces) into the
    /// owning [`ParsedFile::tokens`] stream. `(0, 0)` for bodyless fns.
    pub body: (usize, usize),
    /// Half-open token range of the signature (from just after the name
    /// to the opening body brace). `(0, 0)` for bodyless fns.
    pub sig: (usize, usize),
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All non-test functions.
    pub functions: Vec<Function>,
    /// Per-module import map: alias → full path segments.
    pub imports: HashMap<String, HashMap<String, Vec<String>>>,
    /// All comments (for marker-window checks).
    pub comments: Vec<Comment>,
    /// The file's full token stream ([`Function::body`] indexes into it).
    pub tokens: Vec<Token>,
}

/// Keywords that must not be mistaken for a call head in expressions.
/// (`crate`, `super`, `self`, `Self` are deliberately absent — they are
/// legitimate path heads and must flow into call paths.)
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "in",
    "as", "where", "unsafe", "async", "move", "mut", "ref", "dyn", "impl", "fn", "pub", "use",
    "mod", "struct", "enum", "trait", "const", "static", "type", "box", "true",
    "false", "await", "yield", "extern",
];

/// Is `s` an expression-position keyword (never a call head)?
pub(crate) fn is_expr_keyword(s: &str) -> bool {
    EXPR_KEYWORDS.contains(&s)
}

/// Parse one file. `module` is the file's module path derived from its
/// location (e.g. `dagfact_rt::native`).
pub fn parse_file(src: &str, module: &str) -> ParsedFile {
    let lexed = lex(src);
    let mut out = ParsedFile {
        comments: lexed.comments,
        ..Default::default()
    };
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
    };
    p.items(module, None, &mut out);
    out.tokens = lexed.tokens;
    out
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn is_punct(&self, off: usize, c: char) -> bool {
        matches!(self.peek(off), Some(Tok::Punct(p)) if *p == c)
    }

    fn ident_at(&self, off: usize) -> Option<&str> {
        match self.peek(off) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Skip a balanced delimiter group starting at the current token
    /// (which must be an opener); leaves the cursor one past the closer.
    fn skip_group(&mut self, open: char, close: char) {
        debug_assert!(self.is_punct(0, open));
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            if self.is_punct(0, open) {
                depth += 1;
            } else if self.is_punct(0, close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skip a balanced `<…>` generic-argument group (cursor on `<`).
    /// `->` inside (fn-pointer types) is handled by skipping the `-`
    /// before testing `>`.
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            if self.is_punct(0, '-') && self.is_punct(1, '>') {
                self.bump();
                self.bump();
                continue;
            }
            if self.is_punct(0, '<') {
                depth += 1;
            } else if self.is_punct(0, '>') {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Parse an attribute starting at `#`; returns true when it is a
    /// `cfg(test)` / `cfg(all(test, …))` attribute.
    fn attribute_is_cfg_test(&mut self) -> bool {
        self.bump(); // '#'
        if self.is_punct(0, '!') {
            self.bump();
        }
        if !self.is_punct(0, '[') {
            return false;
        }
        // Collect the idents of the attribute for a shape check.
        let start = self.pos;
        self.skip_group('[', ']');
        let toks = &self.toks[start..self.pos];
        let mut idents = toks.iter().filter_map(|t| match &t.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        });
        match idents.next() {
            Some("cfg") => {}
            _ => return false,
        }
        matches!(idents.next(), Some("test")) || {
            // cfg(all(test, …))
            let mut idents = toks.iter().filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            });
            idents.next(); // cfg
            matches!(
                (idents.next(), idents.next()),
                (Some("all"), Some("test"))
            )
        }
    }

    /// Parse items until the end of the slice or an unmatched `}`.
    fn items(&mut self, module: &str, self_type: Option<&str>, out: &mut ParsedFile) {
        let mut cfg_test = false;
        while self.pos < self.toks.len() {
            match self.peek(0) {
                Some(Tok::Punct('#')) => {
                    cfg_test |= self.attribute_is_cfg_test();
                }
                Some(Tok::Punct('}')) => {
                    self.bump();
                    return;
                }
                Some(Tok::Punct('{')) => {
                    // Stray block at item level (e.g. const body we did
                    // not skip precisely) — skip balanced.
                    self.skip_group('{', '}');
                    cfg_test = false;
                }
                Some(Tok::Ident(word)) => {
                    let word = word.clone();
                    match word.as_str() {
                        "mod" => {
                            self.bump();
                            let name = self.ident_at(0).unwrap_or("").to_string();
                            self.bump();
                            if self.is_punct(0, ';') {
                                self.bump(); // file module: path-derived
                            } else if self.is_punct(0, '{') {
                                if cfg_test {
                                    self.skip_group('{', '}');
                                } else {
                                    self.bump(); // '{'
                                    let sub = format!("{module}::{name}");
                                    self.items(&sub, None, out);
                                }
                            }
                            cfg_test = false;
                        }
                        "use" => {
                            self.bump();
                            if !cfg_test {
                                self.parse_use(module, out);
                            } else {
                                self.skip_to_semi();
                            }
                            cfg_test = false;
                        }
                        "fn" => {
                            if cfg_test {
                                self.skip_fn(true);
                            } else {
                                self.parse_fn(module, self_type, out);
                            }
                            cfg_test = false;
                        }
                        "impl" => {
                            self.bump();
                            if self.is_punct(0, '<') {
                                self.skip_angles();
                            }
                            // Read the head up to `{`; if a `for` appears
                            // the type is what follows it.
                            let mut ty = String::new();
                            let mut after_for = false;
                            while self.pos < self.toks.len() && !self.is_punct(0, '{') {
                                match self.peek(0) {
                                    Some(Tok::Ident(s)) if s == "for" => {
                                        after_for = true;
                                        ty.clear();
                                        self.bump();
                                    }
                                    Some(Tok::Ident(s)) if s == "where" => {
                                        // where-clause: skip to '{'.
                                        while self.pos < self.toks.len()
                                            && !self.is_punct(0, '{')
                                        {
                                            if self.is_punct(0, '<') {
                                                self.skip_angles();
                                            } else {
                                                self.bump();
                                            }
                                        }
                                        break;
                                    }
                                    Some(Tok::Ident(s)) => {
                                        // Last path segment wins (strip
                                        // the module qualifier).
                                        ty = s.clone();
                                        self.bump();
                                    }
                                    Some(Tok::Punct('<')) => self.skip_angles(),
                                    _ => self.bump(),
                                }
                            }
                            let _ = after_for;
                            if self.is_punct(0, '{') {
                                if cfg_test {
                                    self.skip_group('{', '}');
                                } else {
                                    self.bump();
                                    let st = if ty.is_empty() { None } else { Some(ty) };
                                    self.items(module, st.as_deref(), out);
                                }
                            }
                            cfg_test = false;
                        }
                        "trait" => {
                            self.bump();
                            let name = self.ident_at(0).unwrap_or("").to_string();
                            // Skip to the body brace.
                            while self.pos < self.toks.len() && !self.is_punct(0, '{') {
                                if self.is_punct(0, '<') {
                                    self.skip_angles();
                                } else if self.is_punct(0, ';') {
                                    break; // trait alias
                                } else {
                                    self.bump();
                                }
                            }
                            if self.is_punct(0, '{') {
                                if cfg_test {
                                    self.skip_group('{', '}');
                                } else {
                                    self.bump();
                                    self.items(module, Some(&name), out);
                                }
                            }
                            cfg_test = false;
                        }
                        "struct" | "enum" | "union" | "static" | "const" | "type" => {
                            self.bump();
                            self.skip_item_tail();
                            cfg_test = false;
                        }
                        "macro_rules" => {
                            self.bump(); // macro_rules
                            if self.is_punct(0, '!') {
                                self.bump();
                            }
                            if self.ident_at(0).is_some() {
                                self.bump();
                            }
                            if self.is_punct(0, '{') {
                                self.skip_group('{', '}');
                            }
                            cfg_test = false;
                        }
                        _ => self.bump(), // pub, unsafe, async, extern, …
                    }
                }
                _ => self.bump(),
            }
        }
    }

    fn skip_to_semi(&mut self) {
        while self.pos < self.toks.len() && !self.is_punct(0, ';') {
            if self.is_punct(0, '{') {
                self.skip_group('{', '}');
                return;
            }
            self.bump();
        }
        self.bump();
    }

    /// Skip an item body: either `… ;` or `… { … }` (whichever first).
    fn skip_item_tail(&mut self) {
        while self.pos < self.toks.len() {
            if self.is_punct(0, ';') {
                self.bump();
                return;
            }
            if self.is_punct(0, '{') {
                self.skip_group('{', '}');
                // struct Foo { … } has no trailing `;`.
                return;
            }
            if self.is_punct(0, '<') {
                self.skip_angles();
                continue;
            }
            self.bump();
        }
    }

    /// Parse `use …;` recording aliases into the module's import map.
    fn parse_use(&mut self, module: &str, out: &mut ParsedFile) {
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(&mut prefix, module, out);
        if self.is_punct(0, ';') {
            self.bump();
        }
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, module: &str, out: &mut ParsedFile) {
        let depth0 = prefix.len();
        loop {
            match self.peek(0) {
                Some(Tok::Ident(s)) if s == "as" => {
                    self.bump();
                    if let Some(alias) = self.ident_at(0).map(str::to_string) {
                        self.bump();
                        out.imports
                            .entry(module.to_string())
                            .or_default()
                            .insert(alias, prefix.clone());
                    }
                    prefix.truncate(depth0);
                }
                Some(Tok::Ident(s)) => {
                    prefix.push(s.clone());
                    self.bump();
                }
                Some(Tok::Punct(':')) if self.is_punct(1, ':') => {
                    self.bump();
                    self.bump();
                    if self.is_punct(0, '{') {
                        self.bump();
                        // Nested group: parse each comma-separated tree.
                        loop {
                            match self.peek(0) {
                                Some(Tok::Punct('}')) => {
                                    self.bump();
                                    break;
                                }
                                Some(Tok::Punct(',')) => self.bump(),
                                None => break,
                                _ => {
                                    let mut sub = prefix.clone();
                                    self.parse_use_tree(&mut sub, module, out);
                                }
                            }
                        }
                        prefix.truncate(depth0);
                        return;
                    }
                    if self.is_punct(0, '*') {
                        self.bump(); // glob: unresolvable, ignore
                        prefix.truncate(depth0);
                        return;
                    }
                }
                _ => break,
            }
        }
        // Leaf: `use a::b::c` imports c; `use a::b::{c}` handled above.
        if prefix.len() > depth0 {
            if let Some(last) = prefix.last().cloned() {
                out.imports
                    .entry(module.to_string())
                    .or_default()
                    .insert(last, prefix.clone());
            }
        }
        prefix.truncate(depth0);
    }

    /// Skip a `fn` item (cursor on `fn`), including its body if any.
    fn skip_fn(&mut self, _cfg_test: bool) {
        self.bump(); // fn
        while self.pos < self.toks.len() {
            if self.is_punct(0, ';') {
                self.bump();
                return;
            }
            if self.is_punct(0, '{') {
                self.skip_group('{', '}');
                return;
            }
            if self.is_punct(0, '<') {
                self.skip_angles();
                continue;
            }
            self.bump();
        }
    }

    /// Parse a `fn` item (cursor on `fn`) and record it.
    fn parse_fn(&mut self, module: &str, self_type: Option<&str>, out: &mut ParsedFile) {
        let line = self.line();
        self.bump(); // fn
        let Some(name) = self.ident_at(0).map(str::to_string) else {
            return;
        };
        self.bump();
        let sig_start = self.pos;
        // Signature: skip to the body `{` or a `;` (trait method decl).
        while self.pos < self.toks.len() {
            if self.is_punct(0, ';') {
                self.bump();
                return; // no body
            }
            if self.is_punct(0, '{') {
                break;
            }
            if self.is_punct(0, '<') {
                self.skip_angles();
                continue;
            }
            if self.is_punct(0, '(') {
                self.skip_group('(', ')');
                continue;
            }
            self.bump();
        }
        if !self.is_punct(0, '{') {
            return;
        }
        // Body: event extraction over the balanced region.
        let body_start = self.pos;
        self.skip_group('{', '}');
        let body_range = (body_start + 1, self.pos.saturating_sub(1));
        let body = &self.toks[body_range.0..body_range.1];
        let events = extract_events(body);
        let qname = match self_type {
            Some(t) => format!("{module}::{t}::{name}"),
            None => format!("{module}::{name}"),
        };
        out.functions.push(Function {
            qname,
            module: module.to_string(),
            self_type: self_type.map(str::to_string),
            name,
            line,
            events,
            body: body_range,
            sig: (sig_start, body_start),
        });
    }
}

/// Extract call/method/macro/index events from a body token slice.
/// Nested items (closures, blocks) contribute to the same event list;
/// macro argument groups are skipped.
fn extract_events(toks: &[Token]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    // Kind of the previous *significant* token, for index detection.
    let mut prev_indexable = false;

    let punct = |t: &Token, c: char| matches!(t.kind, Tok::Punct(p) if p == c);

    while i < n {
        match &toks[i].kind {
            Tok::Punct('#') if i + 1 < n && punct(&toks[i + 1], '[') => {
                // In-body attribute: skip it (and never treat its `[` as
                // an index).
                i += 1;
                let mut depth = 0usize;
                while i < n {
                    if punct(&toks[i], '[') {
                        depth += 1;
                    } else if punct(&toks[i], ']') {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                prev_indexable = false;
            }
            Tok::Punct('.') => {
                // `.name(` or `.name::<…>(` method call; `.await`, field
                // access and tuple indices fall through.
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    let line = toks[i + 1].line;
                    let mut j = i + 2;
                    // Optional turbofish.
                    if j + 2 < n
                        && punct(&toks[j], ':')
                        && punct(&toks[j + 1], ':')
                        && punct(&toks[j + 2], '<')
                    {
                        j += 2;
                        let mut depth = 0usize;
                        while j < n {
                            if punct(&toks[j], '<') {
                                depth += 1;
                            } else if punct(&toks[j], '>') {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    if j < n && punct(&toks[j], '(') {
                        events.push(Event::Method {
                            name: name.clone(),
                            line,
                        });
                    }
                    i += 2;
                    prev_indexable = true; // field access / call result
                    continue;
                }
                i += 1;
                prev_indexable = false;
            }
            Tok::Punct('[') => {
                if prev_indexable {
                    events.push(Event::Index {
                        line: toks[i].line,
                    });
                }
                i += 1;
                prev_indexable = false;
            }
            Tok::Punct(')') | Tok::Punct(']') => {
                i += 1;
                prev_indexable = true;
            }
            Tok::Punct(_) => {
                i += 1;
                prev_indexable = false;
            }
            Tok::Ident(first) => {
                if EXPR_KEYWORDS.contains(&first.as_str()) {
                    i += 1;
                    prev_indexable = false;
                    continue;
                }
                // Collect the `a::b::c` path.
                let line = toks[i].line;
                let mut path = vec![first.clone()];
                let mut j = i + 1;
                loop {
                    if j + 1 < n && punct(&toks[j], ':') && punct(&toks[j + 1], ':') {
                        if let Some(Tok::Ident(seg)) = toks.get(j + 2).map(|t| &t.kind) {
                            path.push(seg.clone());
                            j += 3;
                            continue;
                        }
                        // Turbofish `::<…>`.
                        if j + 2 < n && punct(&toks[j + 2], '<') {
                            j += 2;
                            let mut depth = 0usize;
                            while j < n {
                                if punct(&toks[j], '<') {
                                    depth += 1;
                                } else if punct(&toks[j], '>') {
                                    depth -= 1;
                                    if depth == 0 {
                                        j += 1;
                                        break;
                                    }
                                }
                                j += 1;
                            }
                            continue;
                        }
                    }
                    break;
                }
                if j < n && punct(&toks[j], '!') {
                    // Macro invocation: record and skip the delimiter
                    // group so its contents produce no events.
                    events.push(Event::Macro {
                        name: path[0].clone(),
                        line,
                    });
                    i = j + 1;
                    if i < n {
                        let (open, close) = match toks[i].kind {
                            Tok::Punct('(') => ('(', ')'),
                            Tok::Punct('[') => ('[', ']'),
                            Tok::Punct('{') => ('{', '}'),
                            _ => {
                                prev_indexable = false;
                                continue;
                            }
                        };
                        let mut depth = 0usize;
                        while i < n {
                            if punct(&toks[i], open) {
                                depth += 1;
                            } else if punct(&toks[i], close) {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                    prev_indexable = true;
                    continue;
                }
                if j < n && punct(&toks[j], '(') {
                    events.push(Event::Call { path, line });
                }
                i = j;
                prev_indexable = true;
                continue;
            }
            _ => {
                i += 1;
                prev_indexable = false;
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<Function> {
        parse_file(src, "c::m").functions
    }

    #[test]
    fn free_fn_and_events() {
        let f = fns("pub fn go(x: &[f64]) { helper(x); y.push(1); vec![0; 3]; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].qname, "c::m::go");
        assert!(f[0].events.contains(&Event::Call {
            path: vec!["helper".into()],
            line: 1
        }));
        assert!(f[0].events.contains(&Event::Method {
            name: "push".into(),
            line: 1
        }));
        assert!(f[0].events.contains(&Event::Macro {
            name: "vec".into(),
            line: 1
        }));
    }

    #[test]
    fn impl_methods_are_qualified() {
        let f = fns("struct S; impl S { fn a(&self) { self.b(); } fn b(&self) {} }");
        let names: Vec<&str> = f.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, vec!["c::m::S::a", "c::m::S::b"]);
        assert_eq!(f[0].self_type.as_deref(), Some("S"));
    }

    #[test]
    fn trait_impl_uses_self_type_not_trait() {
        let f = fns("impl Display for Wide { fn fmt(&self) { inner(); } }");
        assert_eq!(f[0].qname, "c::m::Wide::fmt");
    }

    #[test]
    fn generic_impl_block() {
        let f = fns("impl<T: Scalar> Panel<T> { fn width(&self) -> usize { self.n } }");
        assert_eq!(f[0].qname, "c::m::Panel::width");
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let f = fns(
            "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { x.unwrap(); } }\n\
             #[cfg(all(test, not(loom)))]\nmod t2 { fn dead2() {} }\nfn live2() {}",
        );
        let names: Vec<&str> = f.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live", "live2"]);
    }

    #[test]
    fn inline_modules_extend_the_path() {
        let f = fns("mod inner { pub fn f() {} mod deep { pub fn g() {} } }");
        let names: Vec<&str> = f.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, vec!["c::m::inner::f", "c::m::inner::deep::g"]);
    }

    #[test]
    fn use_imports_are_recorded() {
        let p = parse_file(
            "use crate::shared::release_pending;\nuse std::collections::{BinaryHeap, VecDeque};\nuse a::b as c;",
            "c::m",
        );
        let im = &p.imports["c::m"];
        assert_eq!(
            im["release_pending"],
            vec!["crate", "shared", "release_pending"]
        );
        assert_eq!(im["BinaryHeap"], vec!["std", "collections", "BinaryHeap"]);
        assert_eq!(im["c"], vec!["a", "b"]);
    }

    #[test]
    fn qualified_calls_and_turbofish() {
        let f = fns("fn f() { Vec::<u8>::with_capacity(4); x.collect::<Vec<_>>(); crate::a::b(1); }");
        let calls: Vec<Vec<String>> = f[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { path, .. } => Some(path.clone()),
                _ => None,
            })
            .collect();
        assert!(calls.contains(&vec!["Vec".into(), "with_capacity".into()]));
        assert!(calls.contains(&vec!["crate".into(), "a".into(), "b".into()]));
        assert!(f[0].events.contains(&Event::Method {
            name: "collect".into(),
            line: 1
        }));
    }

    #[test]
    fn indexing_detected_only_in_expression_position() {
        let f = fns("fn f(a: &[u8], m: [u8; 4]) { let x = a[0]; let y = [1, 2]; let z = m[1]; foo(a)[2]; }");
        let idx = f[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Index { .. }))
            .count();
        assert_eq!(idx, 3, "a[0], m[1], foo(a)[2] — not the array literal");
    }

    #[test]
    fn macro_args_do_not_produce_events() {
        let f = fns("fn f() { assert!(a[0] == b.clone()); }");
        assert_eq!(
            f[0].events,
            vec![Event::Macro {
                name: "assert".into(),
                line: 1
            }]
        );
    }

    #[test]
    fn closures_attribute_to_enclosing_fn() {
        let f = fns("fn f() { let c = |x| inner(x); c(3); }");
        assert!(f[0].events.iter().any(
            |e| matches!(e, Event::Call { path, .. } if path == &vec!["inner".to_string()])
        ));
    }

    #[test]
    fn struct_literal_is_not_a_call() {
        let f = fns("fn f() { let e = Entry { priority: 1.0, task: t }; }");
        assert!(f[0]
            .events
            .iter()
            .all(|e| !matches!(e, Event::Call { .. })));
    }

    #[test]
    fn trait_default_methods_are_parsed() {
        let f = fns("trait P { fn n(&self) -> usize; fn d(&self) { self.n(); } }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].qname, "c::m::P::d");
    }
}
