//! Hot-path purity rules.
//!
//! Given a call graph and the set of functions reachable from the
//! declared hot roots, judge every event in every reachable function
//! against the purity rules:
//!
//! | rule    | trigger                                                | justification marker |
//! |---------|--------------------------------------------------------|----------------------|
//! | alloc   | `Vec::new`, `.push(…)`, `.collect()`, `vec!`, `clone`… | `// ALLOC:` / `// HOT:` |
//! | lock    | `.lock()`, `.read()`, `.write()`, `.wait(…)`           | `// LOCK:` / `// HOT:` |
//! | panic   | `.unwrap()`, `.expect(…)`, `panic!`, `assert!`         | none — fix or baseline |
//! | index   | `a[i]` slice/array indexing                            | `// BOUNDS:`         |
//! | io      | `println!`, `File::open`, `thread::sleep`, …           | `// IO:` / `// HOT:` |
//! | trace   | recorder-only tracing methods (`merge_lane`, `now_ns`…)| `// TRACE:` / `// HOT:` |
//!
//! A marker must appear on the event's line or within the preceding
//! [`crate::WINDOW`] lines (same convention as the SAFETY lint). The
//! `panic` rule accepts no marker at all: an implicit panic site on the
//! hot path is either fixed or carried in the baseline as debt.
//! `debug_assert!` family is exempt — it compiles out of release builds.
//!
//! Known approximations (documented, deliberate):
//! * Macro bodies are not descended into — a `vec!` *inside* another
//!   macro's arguments is invisible. The workspace's hot code does not
//!   hide allocations in macros.
//! * `.record(…)` / `.now(…)` are Lane methods that are themselves the
//!   sanctioned single detached-check branch, so the trace rule flags
//!   only `TraceRecorder`-unique names.

use crate::callgraph::CallGraph;
use crate::lex::Comment;
use crate::parse::Event;
use crate::WINDOW;
use std::collections::HashMap;
use std::fmt;

/// Which purity rule a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HotRule {
    /// Heap allocation on the hot path.
    Alloc,
    /// Lock acquisition on the hot path.
    Lock,
    /// Implicit panic site (unwrap/expect/panic-family macro).
    Panic,
    /// Slice/array indexing without a `// BOUNDS:` contract.
    Index,
    /// Blocking or console I/O.
    Io,
    /// Tracing call outside the sanctioned detached-check wrappers.
    Trace,
}

impl HotRule {
    /// Stable lowercase key used in JSON and baseline files.
    pub fn key(self) -> &'static str {
        match self {
            HotRule::Alloc => "alloc",
            HotRule::Lock => "lock",
            HotRule::Panic => "panic",
            HotRule::Index => "index",
            HotRule::Io => "io",
            HotRule::Trace => "trace",
        }
    }

    /// Parse a baseline key back into a rule.
    pub fn from_key(s: &str) -> Option<HotRule> {
        Some(match s {
            "alloc" => HotRule::Alloc,
            "lock" => HotRule::Lock,
            "panic" => HotRule::Panic,
            "index" => HotRule::Index,
            "io" => HotRule::Io,
            "trace" => HotRule::Trace,
            _ => return None,
        })
    }

    /// The marker comment that justifies this rule, if any.
    fn markers(self) -> &'static [&'static str] {
        match self {
            HotRule::Alloc => &["ALLOC:", "HOT:"],
            HotRule::Lock => &["LOCK:", "HOT:"],
            HotRule::Panic => &[],
            HotRule::Index => &["BOUNDS:"],
            HotRule::Io => &["IO:", "HOT:"],
            HotRule::Trace => &["TRACE:", "HOT:"],
        }
    }
}

impl fmt::Display for HotRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One hot-path purity violation.
#[derive(Debug, Clone)]
pub struct HotFinding {
    /// The violated rule.
    pub rule: HotRule,
    /// File the offending function lives in.
    pub file: String,
    /// 1-based line of the offending event.
    pub line: usize,
    /// Qualified name of the offending function.
    pub function: String,
    /// What was seen (`Vec::with_capacity`, `.lock()`, `vec!`, …).
    pub detail: String,
    /// Witness chain from a hot root to the offending function.
    pub chain: Vec<String>,
}

impl HotFinding {
    /// Stable baseline key. Line numbers are deliberately excluded so
    /// unrelated edits above a grandfathered finding don't churn the
    /// baseline.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.rule.key(), self.function, self.detail)
    }
}

/// Paths whose call allocates (first-segment-insensitive match against
/// `Type::method` suffixes).
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "BinaryHeap", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "String",
    "Box", "Arc", "Rc",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter", "default"];

/// Method names that (re)allocate on growth.
const ALLOC_METHODS: &[&str] = &[
    "push", "push_back", "push_front", "insert", "extend", "extend_from_slice", "resize",
    "reserve", "reserve_exact", "collect", "to_vec", "to_string", "to_owned", "append",
    "split_off", "join", "repeat", "into_boxed_slice", "try_reserve",
];

/// `clone` allocates for every heap-backed type in this workspace's hot
/// structures; judged separately so the detail names it.
const ALLOC_CLONE: &str = "clone";

const ALLOC_MACROS: &[&str] = &["vec", "format"];

const LOCK_METHODS: &[&str] = &["lock", "wait", "wait_timeout", "wait_while"];
/// `read`/`write` are RwLock acquisitions in rt code but also io::Read /
/// io::Write everywhere else; both are lock-or-IO — flag as lock.
const RWLOCK_METHODS: &[&str] = &["read", "write"];

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

const IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg", "write", "writeln"];
const IO_PATH_HEADS: &[&str] = &["File", "stdin", "stdout", "stderr"];

/// Methods unique to `TraceRecorder` — a call to one of these is tracing
/// work outside the sanctioned `Lane` wrappers.
const TRACE_METHODS: &[&str] = &[
    "merge_lane",
    "now_ns",
    "set_task_meta",
    "set_edges",
    "phase_from",
];

/// Modules exempt from a given rule: the trace module implements the
/// recorder, so its own calls are not "tracing on the hot path".
fn module_exempt(rule: HotRule, module: &str) -> bool {
    matches!(rule, HotRule::Trace) && module.ends_with("::trace")
}

/// Does any marker for `rule` appear within the window above `line`?
fn justified(rule: HotRule, comments: &[Comment], line: usize) -> bool {
    let lo = line.saturating_sub(WINDOW);
    comments.iter().any(|c| {
        c.line >= lo && c.line <= line && rule.markers().iter().any(|m| c.text.contains(m))
    })
}

/// Judge one event. Returns `(rule, detail)` when it violates a rule.
/// (`pub(crate)`: the sync analyzer reuses the alloc judgement to score
/// alloc-heavy callees.)
pub(crate) fn judge(ev: &Event) -> Option<(HotRule, String)> {
    match ev {
        Event::Call { path, .. } => {
            if path.len() >= 2 {
                let ty = &path[path.len() - 2];
                let f = &path[path.len() - 1];
                if ALLOC_TYPES.contains(&ty.as_str()) && ALLOC_CTORS.contains(&f.as_str()) {
                    return Some((HotRule::Alloc, format!("{ty}::{f}")));
                }
                if ty == "File" && (f == "open" || f == "create") {
                    return Some((HotRule::Io, format!("File::{f}")));
                }
                if ty == "thread" && f == "sleep" {
                    return Some((HotRule::Io, "thread::sleep".to_string()));
                }
                if ty == "TraceRecorder" {
                    return Some((HotRule::Trace, format!("TraceRecorder::{f}")));
                }
                if path.iter().any(|s| s == "fs") {
                    return Some((HotRule::Io, path.join("::")));
                }
            }
            let last = path.last().map(String::as_str).unwrap_or("");
            if path.len() == 1 && IO_PATH_HEADS.contains(&last) {
                return Some((HotRule::Io, format!("{last}()")));
            }
            None
        }
        Event::Method { name, .. } => {
            let n = name.as_str();
            if ALLOC_METHODS.contains(&n) {
                return Some((HotRule::Alloc, format!(".{n}()")));
            }
            if n == ALLOC_CLONE {
                return Some((HotRule::Alloc, ".clone()".to_string()));
            }
            if LOCK_METHODS.contains(&n) || RWLOCK_METHODS.contains(&n) {
                return Some((HotRule::Lock, format!(".{n}()")));
            }
            if PANIC_METHODS.contains(&n) {
                return Some((HotRule::Panic, format!(".{n}()")));
            }
            if TRACE_METHODS.contains(&n) {
                return Some((HotRule::Trace, format!(".{n}()")));
            }
            None
        }
        Event::Macro { name, .. } => {
            let n = name.as_str();
            if ALLOC_MACROS.contains(&n) {
                return Some((HotRule::Alloc, format!("{n}!")));
            }
            if PANIC_MACROS.contains(&n) {
                return Some((HotRule::Panic, format!("{n}!")));
            }
            if IO_MACROS.contains(&n) {
                return Some((HotRule::Io, format!("{n}!")));
            }
            None
        }
        Event::Index { .. } => Some((HotRule::Index, "slice indexing".to_string())),
    }
}

/// Run the purity rules over every function reachable from `roots`.
/// `comments_for` maps a function index to its file's comment list and
/// relative path (for marker checks and reporting).
pub fn check_hot_paths(
    graph: &CallGraph,
    roots: &[usize],
    file_of: &dyn Fn(usize) -> (String, Vec<Comment>),
) -> Vec<HotFinding> {
    let parent = graph.reach(roots);
    let mut reached: Vec<usize> = parent.keys().copied().collect();
    reached.sort_unstable();

    let mut findings = Vec::new();
    // Cache per-function file lookups (cheap but avoids repeated clones).
    let mut cache: HashMap<usize, (String, Vec<Comment>)> = HashMap::new();

    for &i in &reached {
        let f = &graph.functions[i];
        for ev in &f.events {
            let Some((rule, detail)) = judge(ev) else {
                continue;
            };
            if module_exempt(rule, &f.module) {
                continue;
            }
            let (file, comments) = cache.entry(i).or_insert_with(|| file_of(i));
            if justified(rule, comments, ev.line()) {
                continue;
            }
            findings.push(HotFinding {
                rule,
                file: file.clone(),
                line: ev.line(),
                function: f.qname.clone(),
                detail,
                chain: graph.witness(&parent, i),
            });
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parse::parse_file;

    fn run(src: &str, root: &str) -> Vec<HotFinding> {
        let parsed = parse_file(src, "c::m");
        let comments = parsed.comments.clone();
        let g = CallGraph::build(vec![parsed]);
        let roots = g.by_qname[root].clone();
        check_hot_paths(&g, &roots, &|_| ("mem.rs".to_string(), comments.clone()))
    }

    fn rules(f: &[HotFinding]) -> Vec<HotRule> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn alloc_in_root_is_flagged() {
        let f = run("fn hot() { let v = Vec::with_capacity(8); }", "c::m::hot");
        assert_eq!(rules(&f), vec![HotRule::Alloc]);
        assert_eq!(f[0].detail, "Vec::with_capacity");
    }

    #[test]
    fn alloc_in_callee_carries_witness_chain() {
        let f = run(
            "fn hot() { helper(); } fn helper() { v.push(1); }",
            "c::m::hot",
        );
        assert_eq!(rules(&f), vec![HotRule::Alloc]);
        assert_eq!(f[0].chain, vec!["c::m::hot", "c::m::helper"]);
    }

    #[test]
    fn unreachable_alloc_is_not_flagged() {
        let f = run(
            "fn hot() {} fn cold() { let v = vec![1]; }",
            "c::m::hot",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn justified_alloc_passes() {
        let f = run(
            "fn hot() {\n  // ALLOC: pooled at spawn, amortized O(1).\n  v.push(1);\n}",
            "c::m::hot",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn generic_hot_marker_covers_lock() {
        let f = run(
            "fn hot() {\n  // HOT: contended only at shutdown.\n  q.lock();\n}",
            "c::m::hot",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn panic_rule_accepts_no_marker() {
        let f = run(
            "fn hot() {\n  // HOT: justified? no.\n  x.unwrap();\n}",
            "c::m::hot",
        );
        assert_eq!(rules(&f), vec![HotRule::Panic]);
    }

    #[test]
    fn indexing_needs_bounds_not_hot() {
        let flagged = run("fn hot(a: &[u8]) { let x = a[0]; }", "c::m::hot");
        assert_eq!(rules(&flagged), vec![HotRule::Index]);
        let ok = run(
            "fn hot(a: &[u8]) {\n  // BOUNDS: caller guarantees a.len() > 0.\n  let x = a[0];\n}",
            "c::m::hot",
        );
        assert!(ok.is_empty());
        let wrong_marker = run(
            "fn hot(a: &[u8]) {\n  // HOT: nope.\n  let x = a[0];\n}",
            "c::m::hot",
        );
        assert_eq!(rules(&wrong_marker), vec![HotRule::Index]);
    }

    #[test]
    fn debug_assert_is_exempt() {
        let f = run("fn hot() { debug_assert!(x > 0); }", "c::m::hot");
        assert!(f.is_empty());
    }

    #[test]
    fn io_and_trace_rules() {
        let f = run("fn hot() { println!(\"x\"); }", "c::m::hot");
        assert_eq!(rules(&f), vec![HotRule::Io]);
        let t = run("fn hot(r: &R) { r.merge_lane(buf); }", "c::m::hot");
        assert_eq!(rules(&t), vec![HotRule::Trace]);
    }

    #[test]
    fn sanctioned_lane_wrappers_are_not_trace_findings() {
        let f = run("fn hot(lane: &mut Lane) { lane.record(span); }", "c::m::hot");
        assert!(f.iter().all(|f| f.rule != HotRule::Trace));
    }

    #[test]
    fn baseline_key_is_line_stable() {
        let a = run("fn hot() { x.unwrap(); }", "c::m::hot");
        let b = run("// pushed down\n\nfn hot() { x.unwrap(); }", "c::m::hot");
        assert_eq!(a[0].key(), b[0].key());
        assert_eq!(a[0].key(), "panic|c::m::hot|.unwrap()");
    }
}
