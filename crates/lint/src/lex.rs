//! A small Rust lexer for the hot-path analyzer.
//!
//! Produces a flat token stream with line numbers plus the comment list
//! (the rules need `// BOUNDS:` / `// ALLOC:`-style justification markers
//! and the parser needs comments out of the way). This is not a full
//! rustc lexer — it covers the subset the workspace actually uses:
//! identifiers, numbers, all the string/char literal forms, lifetimes,
//! nested block comments, and single-character punctuation. Multi-char
//! operators stay as punctuation sequences (`::` is two `:` tokens); the
//! parser peeks for the pairs it cares about.

/// Token kind. Punctuation is kept one character at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`r#raw` identifiers are unescaped).
    Ident(String),
    /// `'a` lifetime (or loop label).
    Lifetime,
    /// Numeric literal.
    Num,
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Single punctuation character.
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What it is.
    pub kind: Tok,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// A comment (line or block) with the 1-based line it *ends* on — the
/// line that matters for "marker within the preceding window" checks.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Line the comment ends on.
    pub line: usize,
    /// Raw comment text (including the `//` / `/*` sigils).
    pub text: String,
}

/// Lexer output: tokens plus the comments that were skipped over.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Unterminated literals are treated
/// leniently (consume to end of input) — the linter must never panic on
/// the code it judges.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    let count_newlines = |s: &[u8]| s.iter().filter(|&&c| c == b'\n').count();

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                });
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_newlines(&b[start..i]);
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                });
            }
            b'"' => {
                let tok_line = line;
                let start = i;
                i = skip_plain_string(b, i);
                line += count_newlines(&b[start..i]);
                out.tokens.push(Token {
                    kind: Tok::Str,
                    line: tok_line,
                });
            }
            b'\'' => {
                // Lifetime/label vs char literal: a lifetime is `'` +
                // ident chars *not* closed by `'`.
                let tok_line = line;
                let mut j = i + 1;
                if j < n && (b[j].is_ascii_alphabetic() || b[j] == b'_') {
                    let mut k = j + 1;
                    while k < n && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                        k += 1;
                    }
                    if k < n && b[k] == b'\'' {
                        // 'x' char literal (single ident char).
                        i = k + 1;
                        out.tokens.push(Token {
                            kind: Tok::Char,
                            line: tok_line,
                        });
                    } else {
                        i = k;
                        out.tokens.push(Token {
                            kind: Tok::Lifetime,
                            line: tok_line,
                        });
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    if j < n && b[j] == b'\\' {
                        j += 2;
                        while j < n && b[j] != b'\'' {
                            j += 1;
                        }
                    } else if j < n {
                        j += 1;
                    }
                    if j < n && b[j] == b'\'' {
                        j += 1;
                    }
                    line += count_newlines(&b[i..j.min(n)]);
                    i = j.min(n);
                    out.tokens.push(Token {
                        kind: Tok::Char,
                        line: tok_line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                i += 1;
                while i < n {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && i + 1 < n && b[i + 1] != b'.' {
                        // `1.5` continues the number, `1..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: Tok::Num,
                    line: tok_line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let tok_line = line;
                let start = i;
                i += 1;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // String-literal prefixes: r"", r#""#, b"", br"", c"".
                if i < n && (b[i] == b'"' || b[i] == b'#') && is_string_prefix(word) {
                    let lit_start = i;
                    let end = skip_prefixed_string(b, i);
                    if end > lit_start {
                        line += count_newlines(&b[lit_start..end]);
                        i = end;
                        out.tokens.push(Token {
                            kind: Tok::Str,
                            line: tok_line,
                        });
                        continue;
                    }
                }
                // Raw identifier r#type: the prefixed-string scan bailed
                // (no `"` after the hashes), so consume `#` + ident.
                if word == "r" && i < n && b[i] == b'#' {
                    let j = i + 1;
                    if j < n && (b[j].is_ascii_alphabetic() || b[j] == b'_') {
                        let id_start = j;
                        let mut k = j + 1;
                        while k < n && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                            k += 1;
                        }
                        i = k;
                        out.tokens.push(Token {
                            kind: Tok::Ident(src[id_start..k].to_string()),
                            line: tok_line,
                        });
                        continue;
                    }
                }
                // Byte char literal b'x'.
                if word == "b" && i < n && b[i] == b'\'' {
                    let mut j = i + 1;
                    if j < n && b[j] == b'\\' {
                        j += 2;
                    }
                    while j < n && b[j] != b'\'' {
                        j += 1;
                    }
                    i = (j + 1).min(n);
                    out.tokens.push(Token {
                        kind: Tok::Char,
                        line: tok_line,
                    });
                    continue;
                }
                let name = word.strip_prefix("r#").unwrap_or(word);
                out.tokens.push(Token {
                    kind: Tok::Ident(name.to_string()),
                    line: tok_line,
                });
            }
            c => {
                out.tokens.push(Token {
                    kind: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_string_prefix(word: &str) -> bool {
    matches!(word, "r" | "b" | "br" | "c" | "cr")
}

/// Skip a plain `"…"` literal starting at the opening quote; returns the
/// index one past the closing quote.
fn skip_plain_string(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    i += 1;
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Skip a raw/byte string whose prefix ident was already consumed; `i`
/// points at `"` or the first `#`. Returns one past the end, or `i` if
/// this is not actually a string start (e.g. `r#raw_ident` — the caller
/// re-lexes as an identifier).
fn skip_prefixed_string(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut hashes = 0usize;
    let mut j = i;
    while j < n && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || b[j] != b'"' {
        return i; // not a string (r#ident)
    }
    if hashes == 0 {
        return skip_plain_string(b, j);
    }
    // Raw string: scan for `"` followed by `hashes` hashes; no escapes.
    j += 1;
    while j < n {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn a() {\n  b.c();\n}\n");
        let lines: Vec<usize> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines[0], 1);
        assert!(lines.contains(&2));
        assert_eq!(idents("fn a() { b.c(); }"), vec!["fn", "a", "b", "c"]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let l = lex("let x = 1; // BOUNDS: i < n\n/* block\ncomment */ y");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("BOUNDS:"));
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 3, "block comment ends on line 3");
        assert!(idents("x // foo()\ny").contains(&"y".to_string()));
    }

    #[test]
    fn string_forms_are_single_tokens() {
        for src in [
            "\"plain\"",
            "\"esc \\\" quote\"",
            "r\"raw\"",
            "r#\"raw # \" hash\"#",
            "b\"bytes\"",
            "br#\"raw bytes\"#",
        ] {
            let l = lex(src);
            assert_eq!(l.tokens.len(), 1, "{src}");
            assert_eq!(l.tokens[0].kind, Tok::Str, "{src}");
        }
    }

    #[test]
    fn string_contents_do_not_leak_tokens() {
        // A paren inside a string must not look like a call.
        assert_eq!(idents("let s = \"foo(bar)\";"), vec!["let", "s"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.kind == Tok::Lifetime).count();
        let chars = l.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifier_is_unescaped() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numbers_with_ranges() {
        let l = lex("for i in 0..n { let x = 1.5e3; }");
        let nums = l.tokens.iter().filter(|t| t.kind == Tok::Num).count();
        assert!(nums >= 2);
        // The `..` survives as two dots.
        let dots = l
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* outer /* inner */ still comment */ x");
        assert_eq!(idents("/* a /* b */ c */ x"), vec!["x"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn unterminated_string_is_lenient() {
        let l = lex("let s = \"never closed");
        assert!(!l.tokens.is_empty());
    }
}
