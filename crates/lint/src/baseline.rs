//! Baseline file for the hot-path lint: the committed debt ledger.
//!
//! `tools/lint-hot-baseline.json` holds the *stable keys* of every
//! grandfathered finding (`rule|function|detail` — no line numbers, so
//! unrelated edits don't churn it). The gate is exact-match in both
//! directions:
//!
//! * a finding whose key is **not** in the baseline is *new* → fail;
//! * a baseline key with **no** matching finding is *stale* → also fail,
//!   with instructions to re-baseline and record the win. Burn-down is
//!   a deliberate act, never silent.
//!
//! The file is plain JSON written and read by hand here — the workspace
//! has no serde and takes no dependencies.

use std::collections::BTreeSet;

/// Parsed baseline: the set of grandfathered finding keys.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    /// Sorted unique keys.
    pub keys: BTreeSet<String>,
}

/// Gate result: what changed relative to the baseline.
#[derive(Debug, Default)]
pub struct Drift {
    /// Findings not in the baseline (regressions).
    pub new: Vec<String>,
    /// Baseline keys with no matching finding (burned-down debt that
    /// must be recorded).
    pub stale: Vec<String>,
}

impl Drift {
    /// No drift in either direction.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Compare current finding keys against the baseline.
    pub fn drift<'a, I: IntoIterator<Item = &'a str>>(&self, current: I) -> Drift {
        let cur: BTreeSet<&str> = current.into_iter().collect();
        Drift {
            new: cur
                .iter()
                .filter(|k| !self.keys.contains(**k))
                .map(|k| k.to_string())
                .collect(),
            stale: self
                .keys
                .iter()
                .filter(|k| !cur.contains(k.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Serialize to the committed JSON form (sorted, one key per line).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"keys\": [\n");
        let n = self.keys.len();
        for (i, k) in self.keys.iter().enumerate() {
            s.push_str("    \"");
            s.push_str(&escape(k));
            s.push('"');
            if i + 1 < n {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse the committed JSON form. Errors are strings — the caller
    /// (the lint binary) reports and exits.
    pub fn from_json(src: &str) -> Result<Baseline, String> {
        let v = json_parse(src)?;
        let obj = match v {
            JsonVal::Obj(o) => o,
            _ => return Err("baseline: top level must be an object".into()),
        };
        let keys = obj
            .iter()
            .find(|(k, _)| k == "keys")
            .ok_or("baseline: missing \"keys\" array")?;
        let arr = match &keys.1 {
            JsonVal::Arr(a) => a,
            _ => return Err("baseline: \"keys\" must be an array".into()),
        };
        let mut out = BTreeSet::new();
        for item in arr {
            match item {
                JsonVal::Str(s) => {
                    out.insert(s.clone());
                }
                _ => return Err("baseline: keys must be strings".into()),
            }
        }
        Ok(Baseline { keys: out })
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON value — just enough to read the baseline file.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// any number (kept as f64)
    Num(f64),
    /// string
    Str(String),
    /// array
    Arr(Vec<JsonVal>),
    /// object (insertion order preserved)
    Obj(Vec<(String, JsonVal)>),
}

/// Parse one JSON document. Rejects trailing garbage.
pub fn json_parse(src: &str) -> Result<JsonVal, String> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonVal, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut obj = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonVal::Obj(obj));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    JsonVal::Str(s) => s,
                    _ => return Err("object key must be a string".into()),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                obj.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonVal::Obj(obj));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonVal::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonVal::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut s = String::new();
            while *pos < b.len() {
                match b[*pos] {
                    b'"' => {
                        *pos += 1;
                        return Ok(JsonVal::Str(s));
                    }
                    b'\\' => {
                        *pos += 1;
                        let Some(&e) = b.get(*pos) else {
                            return Err("unterminated escape".into());
                        };
                        match e {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b't' => s.push('\t'),
                            b'r' => s.push('\r'),
                            b'b' => s.push('\u{8}'),
                            b'f' => s.push('\u{c}'),
                            b'u' => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape \\{}", e as char)),
                        }
                        *pos += 1;
                    }
                    c => {
                        // Copy raw UTF-8 bytes through.
                        let start = *pos;
                        let mut end = *pos + 1;
                        if c >= 0x80 {
                            while end < b.len() && b[end] & 0xc0 == 0x80 {
                                end += 1;
                            }
                        }
                        s.push_str(&String::from_utf8_lossy(&b[start..end]));
                        *pos = end;
                    }
                }
            }
            Err("unterminated string".into())
        }
        b't' if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonVal::Bool(true))
        }
        b'f' if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonVal::Bool(false))
        }
        b'n' if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonVal::Null)
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(JsonVal::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        c => Err(format!("unexpected byte '{}' at {pos}", c as char)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = Baseline::default();
        b.keys.insert("alloc|c::m::f|.push()".to_string());
        b.keys.insert("panic|c::m::g|.unwrap()".to_string());
        let json = b.to_json();
        let back = Baseline::from_json(&json).unwrap();
        assert_eq!(back.keys, b.keys);
    }

    #[test]
    fn empty_baseline_round_trip() {
        let b = Baseline::default();
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert!(back.keys.is_empty());
    }

    #[test]
    fn drift_detects_new_and_stale() {
        let mut b = Baseline::default();
        b.keys.insert("old|f|d".to_string());
        b.keys.insert("kept|f|d".to_string());
        let drift = b.drift(["kept|f|d", "fresh|f|d"]);
        assert_eq!(drift.new, vec!["fresh|f|d"]);
        assert_eq!(drift.stale, vec!["old|f|d"]);
        assert!(!drift.is_clean());
        assert!(b.drift(["kept|f|d", "old|f|d"]).is_clean());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Baseline::from_json("not json").is_err());
        assert!(Baseline::from_json("[1,2]").is_err());
        assert!(Baseline::from_json("{\"keys\": [1]}").is_err());
        assert!(Baseline::from_json("{}").is_err());
        assert!(json_parse("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = json_parse(r#"{"a": ["x\"y", {"b": -1.5e2}], "c": null}"#).unwrap();
        match v {
            JsonVal::Obj(o) => {
                assert_eq!(o.len(), 2);
                match &o[0].1 {
                    JsonVal::Arr(a) => {
                        assert_eq!(a[0], JsonVal::Str("x\"y".to_string()));
                    }
                    _ => panic!("expected array"),
                }
            }
            _ => panic!("expected object"),
        }
    }
}
