//! Lock-discipline analyzer (DESIGN.md §16): the workspace lock-order
//! graph and the held-across-blocking rules behind `lint-sync`.
//!
//! Works on the same artifacts as the hot-path analyzer — the parsed
//! token stream, per-function events and the module-resolved call graph
//! — but asks a different question: **which locks can be held at the
//! same time, and what happens while they are held?**
//!
//! * Every `Mutex`/`RwLock` acquisition site (`.lock()`, empty-argument
//!   `.read()`/`.write()`, `.try_lock()`) is classified by a *lock
//!   identity*: the receiver's field path rooted at the `impl` type
//!   (`CentralQueue.queue`), a parameter's declared type
//!   (`Queues.ready` for `fn steal(queues: &Queues)`), an upper-case
//!   static, or — when the root cannot be resolved — a function-scoped
//!   pseudo-identity. The scheme is conservative: two identities that
//!   print differently may alias the same lock (splits weaken cycle
//!   detection but never fabricate an edge between unrelated locks).
//! * A linear scan of each body tracks **guard liveness** (named `let`
//!   guards die at scope end or `drop(g)`; temporaries die at the end
//!   of their statement). A second acquisition while any guard is live
//!   adds a lock-order edge; a blocking call (`recv`/`wait`/`join`/
//!   spill-IO) while a guard is live is a finding. The condvar protocol
//!   — `cv.wait(guard)` consuming the guard it releases — is exempt for
//!   the guard named in the wait call's arguments.
//! * Calls made while a guard is live are resolved through the call
//!   graph; every acquisition or blocking op reachable from the callee
//!   becomes a **cross-function** edge/finding carrying the BFS witness
//!   chain, and a direct callee with ≥3 allocation events (the hot-path
//!   analyzer's alloc judgement) is flagged as an alloc-heavy callee.
//! * Cycles in the lock-order graph (including self-edges: re-acquiring
//!   an identity while holding it) are reported as potential-deadlock
//!   witnesses listing every participating edge with its source chain.
//!
//! A `// SYNC:` marker within [`WINDOW`] lines above a site suppresses
//! held-across findings (the written-down argument for why the hold is
//! benign); cycle findings accept no marker — like panic findings, the
//! fix is a lock-order change or a baseline entry.
//!
//! The model checker (`dagfact_rt::model*`) and the sync shim
//! (`dagfact_rt::sync`) are exempt: they are the verification mechanism
//! and the sanctioned wrapper, not subjects.

use crate::callgraph::CallGraph;
use crate::hotpath::{self, HotRule};
use crate::lex::{Comment, Tok, Token};
use crate::parse::Function;
use crate::WINDOW;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;

/// Which sync rule produced a finding (shared with the atomics pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SyncRule {
    /// A cycle in the lock-order graph (potential deadlock).
    LockCycle,
    /// A guard live across a blocking operation.
    HeldBlocking,
    /// A guard live across an alloc-heavy callee.
    HeldAlloc,
    /// A Release store with no Acquire/AcqRel load anywhere.
    UnpairedRelease,
    /// An Acquire load with no Release/AcqRel store anywhere.
    UnpairedAcquire,
    /// A Relaxed site without an `// ORDERING:` note.
    UnjustifiedRelaxed,
    /// A compare_exchange failure ordering stronger than the success
    /// ordering's load component.
    CxFailureOrdering,
}

impl SyncRule {
    /// Stable key fragment for baselines.
    pub fn key(self) -> &'static str {
        match self {
            SyncRule::LockCycle => "lock-cycle",
            SyncRule::HeldBlocking => "held-across-blocking",
            SyncRule::HeldAlloc => "held-across-alloc",
            SyncRule::UnpairedRelease => "unpaired-release",
            SyncRule::UnpairedAcquire => "unpaired-acquire",
            SyncRule::UnjustifiedRelaxed => "unjustified-relaxed",
            SyncRule::CxFailureOrdering => "cx-failure-ordering",
        }
    }

    /// Parse a key fragment back into the rule.
    pub fn from_key(key: &str) -> Option<SyncRule> {
        [
            SyncRule::LockCycle,
            SyncRule::HeldBlocking,
            SyncRule::HeldAlloc,
            SyncRule::UnpairedRelease,
            SyncRule::UnpairedAcquire,
            SyncRule::UnjustifiedRelaxed,
            SyncRule::CxFailureOrdering,
        ]
        .into_iter()
        .find(|r| r.key() == key)
    }
}

impl fmt::Display for SyncRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One sync-discipline violation.
#[derive(Debug, Clone)]
pub struct SyncFinding {
    /// The violated rule.
    pub rule: SyncRule,
    /// Source file of the offending site (or the holding call site).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Fully qualified function containing the site.
    pub function: String,
    /// Human-readable specifics (stable across line churn).
    pub detail: String,
    /// Witness chain: holding function → … → offending function, or the
    /// participating edges for a cycle.
    pub chain: Vec<String>,
}

impl SyncFinding {
    /// Line-free baseline key.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.rule.key(), self.function, self.detail)
    }
}

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity (see module docs).
    pub id: String,
    /// Acquiring method (`lock`, `read`, `write`, `try_lock`).
    pub method: String,
    /// Source file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Containing function.
    pub function: String,
}

/// One lock-order edge: a guard of `from` was provably live at an
/// acquisition of `to`.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Held lock identity.
    pub from: String,
    /// Acquired lock identity.
    pub to: String,
    /// Function holding `from` at the acquisition (or at the call that
    /// reaches it).
    pub function: String,
    /// Source file of the holding site.
    pub file: String,
    /// 1-based line of the acquisition / call site.
    pub line: usize,
    /// Witness chain from the holding function to the acquiring one
    /// (length 1 for an intra-function edge).
    pub chain: Vec<String>,
}

/// Analyzer output: the lock-order graph plus the findings.
#[derive(Debug, Default)]
pub struct SyncReport {
    /// Every acquisition site, sorted by (file, line).
    pub sites: Vec<LockSite>,
    /// Deduplicated lock-order edges, sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// Rule violations, sorted by (file, line, rule).
    pub findings: Vec<SyncFinding>,
}

/// Per-function context handed to the analyzer by the driver, aligned
/// with [`CallGraph::functions`] (same pattern as `check_hot_paths`,
/// plus the owning file's token stream for the body scan).
#[derive(Clone)]
pub struct FnCtx {
    /// Source path (for reports).
    pub file: String,
    /// The owning file's full token stream ([`Function::body`] and
    /// [`Function::sig`] index into it).
    pub tokens: Rc<Vec<Token>>,
    /// The owning file's comments (for `// SYNC:` markers).
    pub comments: Rc<Vec<Comment>>,
}

/// Guard-acquiring methods. `read`/`write` count only with an empty
/// argument list (`io::Read::read` / `io::Write::write` take buffers).
const ACQUIRE_METHODS: &[&str] = &["lock", "try_lock", "read", "write"];

/// Blocking methods a guard must not be live across. `join` counts only
/// with an empty argument list (`str::join` takes a separator).
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_while",
    "join",
    "park",
    "write_all",
    "read_exact",
    "read_to_end",
    "sync_all",
];

/// The condvar wait family: consuming the guard named in the arguments
/// is the sanctioned protocol (the wait releases and re-acquires it).
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Methods that count as blocking only when called with no arguments.
const EMPTY_ARGS_ONLY: &[&str] = &["join", "recv", "park"];

/// Smart-pointer / container heads skipped when inferring a parameter's
/// nominal type (`&Arc<FaultPlan>` → `FaultPlan`).
const TYPE_WRAPPERS: &[&str] = &[
    "Arc", "Rc", "Box", "Option", "Vec", "Mutex", "RwLock", "RefCell", "Cell", "Result",
];

/// Alloc events in a direct callee before it counts as alloc-heavy.
const ALLOC_HEAVY: usize = 3;

/// Modules exempt from the whole analysis: the model checker is the
/// verification mechanism, the sync shim the sanctioned wrapper.
fn module_exempt(module: &str) -> bool {
    module == "dagfact_rt::sync"
        || module.starts_with("dagfact_rt::sync::")
        || module.contains("::model")
}

/// Is a `// SYNC:` (or `// ORDERING:`) marker within the window above
/// `line`?
pub(crate) fn sync_marked(comments: &[Comment], line: usize) -> bool {
    let lo = line.saturating_sub(WINDOW);
    comments.iter().any(|c| {
        c.line >= lo && c.line <= line && (c.text.contains("SYNC:") || c.text.contains("ORDERING:"))
    })
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
}

/// Index just past a balanced `<…>` group starting at `open` (which must
/// be `<`). Conservative: gives up (returns `open`) on suspicious runs.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() && i < open + 64 {
        match toks[i].kind {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';') | Tok::Punct('{') => return open,
            _ => {}
        }
        i += 1;
    }
    open
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Walk the receiver chain backwards from the `.` at `dot`: identifier
/// segments joined by `.`, looking through index groups (`x[i].lock()`
/// → `["x"]`… the indexed segment is kept: `self.ready[w].lock()` →
/// `["self", "ready"]`). An opaque receiver (call result, parenthesized
/// expression) yields an empty chain.
pub(crate) fn receiver_chain(toks: &[Token], dot: usize) -> Vec<String> {
    let mut chain: Vec<String> = Vec::new();
    let mut k = dot;
    loop {
        if k == 0 {
            break;
        }
        k -= 1;
        // Look through trailing index groups: `…foo[w]` ← cursor on `]`.
        while punct_at(toks, k, ']') {
            let mut depth = 0usize;
            loop {
                match toks.get(k).map(|t| &t.kind) {
                    Some(Tok::Punct(']')) => depth += 1,
                    Some(Tok::Punct('[')) => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    None => return Vec::new(),
                    _ => {}
                }
                if k == 0 {
                    return Vec::new();
                }
                k -= 1;
            }
            if k == 0 {
                return Vec::new();
            }
            k -= 1;
        }
        match toks.get(k).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => chain.push(s.clone()),
            // Anything else (a `)` of a call, a literal…): opaque.
            _ => return Vec::new(),
        }
        // Continue only through a `.` immediately before the segment.
        if k >= 1 && punct_at(toks, k - 1, '.') {
            k -= 1; // onto the `.`; loop decrements onto the segment
        } else {
            break;
        }
    }
    chain.reverse();
    chain
}

/// Infer `parameter name → nominal type` from the signature token range.
pub(crate) fn param_types(tokens: &[Token], sig: (usize, usize)) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let toks = match tokens.get(sig.0..sig.1) {
        Some(t) => t,
        None => return out,
    };
    // First *top-level* paren: a leading generics group may itself
    // contain parens (`fn run<F: FnOnce() -> T>(…)`), so track angle
    // depth, ignoring the `>` of `->` arrows.
    let mut adepth = 0usize;
    let mut open_at = None;
    for (idx, t) in toks.iter().enumerate() {
        match t.kind {
            Tok::Punct('<') => adepth += 1,
            Tok::Punct('>')
                if adepth > 0
                    && !(idx > 0 && matches!(toks[idx - 1].kind, Tok::Punct('-'))) =>
            {
                adepth -= 1;
            }
            Tok::Punct('(') if adepth == 0 => {
                open_at = Some(idx);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open_at else {
        return out;
    };
    let close = match_paren(toks, open);
    let mut i = open + 1;
    let mut pname: Option<String> = None;
    let mut in_type = false;
    let mut depth = 0usize;
    while i < close {
        match &toks[i].kind {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth = depth.saturating_sub(1),
            Tok::Punct(',') if depth == 0 => {
                pname = None;
                in_type = false;
            }
            Tok::Punct(':') if depth == 0 && !punct_at(toks, i + 1, ':') => in_type = true,
            Tok::Ident(s) if !in_type && pname.is_none() && s != "mut" && s != "self" => {
                pname = Some(s.clone());
            }
            Tok::Ident(s)
                if in_type
                    && s.chars().next().is_some_and(char::is_uppercase)
                    && !TYPE_WRAPPERS.contains(&s.as_str()) =>
            {
                if let Some(n) = pname.take() {
                    out.insert(n, s.clone());
                }
                in_type = false;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Classify a receiver chain into a lock identity (see module docs).
pub(crate) fn lock_identity(
    chain: &[String],
    f: &Function,
    params: &HashMap<String, String>,
) -> String {
    fn join(root: &str, rest: &[String]) -> String {
        if rest.is_empty() {
            root.to_string()
        } else {
            format!("{}.{}", root, rest.join("."))
        }
    }
    let Some(root) = chain.first() else {
        return format!("<expr {}>", f.qname);
    };
    let rest = &chain[1..];
    if root == "self" {
        return join(f.self_type.as_deref().unwrap_or("Self"), rest);
    }
    if let Some(t) = params.get(root.as_str()) {
        return join(t, rest);
    }
    if root.chars().next().is_some_and(char::is_uppercase) {
        return join(root, rest);
    }
    if !rest.is_empty() {
        // Unknown lowercase local root: keep the field path only. This
        // may split one lock into several identities — conservative.
        return rest.join(".");
    }
    format!("{}::{}", f.qname, root)
}

/// A live guard during the body scan.
struct Guard {
    /// Binding name (`None` for statement temporaries).
    name: Option<String>,
    /// Lock identity it guards.
    id: String,
    /// Brace depth it was created at.
    depth: usize,
}

/// Raw per-function scan results.
#[derive(Debug, Default)]
pub(crate) struct Scan {
    /// `(identity, method, line)` per acquisition.
    pub(crate) acquires: Vec<(String, String, usize)>,
    /// `(held, acquired, line)` intra-function lock-order edges.
    pub(crate) intra_edges: Vec<(String, String, usize)>,
    /// `(held identity, op detail, line)` guard-across-blocking hits.
    pub(crate) blocked: Vec<(String, String, usize)>,
    /// `(op detail, line)` blocking ops regardless of local guards (for
    /// callers that hold locks across a call into this function).
    pub(crate) blocking_ops: Vec<(String, usize)>,
    /// `(callee name, line, held identities)` calls made under guards.
    pub(crate) calls_held: Vec<(String, usize, Vec<String>)>,
}

/// Scan one function body for guard liveness (see module docs).
pub(crate) fn scan_fn(
    f: &Function,
    tokens: &[Token],
    params: &HashMap<String, String>,
) -> Scan {
    let mut out = Scan::default();
    let toks = match tokens.get(f.body.0..f.body.1) {
        Some(t) => t,
        None => return out,
    };
    let n = toks.len();
    let mut guards: Vec<Guard> = Vec::new();
    // A `let [mut] name =` waiting for its initializer, with its depth.
    let mut pending: Option<(String, usize)> = None;
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < n {
        match &toks[i].kind {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                if pending.as_ref().is_some_and(|p| p.1 > depth) {
                    pending = None;
                }
                i += 1;
            }
            Tok::Punct(';') => {
                guards.retain(|g| !(g.name.is_none() && g.depth == depth));
                if pending.as_ref().is_some_and(|p| p.1 >= depth) {
                    pending = None;
                }
                i += 1;
            }
            Tok::Punct('.') if ident_at(toks, i + 1).is_some() => {
                let name = ident_at(toks, i + 1).map(str::to_string).unwrap_or_default();
                let line = toks[i + 1].line;
                // Locate the call parens (allowing a turbofish).
                let mut j = i + 2;
                if punct_at(toks, j, ':') && punct_at(toks, j + 1, ':') && punct_at(toks, j + 2, '<')
                {
                    j = skip_angles(toks, j + 2);
                }
                if !punct_at(toks, j, '(') {
                    i += 2; // field access / method reference
                    continue;
                }
                let open = j;
                let close = match_paren(toks, open);
                let empty_args = close == open + 1;
                let is_acquire = name == "lock"
                    || name == "try_lock"
                    || ((name == "read" || name == "write") && empty_args);
                debug_assert!(ACQUIRE_METHODS.contains(&name.as_str()) || !is_acquire);
                if is_acquire {
                    let chain = receiver_chain(toks, i);
                    let id = lock_identity(&chain, f, params);
                    out.acquires.push((id.clone(), name.clone(), line));
                    for g in &guards {
                        out.intra_edges.push((g.id.clone(), id.clone(), line));
                    }
                    // `let g = m.lock();` binds the guard by name; any
                    // longer initializer chain drops it at the `;`.
                    let named = punct_at(toks, close + 1, ';');
                    match (named, pending.take()) {
                        (true, Some((nm, _))) => guards.push(Guard {
                            name: Some(nm),
                            id,
                            depth,
                        }),
                        (_, p) => {
                            pending = p;
                            guards.push(Guard {
                                name: None,
                                id,
                                depth,
                            });
                        }
                    }
                } else if BLOCKING_METHODS.contains(&name.as_str())
                    && (!EMPTY_ARGS_ONLY.contains(&name.as_str()) || empty_args)
                {
                    let is_wait = WAIT_METHODS.contains(&name.as_str());
                    let arg_idents: BTreeSet<&str> = toks[open + 1..close]
                        .iter()
                        .filter_map(|t| match &t.kind {
                            Tok::Ident(s) => Some(s.as_str()),
                            _ => None,
                        })
                        .collect();
                    let exempt = |g: &Guard| {
                        is_wait && g.name.as_deref().is_some_and(|nm| arg_idents.contains(nm))
                    };
                    let mut held = Vec::new();
                    for g in &guards {
                        if exempt(g) {
                            continue;
                        }
                        out.blocked.push((g.id.clone(), format!(".{name}()"), line));
                        held.push(g.id.clone());
                    }
                    out.blocking_ops.push((format!(".{name}()"), line));
                } else if !guards.is_empty() {
                    let held: Vec<String> = guards.iter().map(|g| g.id.clone()).collect();
                    out.calls_held.push((name, line, held));
                }
                i = open + 1; // keep scanning inside the arguments
            }
            Tok::Ident(kw) if kw == "let" => {
                let mut j = i + 1;
                if ident_at(toks, j) == Some("mut") {
                    j += 1;
                }
                match (ident_at(toks, j), punct_at(toks, j + 1, '=')) {
                    (Some(nm), true) => {
                        pending = Some((nm.to_string(), depth));
                        i = j + 2;
                    }
                    _ => i += 1,
                }
            }
            Tok::Ident(head) => {
                // Path call: `seg::seg::…::f(…)`, plus `drop(g)` and the
                // blocking path heads (`thread::sleep`, `File::open`,
                // `fs::…`).
                let mut segs: Vec<&str> = vec![head];
                let mut j = i + 1;
                while punct_at(toks, j, ':')
                    && punct_at(toks, j + 1, ':')
                    && ident_at(toks, j + 2).is_some()
                {
                    segs.push(ident_at(toks, j + 2).unwrap_or_default());
                    j += 3;
                }
                if !punct_at(toks, j, '(') || crate::parse::is_expr_keyword(head) {
                    i = j.max(i + 1);
                    continue;
                }
                let open = j;
                let close = match_paren(toks, open);
                let line = toks[i].line;
                let last = *segs.last().unwrap_or(&"");
                if last == "drop" && close == open + 2 {
                    if let Some(nm) = ident_at(toks, open + 1) {
                        guards.retain(|g| g.name.as_deref() != Some(nm));
                    }
                } else {
                    let blocking_path = (segs.contains(&"thread") && last == "sleep")
                        || (segs.contains(&"File") && (last == "open" || last == "create"))
                        || segs.contains(&"fs");
                    if blocking_path {
                        let detail = segs.join("::");
                        for g in &guards {
                            out.blocked.push((g.id.clone(), detail.clone(), line));
                        }
                        out.blocking_ops.push((detail, line));
                    } else if !guards.is_empty() && segs.len() <= 3 {
                        let held: Vec<String> = guards.iter().map(|g| g.id.clone()).collect();
                        out.calls_held.push((last.to_string(), line, held));
                    }
                }
                i = open + 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Run the lock-discipline analysis over the whole graph. `ctx(i)` must
/// return the file/token/comment context of `graph.functions[i]`.
pub fn analyze(graph: &CallGraph, ctx: &dyn Fn(usize) -> FnCtx) -> SyncReport {
    let nf = graph.functions.len();
    let mut ctxs: Vec<FnCtx> = Vec::with_capacity(nf);
    let mut scans: Vec<Scan> = Vec::with_capacity(nf);
    for i in 0..nf {
        let f = &graph.functions[i];
        let c = ctx(i);
        let scan = if module_exempt(&f.module) {
            Scan::default()
        } else {
            let params = param_types(&c.tokens, f.sig);
            scan_fn(f, &c.tokens, &params)
        };
        scans.push(scan);
        ctxs.push(c);
    }
    let alloc_score: Vec<usize> = graph
        .functions
        .iter()
        .map(|f| {
            f.events
                .iter()
                .filter(|e| matches!(hotpath::judge(e), Some((HotRule::Alloc, _))))
                .count()
        })
        .collect();

    let mut sites: Vec<LockSite> = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut findings: Vec<SyncFinding> = Vec::new();

    for i in 0..nf {
        let f = &graph.functions[i];
        let scan = &scans[i];
        let c = &ctxs[i];
        for (id, method, line) in &scan.acquires {
            sites.push(LockSite {
                id: id.clone(),
                method: method.clone(),
                file: c.file.clone(),
                line: *line,
                function: f.qname.clone(),
            });
        }
        for (from, to, line) in &scan.intra_edges {
            edges.push(LockEdge {
                from: from.clone(),
                to: to.clone(),
                function: f.qname.clone(),
                file: c.file.clone(),
                line: *line,
                chain: vec![f.qname.clone()],
            });
        }
        for (gid, op, line) in &scan.blocked {
            if sync_marked(&c.comments, *line) {
                continue;
            }
            findings.push(SyncFinding {
                rule: SyncRule::HeldBlocking,
                file: c.file.clone(),
                line: *line,
                function: f.qname.clone(),
                detail: format!("guard `{gid}` held across {op}"),
                chain: vec![f.qname.clone()],
            });
        }
    }

    // Cross-function pass: resolve calls made under guards through the
    // call graph; reachable acquisitions become edges, reachable
    // blocking ops become findings, alloc-heavy direct callees are
    // flagged.
    let mut reach_cache: HashMap<usize, Rc<HashMap<usize, usize>>> = HashMap::new();
    for i in 0..nf {
        if scans[i].calls_held.is_empty() {
            continue;
        }
        let holder = graph.functions[i].qname.clone();
        let file = ctxs[i].file.clone();
        for (callee, line, held) in &scans[i].calls_held {
            let marked = sync_marked(&ctxs[i].comments, *line);
            let cands: Vec<usize> = graph.edges[i]
                .iter()
                .copied()
                .filter(|&j| graph.functions[j].name == *callee)
                .collect();
            for j in cands {
                if module_exempt(&graph.functions[j].module) {
                    continue;
                }
                if alloc_score[j] >= ALLOC_HEAVY && !marked {
                    for gid in held {
                        findings.push(SyncFinding {
                            rule: SyncRule::HeldAlloc,
                            file: file.clone(),
                            line: *line,
                            function: holder.clone(),
                            detail: format!(
                                "guard `{gid}` held across alloc-heavy callee `{}` ({} alloc sites)",
                                graph.functions[j].qname, alloc_score[j]
                            ),
                            chain: vec![holder.clone(), graph.functions[j].qname.clone()],
                        });
                    }
                }
                let parent = reach_cache
                    .entry(j)
                    .or_insert_with(|| Rc::new(graph.reach(&[j])))
                    .clone();
                let mut reached: Vec<usize> = parent.keys().copied().collect();
                reached.sort_unstable();
                for k in reached {
                    if module_exempt(&graph.functions[k].module) {
                        continue;
                    }
                    if scans[k].acquires.is_empty() && scans[k].blocking_ops.is_empty() {
                        continue;
                    }
                    let mut chain = vec![holder.clone()];
                    chain.extend(graph.witness(&parent, k));
                    for (aid, _m, _al) in &scans[k].acquires {
                        for gid in held {
                            edges.push(LockEdge {
                                from: gid.clone(),
                                to: aid.clone(),
                                function: holder.clone(),
                                file: file.clone(),
                                line: *line,
                                chain: chain.clone(),
                            });
                        }
                    }
                    if !marked {
                        for (op, _ol) in &scans[k].blocking_ops {
                            for gid in held {
                                findings.push(SyncFinding {
                                    rule: SyncRule::HeldBlocking,
                                    file: file.clone(),
                                    line: *line,
                                    function: holder.clone(),
                                    detail: format!(
                                        "guard `{gid}` held across {op} in `{}`",
                                        graph.functions[k].qname
                                    ),
                                    chain: chain.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Dedup edges by (from, to, function) — intra edges were pushed
    // first and win, keeping the tightest witness chain.
    let mut seen_edges: BTreeSet<(String, String, String)> = BTreeSet::new();
    edges.retain(|e| seen_edges.insert((e.from.clone(), e.to.clone(), e.function.clone())));

    // Cycle detection over lock identities (SCCs; a self-edge is a
    // one-node cycle: re-acquiring an identity while holding it).
    findings.extend(find_cycles(&edges));

    // Dedup findings by key (cross paths can re-derive the same fact).
    let mut seen: BTreeSet<String> = BTreeSet::new();
    findings.retain(|f| seen.insert(f.key()));

    sites.sort_by(|a, b| (&a.file, a.line, &a.id).cmp(&(&b.file, b.line, &b.id)));
    edges.sort_by(|a, b| (&a.from, &a.to, &a.function).cmp(&(&b.from, &b.to, &b.function)));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.detail).cmp(&(&b.file, b.line, b.rule, &b.detail))
    });
    SyncReport {
        sites,
        edges,
        findings,
    }
}

/// Kosaraju SCC over the edge list; SCCs of size > 1 (or with a
/// self-edge) become [`SyncRule::LockCycle`] findings.
fn find_cycles(edges: &[LockEdge]) -> Vec<SyncFinding> {
    let mut ids: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        ids.insert(&e.from);
        ids.insert(&e.to);
    }
    let index: BTreeMap<&str, usize> = ids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let names: Vec<&str> = ids.iter().copied().collect();
    let n = names.len();
    let mut fwd = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    let mut selfloop = vec![false; n];
    for e in edges {
        let (u, v) = (index[e.from.as_str()], index[e.to.as_str()]);
        if u == v {
            selfloop[u] = true;
        } else {
            fwd[u].push(v);
            rev[v].push(u);
        }
    }
    // Pass 1: finish order.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // Iterative DFS with an explicit child cursor.
        let mut stack: Vec<(usize, usize)> = vec![(s, 0)];
        seen[s] = true;
        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            if *cursor < fwd[u].len() {
                let v = fwd[u][*cursor];
                *cursor += 1;
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse-graph components in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0usize;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = ncomp;
        while let Some(u) = stack.pop() {
            for &v in &rev[u] {
                if comp[v] == usize::MAX {
                    comp[v] = ncomp;
                    stack.push(v);
                }
            }
        }
        ncomp += 1;
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (v, &c) in comp.iter().enumerate() {
        members[c].push(v);
    }
    let mut out = Vec::new();
    for m in members {
        let cyclic = m.len() > 1 || (m.len() == 1 && selfloop[m[0]]);
        if !cyclic {
            continue;
        }
        let in_scc: BTreeSet<&str> = m.iter().map(|&v| names[v]).collect();
        let mut internal: Vec<&LockEdge> = edges
            .iter()
            .filter(|e| {
                in_scc.contains(e.from.as_str())
                    && in_scc.contains(e.to.as_str())
                    && (e.from != e.to || m.len() == 1)
            })
            .collect();
        internal.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        let Some(first) = internal.first() else {
            continue;
        };
        let mut cycle_ids: Vec<&str> = in_scc.iter().copied().collect();
        cycle_ids.sort_unstable();
        let chain: Vec<String> = internal
            .iter()
            .map(|e| {
                format!(
                    "{} -> {} in {} ({}:{}) via {}",
                    e.from,
                    e.to,
                    e.function,
                    e.file,
                    e.line,
                    e.chain.join(" -> ")
                )
            })
            .collect();
        out.push(SyncFinding {
            rule: SyncRule::LockCycle,
            file: first.file.clone(),
            line: first.line,
            function: first.function.clone(),
            detail: format!("lock-order cycle: {}", cycle_ids.join(" <-> ")),
            chain,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(files: &[(&str, &str)]) -> SyncReport {
        let parsed: Vec<_> = files
            .iter()
            .map(|(m, s)| parse_file(s, m))
            .collect();
        let mut meta: Vec<FnCtx> = Vec::new();
        for (i, p) in parsed.iter().enumerate() {
            let toks = Rc::new(p.tokens.clone());
            let comments = Rc::new(p.comments.clone());
            for _ in &p.functions {
                meta.push(FnCtx {
                    file: format!("fixture{i}.rs"),
                    tokens: toks.clone(),
                    comments: comments.clone(),
                });
            }
        }
        let g = CallGraph::build(parsed);
        analyze(&g, &|i| meta[i].clone())
    }

    #[test]
    fn two_lock_hold_makes_an_edge() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let g = self.a.lock(); let h = self.b.lock(); } }",
        )]);
        assert_eq!(r.sites.len(), 2);
        assert_eq!(r.edges.len(), 1);
        assert_eq!(r.edges[0].from, "S.a");
        assert_eq!(r.edges[0].to, "S.b");
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { self.a.lock().push(1); let h = self.b.lock(); } }",
        )]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn chained_let_initializer_is_a_temporary() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let v = self.a.lock().take(); let h = self.b.lock(); } }",
        )]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn scope_and_drop_kill_guards() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { { let g = self.a.lock(); } let h = self.b.lock(); } \
             fn g(&self) { let g = self.a.lock(); drop(g); let h = self.b.lock(); } }",
        )]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn guard_across_recv_is_flagged_and_sync_marker_suppresses() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let g = self.q.lock(); self.rx.recv(); } }",
        )]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, SyncRule::HeldBlocking);
        assert_eq!(r.findings[0].detail, "guard `S.q` held across .recv()");
        assert_eq!(r.findings[0].key(), "held-across-blocking|r::a::S::f|guard `S.q` held across .recv()");
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) {\n let g = self.q.lock();\n // SYNC: bounded: rx is pre-filled.\n self.rx.recv(); } }",
        )]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn condvar_wait_consuming_its_guard_is_sanctioned() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let mut q = self.queue.lock(); \
             loop { q = self.cv.wait_timeout(q, timeout); } } }",
        )]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        // …but a *different* guard held at the same wait is flagged.
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let o = self.other.lock(); let mut q = self.queue.lock(); \
             q = self.cv.wait_timeout(q, timeout); } }",
        )]);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == SyncRule::HeldBlocking && f.detail.contains("S.other")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn cross_function_edge_carries_witness_chain() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let g = self.a.lock(); self.helper(); } \
             fn helper(&self) { self.inner(); } \
             fn inner(&self) { let h = self.b.lock(); } }",
        )]);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "S.a");
        assert_eq!(r.edges[0].to, "S.b");
        assert_eq!(
            r.edges[0].chain,
            vec!["r::a::S::f", "r::a::S::helper", "r::a::S::inner"]
        );
    }

    #[test]
    fn two_lock_cycle_is_a_deadlock_witness() {
        let r = run(&[(
            "r::a",
            "impl S { fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); } \
             fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); } }",
        )]);
        let cycles: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == SyncRule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 1, "{:?}", r.findings);
        assert_eq!(cycles[0].detail, "lock-order cycle: S.a <-> S.b");
        assert_eq!(cycles[0].chain.len(), 2);
        assert!(cycles[0].chain[0].contains("S.a -> S.b in r::a::S::ab"));
    }

    #[test]
    fn relock_while_held_is_a_self_cycle() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let g = self.a.lock(); let h = self.a.lock(); } }",
        )]);
        let cycles: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == SyncRule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 1, "{:?}", r.findings);
        assert_eq!(cycles[0].detail, "lock-order cycle: S.a");
    }

    #[test]
    fn param_type_unifies_free_fn_with_method_identity() {
        let r = run(&[(
            "r::a",
            "pub struct Queues;\n\
             impl Queues { fn pop(&self, w: usize) { let g = self.ready[w].lock(); } }\n\
             fn steal(queues: &Queues, v: usize) { let g = queues.ready[v].lock(); }",
        )]);
        assert_eq!(r.sites.len(), 2);
        assert_eq!(r.sites[0].id, "Queues.ready");
        assert_eq!(r.sites[1].id, "Queues.ready");
    }

    #[test]
    fn rwlock_read_write_only_with_empty_args() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let g = self.map.read(); } \
             fn io(&self, f: &mut F) { f.read(buf); f.write(buf); } }",
        )]);
        assert_eq!(r.sites.len(), 1, "{:?}", r.sites);
        assert_eq!(r.sites[0].method, "read");
    }

    #[test]
    fn alloc_heavy_callee_under_guard_is_flagged() {
        let r = run(&[(
            "r::a",
            "impl S { fn f(&self) { let g = self.q.lock(); rebuild(); } }\n\
             fn rebuild() { let mut v = Vec::new(); v.push(1); v.extend(o); let s = x.to_vec(); }",
        )]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, SyncRule::HeldAlloc);
        assert!(r.findings[0].detail.contains("r::a::rebuild"));
    }
}
