//! Atomics-protocol pass (DESIGN.md §16): orderings must pair.
//!
//! Scans every function body for atomic operations carrying literal
//! `Ordering::…` arguments, classifies each site by the same identity
//! scheme as the lock analyzer (`Supervisor.poisoned`,
//! `CancelToken.fired`, upper-case statics), and checks the protocol
//! workspace-wide:
//!
//! * **Pairing** — a group with Release-side stores/RMWs but no
//!   Acquire-side load anywhere publishes nothing (its writes are never
//!   observed with a happens-before edge); a group with Acquire loads
//!   but no Release-side writer acquires nothing. Both directions are
//!   findings. `AcqRel`/`SeqCst` RMWs count on both sides.
//! * **Relaxed justification** — a site whose *strongest* ordering is
//!   `Relaxed` must carry an `// ORDERING:` note within the window
//!   (same contract as the line-based `lint-safety` rule, but scoped to
//!   the op and identity instead of the source line).
//! * **compare_exchange failure orderings** — the failure ordering must
//!   not be stronger than the success ordering's load component
//!   (`compare_exchange(_, _, Release, Acquire)` smuggles an acquire in
//!   through the failure path; say so with the success ordering
//!   instead).
//!
//! Sites whose identity cannot be resolved to a `Type.field` path or a
//! `SCREAMING_CASE` static (locals, loop variables, pass-through
//! helpers with ordering *variables*) are excluded from pairing — a
//! false merge would hide real findings — but still checked by the
//! site-local rules.

use crate::callgraph::CallGraph;
use crate::lex::Tok;
use crate::parse::Function;
use crate::syncgraph::{
    lock_identity, param_types, receiver_chain, sync_marked, FnCtx, SyncFinding, SyncRule,
};
use std::collections::BTreeMap;

/// Atomic methods the pass understands.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_nand",
    "fetch_update",
];

/// Memory orderings, weakest to strongest (for the strength compare).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Order {
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Release`.
    Release,
    /// `Ordering::Acquire`.
    Acquire,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// `Ordering::SeqCst`.
    SeqCst,
}

impl Order {
    fn parse(s: &str) -> Option<Order> {
        Some(match s {
            "Relaxed" => Order::Relaxed,
            "Release" => Order::Release,
            "Acquire" => Order::Acquire,
            "AcqRel" => Order::AcqRel,
            "SeqCst" => Order::SeqCst,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Order::Relaxed => "Relaxed",
            Order::Release => "Release",
            Order::Acquire => "Acquire",
            Order::AcqRel => "AcqRel",
            Order::SeqCst => "SeqCst",
        }
    }

    /// Does this ordering include an acquire edge on a load/RMW?
    fn acquires(self) -> bool {
        matches!(self, Order::Acquire | Order::AcqRel | Order::SeqCst)
    }

    /// Does this ordering include a release edge on a store/RMW?
    fn releases(self) -> bool {
        matches!(self, Order::Release | Order::AcqRel | Order::SeqCst)
    }

    /// Strength of the load component of a *success* ordering
    /// (`Release` success performs a relaxed load).
    fn load_strength(self) -> u8 {
        match self {
            Order::Relaxed | Order::Release => 0,
            Order::Acquire | Order::AcqRel => 1,
            Order::SeqCst => 2,
        }
    }

    /// Strength as a cx *failure* ordering.
    fn failure_strength(self) -> u8 {
        match self {
            Order::Relaxed | Order::Release => 0,
            Order::Acquire | Order::AcqRel => 1,
            Order::SeqCst => 2,
        }
    }
}

/// One atomic operation site with literal orderings.
#[derive(Debug, Clone)]
pub struct AtomSite {
    /// Identity (same scheme as lock identities).
    pub id: String,
    /// Operation name (`load`, `store`, `fetch_add`, …).
    pub op: String,
    /// Literal orderings, in argument order.
    pub orders: Vec<Order>,
    /// Source file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Containing function.
    pub function: String,
}

impl AtomSite {
    fn is_cx(&self) -> bool {
        self.op.starts_with("compare_exchange") || self.op == "fetch_update"
    }

    fn is_load(&self) -> bool {
        self.op == "load"
    }

    fn is_store(&self) -> bool {
        self.op == "store"
    }

    /// The success/primary ordering.
    fn primary(&self) -> Order {
        if self.is_cx() && self.orders.len() >= 2 {
            self.orders[self.orders.len() - 2]
        } else {
            *self.orders.first().unwrap_or(&Order::SeqCst)
        }
    }

    /// The cx failure ordering, if present.
    fn failure(&self) -> Option<Order> {
        if self.is_cx() && self.orders.len() >= 2 {
            self.orders.last().copied()
        } else {
            None
        }
    }

    /// Does the site perform an acquiring load?
    fn acquire_side(&self) -> bool {
        if self.is_store() {
            return false;
        }
        if self.is_load() {
            return self.primary().acquires();
        }
        // RMW: the load half acquires under Acquire/AcqRel/SeqCst; a cx
        // failure ordering can acquire too.
        self.primary().acquires() || self.failure().is_some_and(|o| o.acquires())
    }

    /// Does the site perform a releasing store/RMW?
    fn release_side(&self) -> bool {
        !self.is_load() && self.primary().releases()
    }

    /// Strongest ordering anywhere at the site.
    fn strongest(&self) -> Order {
        self.orders.iter().copied().max().unwrap_or(Order::SeqCst)
    }
}

/// Is `id` precise enough to group by? (`Type.field` or an upper-case
/// static — see module docs.)
fn resolvable(id: &str) -> bool {
    let first_upper = id.chars().next().is_some_and(char::is_uppercase);
    if id.contains('.') {
        return first_upper;
    }
    first_upper && id.chars().all(|c| c.is_uppercase() || c == '_' || c.is_ascii_digit())
}

/// Modules exempt from the pass (mirrors the lock analyzer).
fn module_exempt(module: &str) -> bool {
    module == "dagfact_rt::sync"
        || module.starts_with("dagfact_rt::sync::")
        || module.contains("::model")
}

/// Extract every atomic site from one function body.
fn scan_atomics(f: &Function, ctx: &FnCtx) -> Vec<AtomSite> {
    let mut out = Vec::new();
    let toks = match ctx.tokens.get(f.body.0..f.body.1) {
        Some(t) => t,
        None => return out,
    };
    let params = param_types(&ctx.tokens, f.sig);
    let n = toks.len();
    for i in 0..n {
        let Tok::Punct('.') = toks[i].kind else {
            continue;
        };
        let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) else {
            continue;
        };
        if !ATOMIC_OPS.contains(&name.as_str()) {
            continue;
        }
        if !matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Punct('('))) {
            continue;
        }
        // Balanced argument region.
        let open = i + 2;
        let mut depth = 0usize;
        let mut close = open;
        for (j, t) in toks.iter().enumerate().skip(open) {
            match t.kind {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let orders: Vec<Order> = toks[open + 1..close]
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Order::parse(s),
                _ => None,
            })
            .collect();
        if orders.is_empty() {
            continue; // pass-through helpers with ordering variables
        }
        let chain = receiver_chain(toks, i);
        let id = lock_identity(&chain, f, &params);
        out.push(AtomSite {
            id,
            op: name.clone(),
            orders,
            file: ctx.file.clone(),
            line: toks[i + 1].line,
            function: f.qname.clone(),
        });
    }
    out
}

/// Pass output: every classified site plus the findings.
#[derive(Debug, Default)]
pub struct AtomReport {
    /// All sites with literal orderings, sorted by (file, line).
    pub sites: Vec<AtomSite>,
    /// Violations, sorted by (file, line, rule).
    pub findings: Vec<SyncFinding>,
}

/// Run the atomics-protocol pass over the whole graph.
pub fn analyze_atomics(graph: &CallGraph, ctx: &dyn Fn(usize) -> FnCtx) -> AtomReport {
    let mut sites: Vec<AtomSite> = Vec::new();
    let mut ctxs: Vec<FnCtx> = Vec::with_capacity(graph.functions.len());
    for (i, f) in graph.functions.iter().enumerate() {
        let c = ctx(i);
        if !module_exempt(&f.module) {
            sites.extend(scan_atomics(f, &c));
        }
        ctxs.push(c);
    }
    let comments_of: BTreeMap<&str, &FnCtx> = graph
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.qname.as_str(), &ctxs[i]))
        .collect();
    let marked = |s: &AtomSite| {
        comments_of
            .get(s.function.as_str())
            .is_some_and(|c| sync_marked(&c.comments, s.line))
    };

    let mut findings: Vec<SyncFinding> = Vec::new();

    // Site-local rules.
    for s in &sites {
        if s.strongest() == Order::Relaxed && !marked(s) {
            findings.push(SyncFinding {
                rule: SyncRule::UnjustifiedRelaxed,
                file: s.file.clone(),
                line: s.line,
                function: s.function.clone(),
                detail: format!("`{}` {}(Relaxed) without an ORDERING: note", s.id, s.op),
                chain: vec![s.function.clone()],
            });
        }
        if let Some(fo) = s.failure() {
            if fo.failure_strength() > s.primary().load_strength() && !marked(s) {
                findings.push(SyncFinding {
                    rule: SyncRule::CxFailureOrdering,
                    file: s.file.clone(),
                    line: s.line,
                    function: s.function.clone(),
                    detail: format!(
                        "`{}` {} failure ordering {} is stronger than the success load ({})",
                        s.id,
                        s.op,
                        fo.name(),
                        s.primary().name()
                    ),
                    chain: vec![s.function.clone()],
                });
            }
        }
    }

    // Pairing rules, per resolvable identity group.
    let mut groups: BTreeMap<&str, Vec<&AtomSite>> = BTreeMap::new();
    for s in &sites {
        if resolvable(&s.id) {
            groups.entry(s.id.as_str()).or_default().push(s);
        }
    }
    for (id, group) in groups {
        let has_release = group.iter().any(|s| s.release_side());
        let has_acquire = group.iter().any(|s| s.acquire_side());
        let describe = |sel: &dyn Fn(&AtomSite) -> bool| -> Vec<String> {
            group
                .iter()
                .filter(|s| sel(s))
                .map(|s| {
                    format!(
                        "{}({}) in {} ({}:{})",
                        s.op,
                        s.orders.iter().map(|o| o.name()).collect::<Vec<_>>().join(", "),
                        s.function,
                        s.file,
                        s.line
                    )
                })
                .collect()
        };
        if has_release && !has_acquire {
            let offenders: Vec<&&AtomSite> =
                group.iter().filter(|s| s.release_side()).collect();
            if offenders.iter().all(|s| !marked(s)) {
                let first = offenders[0];
                findings.push(SyncFinding {
                    rule: SyncRule::UnpairedRelease,
                    file: first.file.clone(),
                    line: first.line,
                    function: first.function.clone(),
                    detail: format!("`{id}` has Release-side writes but no Acquire load"),
                    chain: describe(&|s| s.release_side()),
                });
            }
        }
        if has_acquire && !has_release {
            let offenders: Vec<&&AtomSite> =
                group.iter().filter(|s| s.acquire_side()).collect();
            if offenders.iter().all(|s| !marked(s)) {
                let first = offenders[0];
                findings.push(SyncFinding {
                    rule: SyncRule::UnpairedAcquire,
                    file: first.file.clone(),
                    line: first.line,
                    function: first.function.clone(),
                    detail: format!("`{id}` has Acquire loads but no Release-side write"),
                    chain: describe(&|s| s.acquire_side()),
                });
            }
        }
    }

    sites.sort_by(|a, b| (&a.file, a.line, &a.id).cmp(&(&b.file, b.line, &b.id)));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.detail).cmp(&(&b.file, b.line, b.rule, &b.detail))
    });
    AtomReport { sites, findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use std::rc::Rc;

    fn run(files: &[(&str, &str)]) -> AtomReport {
        let parsed: Vec<_> = files.iter().map(|(m, s)| parse_file(s, m)).collect();
        let mut meta: Vec<FnCtx> = Vec::new();
        for (i, p) in parsed.iter().enumerate() {
            let toks = Rc::new(p.tokens.clone());
            let comments = Rc::new(p.comments.clone());
            for _ in &p.functions {
                meta.push(FnCtx {
                    file: format!("fixture{i}.rs"),
                    tokens: toks.clone(),
                    comments: comments.clone(),
                });
            }
        }
        let g = CallGraph::build(parsed);
        analyze_atomics(&g, &|i| meta[i].clone())
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let r = run(&[(
            "r::a",
            "impl S { fn pub_(&self) { self.flag.store(true, Ordering::Release); } \
             fn sub(&self) -> bool { self.flag.load(Ordering::Acquire) } }",
        )]);
        assert_eq!(r.sites.len(), 2);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unpaired_release_store_is_flagged() {
        let r = run(&[(
            "r::a",
            "impl S { fn pub_(&self) { self.flag.store(true, Ordering::Release); } \
             fn sub(&self) -> bool { self.flag.load(Ordering::Relaxed) } }",
        )]);
        // The Relaxed load carries no note either — expect both rules.
        let rules: Vec<SyncRule> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&SyncRule::UnpairedRelease), "{:?}", r.findings);
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == SyncRule::UnpairedRelease)
            .unwrap();
        assert_eq!(f.detail, "`S.flag` has Release-side writes but no Acquire load");
        assert!(f.chain[0].starts_with("store(Release) in r::a::S::pub_"));
    }

    #[test]
    fn unpaired_acquire_load_is_flagged() {
        let r = run(&[(
            "r::a",
            "impl S { fn sub(&self) -> bool { self.flag.load(Ordering::Acquire) } }",
        )]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, SyncRule::UnpairedAcquire);
    }

    #[test]
    fn acqrel_rmw_pairs_both_sides() {
        let r = run(&[(
            "r::a",
            "impl S { fn dec(&self) { self.n.fetch_sub(1, Ordering::AcqRel); } }",
        )]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn relaxed_without_note_is_flagged_and_note_suppresses() {
        let r = run(&[(
            "r::a",
            "impl S { fn count(&self) { self.n.fetch_add(1, Ordering::Relaxed); } }",
        )]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, SyncRule::UnjustifiedRelaxed);
        assert_eq!(
            r.findings[0].detail,
            "`S.n` fetch_add(Relaxed) without an ORDERING: note"
        );
        let r = run(&[(
            "r::a",
            "impl S { fn count(&self) {\n // ORDERING: stats only; read after join.\n \
             self.n.fetch_add(1, Ordering::Relaxed); } }",
        )]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn cx_failure_stronger_than_success_load_is_flagged() {
        let r = run(&[(
            "r::a",
            "impl S { fn push(&self) { \
             self.top.compare_exchange(t, t + 1, Ordering::Release, Ordering::Acquire); } }",
        )]);
        let f: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == SyncRule::CxFailureOrdering)
            .collect();
        assert_eq!(f.len(), 1, "{:?}", r.findings);
        assert!(f[0].detail.contains("failure ordering Acquire"));
        // AcqRel success / Acquire failure: load components match.
        let r = run(&[(
            "r::a",
            "impl S { fn push(&self) { \
             self.top.compare_exchange(t, t + 1, Ordering::AcqRel, Ordering::Acquire); } }",
        )]);
        assert!(
            r.findings
                .iter()
                .all(|f| f.rule != SyncRule::CxFailureOrdering),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn unresolvable_locals_skip_pairing_but_not_local_rules() {
        let r = run(&[(
            "r::a",
            "fn f(x: &AtomicBool) { x.load(Ordering::Acquire); }",
        )]);
        // `x` → AtomicBool (bare wrapper type): excluded from pairing.
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let r = run(&[("r::a", "fn f() { n.store(0, Ordering::Relaxed); }")]);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, SyncRule::UnjustifiedRelaxed);
    }

    #[test]
    fn variable_orderings_are_not_sites() {
        let r = run(&[(
            "r::a",
            "impl A { fn load(&self, order: Ordering) -> u32 { self.inner.load(order) } }",
        )]);
        assert!(r.sites.is_empty(), "{:?}", r.sites);
    }
}
