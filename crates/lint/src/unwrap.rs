//! Forbid `.unwrap()` in runtime/solver *library* code.
//!
//! Rust port of the old `tools/lint-unwrap.sh` awk gate, so the
//! exemption logic (cfg-test module stripping, comment skipping, the
//! `rt/src/model/` carve-out) lives in one tested place.
//!
//! An unwrap in an engine or the numeric phase takes the whole worker
//! pool down with a poisoned-lock cascade instead of surfacing a
//! structured `EngineError`/`SolverError` through the fault-tolerant
//! layer. Tests are exempt (`#[cfg(test)]` / `#[cfg(all(test, …))]`
//! `mod` blocks are stripped by brace counting), as are comment-only
//! lines. The `rt/src/model/` carve-out stays with the caller
//! (`lint-safety` skips those files): the loom-style checker backing
//! `rt::sync` cannot route through the shim it implements, and there a
//! poisoned internal lock means a model thread panicked — which must
//! abort exploration (the panic IS the counterexample).

/// One `.unwrap()` offender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnwrapFinding {
    /// 1-based line number.
    pub line: usize,
    /// The offending line, leading whitespace stripped.
    pub excerpt: String,
}

/// Net brace-depth change of a line, ignoring braces in line comments.
/// (Braces inside string literals are miscounted, same as the awk
/// original — the workspace's library code doesn't hit that edge.)
fn braces(line: &str) -> i64 {
    let code = match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    };
    let opens = code.matches('{').count() as i64;
    let closes = code.matches('}').count() as i64;
    opens - closes
}

/// Is this the start of a test-gating cfg attribute?
/// Matches `#[cfg(test)]`, `#[cfg(test,…`, `#[cfg(all(test,…`.
fn is_cfg_test_attr(stripped: &str) -> bool {
    for prefix in ["#[cfg(", "#[cfg(all("] {
        if let Some(rest) = stripped.strip_prefix(prefix) {
            if let Some(rest) = rest.strip_prefix("test") {
                if rest.starts_with(',') || rest.starts_with(')') {
                    return true;
                }
            }
        }
    }
    false
}

/// Scan one file's source for `.unwrap()` in non-test code.
pub fn check_unwrap(src: &str) -> Vec<UnwrapFinding> {
    let mut findings = Vec::new();
    let mut intest = false;
    let mut pending = false;
    let mut depth: i64 = 0;
    let mut opened = false;

    for (i, line) in src.lines().enumerate() {
        let stripped = line.trim_start();
        if intest {
            depth += braces(line);
            if depth > 0 {
                opened = true;
            }
            if opened && depth <= 0 {
                intest = false;
            }
            continue;
        }
        if is_cfg_test_attr(stripped) {
            pending = true;
            continue;
        }
        if pending {
            pending = false;
            let is_mod = (stripped.starts_with("mod ")
                || stripped.starts_with("pub mod "))
                && !stripped.trim_end().ends_with(';');
            if is_mod {
                intest = true;
                depth = braces(line);
                opened = depth > 0;
                if opened && depth <= 0 {
                    intest = false;
                }
                continue;
            }
            // A cfg(test)-gated non-mod item (fn, use): skip just it if
            // it's a single line; the awk original only stripped mods,
            // so we match that behaviour and fall through.
        }
        if stripped.starts_with("//") {
            continue;
        }
        if line.contains(".unwrap()") {
            findings.push(UnwrapFinding {
                line: i + 1,
                excerpt: stripped.to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_lib_code_is_flagged() {
        let f = check_unwrap("fn f() {\n    let x = y.unwrap();\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].excerpt, "let x = y.unwrap();");
    }

    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(check_unwrap(src).is_empty());
    }

    #[test]
    fn cfg_all_test_mod_is_exempt() {
        let src = "#[cfg(all(test, not(loom)))]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(check_unwrap(src).is_empty());
    }

    #[test]
    fn code_after_test_mod_is_still_checked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); }\n}\nfn g() { b.unwrap(); }\n";
        let f = check_unwrap(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn nested_braces_in_test_mod() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        if x { y.unwrap(); }\n    }\n}\n";
        assert!(check_unwrap(src).is_empty());
    }

    #[test]
    fn comment_lines_are_exempt() {
        assert!(check_unwrap("// example: x.unwrap()\n/// doc: y.unwrap()\n").is_empty());
    }

    #[test]
    fn cfg_test_mod_decl_without_body_does_not_strip() {
        // `#[cfg(test)] mod tests;` (file module) has no inline body;
        // subsequent code is live.
        let src = "#[cfg(test)]\nmod tests;\nfn g() { b.unwrap(); }\n";
        let f = check_unwrap(src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn cfg_test_fn_is_not_a_mod() {
        // The awk original only stripped mods; a cfg(test) fn's body is
        // still scanned. Keep that exact behaviour (documented quirk).
        let src = "#[cfg(test)]\nfn helper() { x.unwrap(); }\n";
        assert_eq!(check_unwrap(src).len(), 1);
    }

    #[test]
    fn braces_in_comments_do_not_confuse_depth() {
        let src = "#[cfg(test)]\nmod tests {\n    // closing } in comment\n    fn t() { x.unwrap(); }\n}\nfn g() { b.unwrap(); }\n";
        let f = check_unwrap(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }
}
