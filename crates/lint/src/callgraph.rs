//! Intra-workspace call graph over [`crate::parse`] output.
//!
//! Resolution is deliberately conservative-but-useful:
//!
//! * **Path calls** resolve through the module's `use` imports, then
//!   `crate::` / `self::` / `super::` prefixes, then same-module
//!   siblings, then `Type::method` against every workspace impl of that
//!   type name.
//! * **Method calls** (`x.f()`) have no receiver types to work with, so
//!   `.f(…)` links to *every* workspace function named `f` that sits in
//!   an `impl`/`trait` block — except for a stoplist of std-common names
//!   (`new`, `push`, `lock`, `clone`, …) whose edges would drag the
//!   whole workspace into every hot path. Stoplisted operations are
//!   still visible to the purity rules directly (the rules look at raw
//!   events, not graph edges), so nothing is lost for rule coverage —
//!   only transitive reachability through, say, an unrelated `Foo::len`
//!   is suppressed.
//! * Calls that resolve to nothing in the workspace (std, closures) are
//!   simply absent from the graph; the rules judge them by name.
//!
//! Reachability is a BFS from the declared hot roots, keeping parent
//! pointers so every finding can print its witness chain
//! `root → f → g → offender`.

use crate::parse::{Event, Function, ParsedFile};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Method names too common to use as graph edges: linking `.len()` to
/// every `len` in the workspace would make everything reachable from
/// everything. The purity rules still see these calls as raw events.
pub const METHOD_STOPLIST: &[&str] = &[
    "new", "default", "len", "is_empty", "clone", "push", "pop", "insert", "remove", "get",
    "get_mut", "contains", "contains_key", "iter", "iter_mut", "into_iter", "next", "collect",
    "lock", "read", "write", "wait", "notify_one", "notify_all", "load", "store", "swap",
    "fetch_add", "fetch_sub", "compare_exchange", "compare_exchange_weak", "clear", "drain",
    "extend", "resize", "reserve", "with_capacity", "take", "replace", "as_ref", "as_mut",
    "as_slice", "as_mut_slice", "as_ptr", "as_mut_ptr", "to_vec", "to_string", "to_owned",
    "unwrap", "expect", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "map", "and_then",
    "or_else", "ok", "err", "is_some", "is_none", "is_ok", "is_err", "min", "max", "abs",
    "sqrt", "send", "recv", "join", "spawn", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash",
    "drop", "from", "into", "try_from", "try_into", "index", "index_mut", "deref", "deref_mut",
    "begin", "end", "record", "now", "flush", "push_back", "push_front", "pop_front",
    "pop_back", "split_at", "split_at_mut", "chunks", "chunks_mut", "windows", "first", "last",
    "sort", "sort_by", "sort_unstable", "binary_search", "position", "find", "filter", "fold",
    "sum", "product", "count", "any", "all", "zip", "enumerate", "rev", "skip", "step_by",
    "saturating_sub", "saturating_add", "checked_mul", "checked_add", "checked_sub",
    "wrapping_add", "wrapping_sub", "copy_from_slice", "clone_from_slice", "fill", "swap_remove",
    // Generic dispatch names that alias std combinators or trait hooks:
    // `bool::then` / `Option::and_then` vs `Permutation::then`, and the
    // `PtgProgram::execute` task hook vs the engines' `execute` entry
    // points. Hot implementations must be declared as roots instead
    // (see lint-hotpaths.toml).
    "then", "execute",
];

/// The whole-workspace call graph.
pub struct CallGraph {
    /// All functions, indexed by position.
    pub functions: Vec<Function>,
    /// qname → indices (duplicates possible: cfg-gated twins like the
    /// sync shim's two `mod backend`s).
    pub by_qname: HashMap<String, Vec<usize>>,
    /// Adjacency: caller index → callee indices (deduped).
    pub edges: Vec<Vec<usize>>,
}

/// A function index together with the call-site line that reached it.
#[derive(Debug, Clone, Copy)]
struct Resolved {
    idx: usize,
}

impl CallGraph {
    /// Build the graph from parsed files. `files` pairs each parse
    /// result with its module path (already baked into the functions).
    pub fn build(files: Vec<ParsedFile>) -> CallGraph {
        let mut functions = Vec::new();
        // Merged import maps: module → alias → path.
        let mut imports: HashMap<String, HashMap<String, Vec<String>>> = HashMap::new();
        for f in files {
            functions.extend(f.functions);
            for (m, map) in f.imports {
                imports.entry(m).or_default().extend(map);
            }
        }

        let mut by_qname: HashMap<String, Vec<usize>> = HashMap::new();
        // (self_type, name) → indices, and name → indices for methods.
        let mut by_typefn: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut by_method: HashMap<String, Vec<usize>> = HashMap::new();
        // (module, name) → indices for free functions.
        let mut by_modfn: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (i, f) in functions.iter().enumerate() {
            by_qname.entry(f.qname.clone()).or_default().push(i);
            if let Some(t) = &f.self_type {
                by_typefn
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
                by_method.entry(f.name.clone()).or_default().push(i);
            } else {
                by_modfn
                    .entry((f.module.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }

        let empty = HashMap::new();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); functions.len()];
        for (i, f) in functions.iter().enumerate() {
            let imp = imports.get(&f.module).unwrap_or(&empty);
            let mut out: Vec<usize> = Vec::new();
            for ev in &f.events {
                match ev {
                    Event::Call { path, .. } => {
                        for r in resolve_path(
                            path, f, imp, &by_qname, &by_typefn, &by_modfn,
                        ) {
                            out.push(r.idx);
                        }
                    }
                    Event::Method { name, .. }
                        if !METHOD_STOPLIST.contains(&name.as_str()) =>
                    {
                        out.extend(by_method.get(name).into_iter().flatten().copied());
                    }
                    _ => {}
                }
            }
            out.sort_unstable();
            out.dedup();
            out.retain(|&j| j != i); // self-loops add nothing
            edges[i] = out;
        }

        CallGraph {
            functions,
            by_qname,
            edges,
        }
    }

    /// BFS from `roots` (function indices). Returns, for each reached
    /// function, the index it was first reached from (roots map to
    /// themselves).
    pub fn reach(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut q = VecDeque::new();
        for &r in roots {
            if let Entry::Vacant(e) = parent.entry(r) {
                e.insert(r);
                q.push_back(r);
            }
        }
        while let Some(i) = q.pop_front() {
            for &j in &self.edges[i] {
                if let Entry::Vacant(e) = parent.entry(j) {
                    e.insert(i);
                    q.push_back(j);
                }
            }
        }
        parent
    }

    /// Witness chain `root → … → idx` as qnames, using `parent` from
    /// [`Self::reach`].
    pub fn witness(&self, parent: &HashMap<usize, usize>, mut idx: usize) -> Vec<String> {
        let mut chain = vec![self.functions[idx].qname.clone()];
        let mut guard = 0usize;
        while let Some(&p) = parent.get(&idx) {
            if p == idx || guard > self.functions.len() {
                break;
            }
            chain.push(self.functions[p].qname.clone());
            idx = p;
            guard += 1;
        }
        chain.reverse();
        chain
    }
}

fn resolve_path(
    path: &[String],
    caller: &Function,
    imports: &HashMap<String, Vec<String>>,
    by_qname: &HashMap<String, Vec<usize>>,
    by_typefn: &HashMap<(String, String), Vec<usize>>,
    by_modfn: &HashMap<(String, String), Vec<usize>>,
) -> Vec<Resolved> {
    let mut out = Vec::new();
    if path.is_empty() {
        return out;
    }
    let crate_root = caller
        .module
        .split("::")
        .next()
        .unwrap_or(&caller.module)
        .to_string();

    // Expand the leading segment through imports / crate / self / super /
    // Self into absolute candidate paths.
    let mut candidates: Vec<Vec<String>> = Vec::new();
    let head = path[0].as_str();
    match head {
        "crate" => {
            let mut p = vec![crate_root.clone()];
            p.extend(path[1..].iter().cloned());
            candidates.push(p);
        }
        "self" => {
            let mut p: Vec<String> = caller.module.split("::").map(str::to_string).collect();
            p.extend(path[1..].iter().cloned());
            candidates.push(p);
        }
        "super" => {
            let mut segs: Vec<String> = caller.module.split("::").map(str::to_string).collect();
            let mut rest = path;
            while rest.first().map(String::as_str) == Some("super") {
                segs.pop();
                rest = &rest[1..];
            }
            segs.extend(rest.iter().cloned());
            candidates.push(segs);
        }
        "Self" => {
            if let Some(t) = &caller.self_type {
                let mut p: Vec<String> =
                    caller.module.split("::").map(str::to_string).collect();
                p.push(t.clone());
                p.extend(path[1..].iter().cloned());
                candidates.push(p);
            }
        }
        _ => {
            if let Some(full) = imports.get(head) {
                let mut p = full.clone();
                p.extend(path[1..].iter().cloned());
                // The imported path itself may start with crate/self/super.
                match p.first().map(String::as_str) {
                    Some("crate") => {
                        let mut q = vec![crate_root.clone()];
                        q.extend(p[1..].iter().cloned());
                        candidates.push(q);
                    }
                    Some("self") => {
                        let mut q: Vec<String> =
                            caller.module.split("::").map(str::to_string).collect();
                        q.extend(p[1..].iter().cloned());
                        candidates.push(q);
                    }
                    _ => candidates.push(p),
                }
            }
            // Same-module sibling: `helper(…)`.
            if path.len() == 1 {
                if let Some(v) = by_modfn.get(&(caller.module.clone(), path[0].clone())) {
                    out.extend(v.iter().map(|&idx| Resolved { idx }));
                }
            }
            // Unqualified absolute (dagfact_x::…) or module-relative.
            let mut p: Vec<String> = caller.module.split("::").map(str::to_string).collect();
            p.extend(path.iter().cloned());
            candidates.push(p);
            candidates.push(path.to_vec());
        }
    }

    for cand in &candidates {
        let q = cand.join("::");
        if let Some(v) = by_qname.get(&q) {
            out.extend(v.iter().map(|&idx| Resolved { idx }));
        }
    }

    // `Type::method(…)` — last two segments against every workspace impl
    // of a type with that name (path qualifiers may not match module
    // layout, e.g. re-exports).
    if out.is_empty() && path.len() >= 2 {
        let ty = &path[path.len() - 2];
        let name = &path[path.len() - 1];
        if ty.chars().next().is_some_and(char::is_uppercase) {
            if let Some(v) = by_typefn.get(&(ty.clone(), name.clone())) {
                out.extend(v.iter().map(|&idx| Resolved { idx }));
            }
        }
    }

    out.sort_unstable_by_key(|r| r.idx);
    out.dedup_by_key(|r| r.idx);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(
            files
                .iter()
                .map(|(module, src)| parse_file(src, module))
                .collect(),
        )
    }

    fn idx(g: &CallGraph, qname: &str) -> usize {
        g.by_qname[qname][0]
    }

    #[test]
    fn same_module_sibling_call() {
        let g = graph(&[("c::m", "fn a() { b(); } fn b() {}")]);
        let (a, b) = (idx(&g, "c::m::a"), idx(&g, "c::m::b"));
        assert!(g.edges[a].contains(&b));
    }

    #[test]
    fn cross_module_via_import() {
        let g = graph(&[
            ("c::x", "use crate::y::helper; fn a() { helper(); }"),
            ("c::y", "pub fn helper() {}"),
        ]);
        assert!(g.edges[idx(&g, "c::x::a")].contains(&idx(&g, "c::y::helper")));
    }

    #[test]
    fn crate_prefixed_path_call() {
        let g = graph(&[
            ("c::x", "fn a() { crate::y::helper(); }"),
            ("c::y", "pub fn helper() {}"),
        ]);
        assert!(g.edges[idx(&g, "c::x::a")].contains(&idx(&g, "c::y::helper")));
    }

    #[test]
    fn super_prefixed_path_call() {
        let g = graph(&[
            ("c::x::inner", "fn a() { super::helper(); }"),
            ("c::x", "pub fn helper() {}"),
        ]);
        assert!(g.edges[idx(&g, "c::x::inner::a")].contains(&idx(&g, "c::x::helper")));
    }

    #[test]
    fn type_method_call_resolves_across_modules() {
        let g = graph(&[
            ("c::x", "fn a() { Panel::pack(p); }"),
            ("c::y", "impl Panel { pub fn pack(&self) {} }"),
        ]);
        assert!(g.edges[idx(&g, "c::x::a")].contains(&idx(&g, "c::y::Panel::pack")));
    }

    #[test]
    fn self_method_call_within_impl() {
        let g = graph(&[(
            "c::m",
            "impl S { fn a(&self) { self.helper_step(); } fn helper_step(&self) {} }",
        )]);
        assert!(g.edges[idx(&g, "c::m::S::a")].contains(&idx(&g, "c::m::S::helper_step")));
    }

    #[test]
    fn stoplisted_method_names_do_not_create_edges() {
        let g = graph(&[
            ("c::x", "fn a() { v.push(1); }"),
            ("c::y", "impl Q { pub fn push(&self, x: u8) {} }"),
        ]);
        assert!(g.edges[idx(&g, "c::x::a")].is_empty());
    }

    #[test]
    fn reach_and_witness_chain() {
        let g = graph(&[(
            "c::m",
            "fn root() { mid(); } fn mid() { leaf(); } fn leaf() {} fn unrelated() {}",
        )]);
        let r = idx(&g, "c::m::root");
        let parent = g.reach(&[r]);
        let leaf = idx(&g, "c::m::leaf");
        assert!(parent.contains_key(&leaf));
        assert!(!parent.contains_key(&idx(&g, "c::m::unrelated")));
        assert_eq!(
            g.witness(&parent, leaf),
            vec!["c::m::root", "c::m::mid", "c::m::leaf"]
        );
    }

    #[test]
    fn duplicate_qnames_both_reachable() {
        // cfg-gated twin modules (like the sync shim backends) produce
        // duplicate qnames; both bodies must be analyzed.
        let g = graph(&[(
            "c::m",
            "mod backend { pub fn go() { one(); } fn one() {} }\n\
             mod backend { pub fn go() { two(); } fn two() {} }",
        )]);
        assert_eq!(g.by_qname["c::m::backend::go"].len(), 2);
        let roots = g.by_qname["c::m::backend::go"].clone();
        let parent = g.reach(&roots);
        assert!(parent.contains_key(&idx(&g, "c::m::backend::one")));
        assert!(parent.contains_key(&idx(&g, "c::m::backend::two")));
    }

    #[test]
    fn self_type_assoc_call() {
        let g = graph(&[(
            "c::m",
            "impl S { fn a() { Self::b(); } fn b() {} }",
        )]);
        assert!(g.edges[idx(&g, "c::m::S::a")].contains(&idx(&g, "c::m::S::b")));
    }
}
