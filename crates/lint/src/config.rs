//! `lint-hotpaths.toml` — the checked-in declaration of hot roots.
//!
//! Minimal TOML subset, parsed by hand (no dependencies): comments,
//! `[[root]]` array-of-tables headers, and `key = "string"` pairs.
//! Anything else is a loud error — the config is ours, it doesn't need
//! to accept the world.
//!
//! ```toml
//! # kernels
//! [[root]]
//! path = "dagfact_kernels::gemm::gemm"
//! note = "supernode update inner loop"
//! ```

/// One declared hot root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotRoot {
    /// Fully qualified function path (`crate::module::fn` or
    /// `crate::module::Type::method`).
    pub path: String,
    /// Why this is a hot root (reported alongside findings).
    pub note: String,
}

/// Parse the hot-roots config. Returns an error string naming the line
/// on any unrecognized construct.
pub fn parse_hotpaths(src: &str) -> Result<Vec<HotRoot>, String> {
    let mut roots: Vec<HotRoot> = Vec::new();
    let mut in_root = false;
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[root]]" {
            roots.push(HotRoot {
                path: String::new(),
                note: String::new(),
            });
            in_root = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "lint-hotpaths.toml:{lineno}: unknown table {line:?} (only [[root]] is supported)"
            ));
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(format!(
                "lint-hotpaths.toml:{lineno}: expected `key = \"value\"`, got {line:?}"
            ));
        };
        if !in_root {
            return Err(format!(
                "lint-hotpaths.toml:{lineno}: key outside a [[root]] table"
            ));
        }
        let key = key.trim();
        let val = val.trim();
        let val = val
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                format!("lint-hotpaths.toml:{lineno}: value must be a double-quoted string")
            })?;
        let Some(root) = roots.last_mut() else {
            return Err(format!("lint-hotpaths.toml:{lineno}: key before any [[root]]"));
        };
        match key {
            "path" => root.path = val.to_string(),
            "note" => root.note = val.to_string(),
            _ => {
                return Err(format!(
                    "lint-hotpaths.toml:{lineno}: unknown key {key:?} (path, note)"
                ))
            }
        }
    }
    for (i, r) in roots.iter().enumerate() {
        if r.path.is_empty() {
            return Err(format!("lint-hotpaths.toml: [[root]] #{} has no path", i + 1));
        }
    }
    Ok(roots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_roots_with_comments() {
        let src = "# kernels\n[[root]]\npath = \"a::b::c\"\nnote = \"why\"\n\n[[root]]\npath = \"d::e\"\n";
        let roots = parse_hotpaths(src).unwrap();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].path, "a::b::c");
        assert_eq!(roots[0].note, "why");
        assert_eq!(roots[1].note, "");
    }

    #[test]
    fn rejects_unknown_constructs() {
        assert!(parse_hotpaths("[server]\n").is_err());
        assert!(parse_hotpaths("[[root]]\nbad = \"x\"\n").is_err());
        assert!(parse_hotpaths("path = \"orphan\"\n").is_err());
        assert!(parse_hotpaths("[[root]]\npath = unquoted\n").is_err());
        assert!(parse_hotpaths("[[root]]\nnote = \"no path\"\n").is_err());
    }
}
