//! `lint-safety`: enforce the SAFETY-contract, Relaxed-justification and
//! sync-shim rules over the concurrency-bearing crates (rt, core,
//! kernels), plus the no-`.unwrap()` rule over runtime/solver library
//! code. Exits non-zero listing `file:line` for every violation.
//!
//! Scope:
//! * `crates/rt/src` — all three rules (the shim rule exempts the shim
//!   itself, `sync.rs`, and the model checker under `model/`);
//! * `crates/core/src`, `crates/kernels/src` — SAFETY + ORDERING;
//! * each crate's `tests/` and `examples/` — SAFETY only;
//! * `crates/rt/src` (minus `model/`) and `crates/core/src` — the
//!   unwrap rule (see [`dagfact_lint::unwrap`]): an unwrap in an engine
//!   or the numeric phase takes the worker pool down with a
//!   poisoned-lock cascade instead of surfacing a structured error.
//!   `#[cfg(test)]` mod blocks are stripped; `rt/src/model/` is exempt
//!   because there a panic IS the model-checker counterexample.

use dagfact_lint::unwrap::check_unwrap;
use dagfact_lint::{check_source, Finding, Options};
use std::path::{Path, PathBuf};

/// Directories gated by the unwrap rule (library code only — tests and
/// examples may unwrap freely).
const UNWRAP_DIRS: &[&str] = &["crates/rt/src", "crates/core/src"];

/// The crates whose concurrency code the lint gates.
const CRATES: &[&str] = &["crates/rt", "crates/core", "crates/kernels"];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// The shim and the model checker implement the primitives the rest of
/// the runtime must go through — they are allowed raw `std::sync`.
fn shim_exempt(path: &Path) -> bool {
    let p = path.to_string_lossy();
    p.ends_with("rt/src/sync.rs") || p.contains("rt/src/model/")
}

fn options_for(crate_dir: &str, path: &Path, under: &str) -> Options {
    match under {
        "src" => {
            if crate_dir.ends_with("/rt") && !shim_exempt(path) {
                Options::rt_lib()
            } else {
                Options::lib()
            }
        }
        _ => Options::tests(),
    }
}

fn main() {
    // Run from the workspace root regardless of invocation directory
    // (cargo run sets CWD to the workspace root already; a direct binary
    // invocation may not).
    if !Path::new("crates").is_dir() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let root = Path::new(&manifest).join("../..");
            let _ = std::env::set_current_dir(root);
        }
    }

    let mut total: Vec<(PathBuf, Finding)> = Vec::new();
    let mut nfiles = 0usize;
    for crate_dir in CRATES {
        for under in ["src", "tests", "examples"] {
            let dir = Path::new(crate_dir).join(under);
            let mut files = Vec::new();
            collect_rs(&dir, &mut files);
            for path in files {
                let Ok(src) = std::fs::read_to_string(&path) else {
                    continue;
                };
                nfiles += 1;
                let opts = options_for(crate_dir, &path, under);
                for finding in check_source(&src, opts) {
                    total.push((path.clone(), finding));
                }
            }
        }
    }

    // The unwrap rule: rt + core library sources, model/ exempt.
    let mut unwraps: Vec<(PathBuf, usize, String)> = Vec::new();
    for dir in UNWRAP_DIRS {
        let mut files = Vec::new();
        collect_rs(Path::new(dir), &mut files);
        for path in files {
            if path.to_string_lossy().contains("rt/src/model/") {
                continue;
            }
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            for f in check_unwrap(&src) {
                unwraps.push((path.clone(), f.line, f.excerpt));
            }
        }
    }

    if total.is_empty() && unwraps.is_empty() {
        println!("lint-safety: clean ({nfiles} files, zero exceptions)");
        return;
    }
    if !total.is_empty() {
        eprintln!("lint-safety: {} violation(s):", total.len());
        for (path, f) in &total {
            eprintln!("{}:{}: {} — {}", path.display(), f.line, f.rule, f.excerpt);
        }
    }
    if !unwraps.is_empty() {
        eprintln!(
            "lint-safety: .unwrap() is forbidden in library code (use expect with\n\
             a message, a structured error, or the poison-transparent rt::sync locks):"
        );
        for (path, line, excerpt) in &unwraps {
            eprintln!("{}:{line}: {excerpt}", path.display());
        }
    }
    std::process::exit(1);
}
