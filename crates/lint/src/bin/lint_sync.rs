//! `lint-sync`: lock-discipline & atomics-protocol analyzer.
//!
//! Parses every workspace crate's library sources, builds the
//! module-resolved call graph, and runs two passes (DESIGN.md §16):
//!
//! * the **lock-order graph** (`dagfact_lint::syncgraph`) — every
//!   `Mutex`/`RwLock` acquisition classified by lock identity, edges
//!   where a guard is provably live across another acquisition
//!   (including cross-function holds, with BFS witness chains), cycles
//!   reported as potential-deadlock witnesses, plus the
//!   held-across-blocking / alloc-heavy-callee rules;
//! * the **atomics pairing pass** (`dagfact_lint::atomics`) — every
//!   Release-side write needs an Acquire-side load somewhere (and vice
//!   versa), all-Relaxed sites need `// ORDERING:` notes, and
//!   `compare_exchange` failure orderings must not out-rank the success
//!   ordering's load component.
//!
//! Findings are gated against `tools/lint-sync-baseline.json` exactly
//! like `lint-hot`: new findings fail, stale baseline keys fail (the
//! burn-down must be recorded), `--update-baseline` rewrites. The
//! machine-readable report — including the full lock graph, so the
//! before/after of a lock-removal PR is diffable — lands in
//! `results/lint-sync.json` via the shared emitter.

use dagfact_bench::{write_results, Json};
use dagfact_lint::atomics::{analyze_atomics, AtomReport};
use dagfact_lint::baseline::Baseline;
use dagfact_lint::callgraph::CallGraph;
use dagfact_lint::lex::{Comment, Token};
use dagfact_lint::parse::parse_file;
use dagfact_lint::syncgraph::{analyze, FnCtx, SyncFinding, SyncReport};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// One parsed file's lexical context: (path, tokens, comments), shared
/// with every function the file contributes to the graph.
type FileMeta = (String, Rc<Vec<Token>>, Rc<Vec<Comment>>);

const BASELINE_PATH: &str = "tools/lint-sync-baseline.json";
const REPORT_NAME: &str = "lint-sync";

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// Module path for a library source file (same convention as lint-hot):
/// `crates/rt/src/foo/bar.rs` → `dagfact_rt::foo::bar`.
fn module_path(rel: &Path) -> Option<String> {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    if comps.len() < 4 || comps[0] != "crates" || comps[2] != "src" {
        return None;
    }
    let krate = format!("dagfact_{}", comps[1].replace('-', "_"));
    let mut segs = vec![krate];
    let rest = &comps[3..];
    for (i, seg) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = seg.strip_suffix(".rs").unwrap_or(seg);
            if !matches!(stem, "lib" | "main" | "mod") {
                segs.push(stem.to_string());
            }
        } else {
            segs.push(seg.to_string());
        }
    }
    Some(segs.join("::"))
}

fn finding_json(f: &SyncFinding) -> Json {
    Json::obj()
        .field("rule", f.rule.key())
        .field("file", f.file.as_str())
        .field("line", f.line)
        .field("function", f.function.as_str())
        .field("detail", f.detail.as_str())
        .field("key", f.key())
        .field("chain", f.chain.clone())
}

fn write_report(sync: &SyncReport, atoms: &AtomReport, findings: &[SyncFinding], nfiles: usize, nfns: usize) {
    let sites: Vec<Json> = sync
        .sites
        .iter()
        .map(|s| {
            Json::obj()
                .field("id", s.id.as_str())
                .field("method", s.method.as_str())
                .field("file", s.file.as_str())
                .field("line", s.line)
                .field("function", s.function.as_str())
        })
        .collect();
    let edges: Vec<Json> = sync
        .edges
        .iter()
        .map(|e| {
            Json::obj()
                .field("from", e.from.as_str())
                .field("to", e.to.as_str())
                .field("function", e.function.as_str())
                .field("file", e.file.as_str())
                .field("line", e.line)
                .field("chain", e.chain.clone())
        })
        .collect();
    let atom_sites: Vec<Json> = atoms
        .sites
        .iter()
        .map(|s| {
            Json::obj()
                .field("id", s.id.as_str())
                .field("op", s.op.as_str())
                .field(
                    "orders",
                    s.orders.iter().map(|o| format!("{o:?}")).collect::<Vec<_>>(),
                )
                .field("file", s.file.as_str())
                .field("line", s.line)
                .field("function", s.function.as_str())
        })
        .collect();
    let doc = Json::obj()
        .field("lint", "lint-sync")
        .field("files", nfiles)
        .field("functions", nfns)
        .field(
            "lock_graph",
            Json::obj()
                .field("sites", Json::Arr(sites))
                .field("edges", Json::Arr(edges)),
        )
        .field("atomic_sites", Json::Arr(atom_sites))
        .field(
            "findings",
            Json::Arr(findings.iter().map(finding_json).collect()),
        );
    if let Err(e) = write_results(REPORT_NAME, &doc) {
        eprintln!("lint-sync: warning: could not write results/{REPORT_NAME}.json: {e}");
    }
}

fn main() {
    let update_baseline = std::env::args().any(|a| a == "--update-baseline");

    // Run from the workspace root regardless of invocation directory.
    if !Path::new("crates").is_dir() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let root = Path::new(&manifest).join("../..");
            let _ = std::env::set_current_dir(root);
        }
    }

    // 1. Parse every library source in the workspace.
    let mut crate_dirs = Vec::new();
    if let Ok(entries) = std::fs::read_dir("crates") {
        for e in entries.flatten() {
            let src = e.path().join("src");
            if src.is_dir() {
                crate_dirs.push(src);
            }
        }
    }
    crate_dirs.sort();

    let mut parsed = Vec::new();
    // Per-function context, aligned with the graph's function order
    // (CallGraph::build concatenates in input order).
    let mut file_meta: Vec<FileMeta> = Vec::new();
    let mut nfiles = 0usize;
    for dir in &crate_dirs {
        let mut files = Vec::new();
        collect_rs(dir, &mut files);
        for path in files {
            let rel = path.clone();
            let Some(module) = module_path(&rel) else {
                continue;
            };
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            nfiles += 1;
            let pf = parse_file(&src, &module);
            let tokens = Rc::new(pf.tokens.clone());
            let comments = Rc::new(pf.comments.clone());
            let rel_str = rel.to_string_lossy().into_owned();
            for _ in 0..pf.functions.len() {
                file_meta.push((rel_str.clone(), tokens.clone(), comments.clone()));
            }
            parsed.push(pf);
        }
    }

    let graph = CallGraph::build(parsed);
    assert_eq!(
        graph.functions.len(),
        file_meta.len(),
        "file metadata misaligned with graph functions"
    );
    let ctx = |i: usize| -> FnCtx {
        let (file, tokens, comments) = &file_meta[i];
        FnCtx {
            file: file.clone(),
            tokens: tokens.clone(),
            comments: comments.clone(),
        }
    };

    // 2. Both passes; one merged, ordered finding list.
    let sync = analyze(&graph, &ctx);
    let atoms = analyze_atomics(&graph, &ctx);
    let mut findings: Vec<SyncFinding> = Vec::new();
    findings.extend(sync.findings.iter().cloned());
    findings.extend(atoms.findings.iter().cloned());
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.detail).cmp(&(&b.file, b.line, b.rule, &b.detail))
    });

    write_report(&sync, &atoms, &findings, nfiles, graph.functions.len());

    // 3. Gate against the baseline.
    let baseline = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(s) => match Baseline::from_json(&s) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lint-sync: {BASELINE_PATH}: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => Baseline::default(),
    };

    if update_baseline {
        let mut b = Baseline::default();
        for f in &findings {
            b.keys.insert(f.key());
        }
        if let Err(e) = std::fs::write(BASELINE_PATH, b.to_json()) {
            eprintln!("lint-sync: cannot write {BASELINE_PATH}: {e}");
            std::process::exit(2);
        }
        println!(
            "lint-sync: baseline updated — {} grandfathered finding(s) ({} files, {} fns, {} \
             lock sites, {} lock edges, {} atomic sites)",
            b.keys.len(),
            nfiles,
            graph.functions.len(),
            sync.sites.len(),
            sync.edges.len(),
            atoms.sites.len()
        );
        return;
    }

    let keys: Vec<String> = findings.iter().map(|f| f.key()).collect();
    let drift = baseline.drift(keys.iter().map(String::as_str));

    if drift.is_clean() {
        println!(
            "lint-sync: clean — {} files, {} functions; lock graph: {} sites, {} edges; {} \
             atomic sites; {} baselined finding(s), 0 new (report: results/{REPORT_NAME}.json)",
            nfiles,
            graph.functions.len(),
            sync.sites.len(),
            sync.edges.len(),
            atoms.sites.len(),
            baseline.keys.len()
        );
        return;
    }

    if !drift.new.is_empty() {
        eprintln!(
            "lint-sync: {} NEW sync-discipline violation(s) (not in {BASELINE_PATH}):",
            drift.new.len()
        );
        for f in &findings {
            if drift.new.contains(&f.key()) {
                eprintln!("\n  {}:{}: [{}] {} in {}", f.file, f.line, f.rule, f.detail, f.function);
                for link in &f.chain {
                    eprintln!("    via: {link}");
                }
            }
        }
        eprintln!(
            "\n  Fix the violation, add a justification marker (// SYNC: / // ORDERING:), or — \
             as a last resort — grandfather it:\n    cargo run -q -p dagfact-lint --bin \
             lint-sync -- --update-baseline"
        );
    }
    if !drift.stale.is_empty() {
        eprintln!(
            "\nlint-sync: {} baseline key(s) no longer fire — debt was burned down. Record the \
             win:",
            drift.stale.len()
        );
        for k in &drift.stale {
            eprintln!("  - {k}");
        }
        eprintln!(
            "  Re-baseline:\n    cargo run -q -p dagfact-lint --bin lint-sync -- --update-baseline"
        );
    }
    std::process::exit(1);
}
