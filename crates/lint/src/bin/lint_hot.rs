//! `lint-hot`: hot-path purity analyzer for the dagfact workspace.
//!
//! Parses every workspace crate's library sources, builds the
//! module-resolved intra-workspace call graph, and checks every function
//! reachable from the hot roots declared in `lint-hotpaths.toml` against
//! the purity rules (no allocation, no locks, no implicit panics, no
//! unjustified indexing, no blocking I/O, no stray tracing — see
//! `dagfact_lint::hotpath`). Each finding is reported with its witness
//! call chain from a hot root.
//!
//! Findings are gated against the committed baseline
//! `tools/lint-hot-baseline.json`:
//!
//! * findings **not** in the baseline are regressions → exit 1;
//! * baseline keys with no matching finding are burned-down debt that
//!   must be recorded → also exit 1, with the exact command to do so;
//! * `--update-baseline` rewrites the baseline to the current findings.
//!
//! A machine-readable report always lands in `results/lint-hot.json`.

use dagfact_lint::baseline::Baseline;
use dagfact_lint::callgraph::CallGraph;
use dagfact_lint::config::parse_hotpaths;
use dagfact_lint::hotpath::{check_hot_paths, HotFinding};
use dagfact_lint::lex::Comment;
use dagfact_lint::parse::parse_file;
use std::path::{Path, PathBuf};

const HOTPATHS_TOML: &str = "lint-hotpaths.toml";
const BASELINE_PATH: &str = "tools/lint-hot-baseline.json";
const REPORT_PATH: &str = "results/lint-hot.json";

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// Module path for a library source file:
/// `crates/rt/src/foo/bar.rs` → `dagfact_rt::foo::bar`;
/// `lib.rs` / `main.rs` / `mod.rs` name the enclosing module.
fn module_path(rel: &Path) -> Option<String> {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    // ["crates", "<dir>", "src", ...]
    if comps.len() < 4 || comps[0] != "crates" || comps[2] != "src" {
        return None;
    }
    let krate = format!("dagfact_{}", comps[1].replace('-', "_"));
    let mut segs = vec![krate];
    let rest = &comps[3..];
    for (i, seg) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = seg.strip_suffix(".rs").unwrap_or(seg);
            if !matches!(stem, "lib" | "main" | "mod") {
                segs.push(stem.to_string());
            }
        } else {
            segs.push(seg.to_string());
        }
    }
    Some(segs.join("::"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_report(findings: &[HotFinding], nfiles: usize, nfns: usize, nreach: usize) {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files\": {nfiles},\n"));
    s.push_str(&format!("  \"functions\": {nfns},\n"));
    s.push_str(&format!("  \"reachable\": {nreach},\n"));
    s.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"rule\": \"{}\", ", f.rule.key()));
        s.push_str(&format!("\"file\": \"{}\", ", json_escape(&f.file)));
        s.push_str(&format!("\"line\": {}, ", f.line));
        s.push_str(&format!("\"function\": \"{}\", ", json_escape(&f.function)));
        s.push_str(&format!("\"detail\": \"{}\", ", json_escape(&f.detail)));
        s.push_str(&format!("\"key\": \"{}\", ", json_escape(&f.key())));
        s.push_str("\"chain\": [");
        for (j, link) in f.chain.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", json_escape(link)));
        }
        s.push_str("]}");
        if i + 1 < findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    let _ = std::fs::create_dir_all("results");
    if let Err(e) = std::fs::write(REPORT_PATH, s) {
        eprintln!("lint-hot: warning: could not write {REPORT_PATH}: {e}");
    }
}

fn main() {
    let update_baseline = std::env::args().any(|a| a == "--update-baseline");

    // Run from the workspace root regardless of invocation directory.
    if !Path::new("crates").is_dir() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let root = Path::new(&manifest).join("../..");
            let _ = std::env::set_current_dir(root);
        }
    }

    // 1. Parse every library source in the workspace.
    let mut crate_dirs = Vec::new();
    if let Ok(entries) = std::fs::read_dir("crates") {
        for e in entries.flatten() {
            let src = e.path().join("src");
            if src.is_dir() {
                crate_dirs.push(src);
            }
        }
    }
    crate_dirs.sort();

    let mut parsed = Vec::new();
    // Per-function (file, comments) lookup, aligned with the graph's
    // function order (CallGraph::build concatenates in input order).
    let mut file_meta: Vec<(String, std::rc::Rc<Vec<Comment>>)> = Vec::new();
    let mut nfiles = 0usize;
    for dir in &crate_dirs {
        let mut files = Vec::new();
        collect_rs(dir, &mut files);
        for path in files {
            let rel = path.clone();
            let Some(module) = module_path(&rel) else {
                continue;
            };
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            nfiles += 1;
            let pf = parse_file(&src, &module);
            let comments = std::rc::Rc::new(pf.comments.clone());
            let rel_str = rel.to_string_lossy().into_owned();
            for _ in 0..pf.functions.len() {
                file_meta.push((rel_str.clone(), comments.clone()));
            }
            parsed.push(pf);
        }
    }

    let graph = CallGraph::build(parsed);
    assert_eq!(
        graph.functions.len(),
        file_meta.len(),
        "file metadata misaligned with graph functions"
    );

    // 2. Resolve the declared hot roots.
    let toml = match std::fs::read_to_string(HOTPATHS_TOML) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint-hot: cannot read {HOTPATHS_TOML}: {e}");
            std::process::exit(2);
        }
    };
    let roots_cfg = match parse_hotpaths(&toml) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint-hot: {e}");
            std::process::exit(2);
        }
    };
    let mut roots: Vec<usize> = Vec::new();
    let mut missing = Vec::new();
    for r in &roots_cfg {
        match graph.by_qname.get(&r.path) {
            Some(v) => roots.extend(v.iter().copied()),
            None => missing.push(r.path.clone()),
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "lint-hot: {} hot root(s) in {HOTPATHS_TOML} did not resolve to any workspace \
             function (renamed or removed?):",
            missing.len()
        );
        for m in &missing {
            eprintln!("  {m}");
        }
        std::process::exit(2);
    }

    // 3. Check purity of everything reachable.
    let nreach = graph.reach(&roots).len();
    let findings = check_hot_paths(&graph, &roots, &|i| {
        let (file, comments) = &file_meta[i];
        (file.clone(), comments.as_ref().clone())
    });

    write_report(&findings, nfiles, graph.functions.len(), nreach);

    // 4. Gate against the baseline.
    let baseline = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(s) => match Baseline::from_json(&s) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lint-hot: {BASELINE_PATH}: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => Baseline::default(),
    };

    if update_baseline {
        let mut b = Baseline::default();
        for f in &findings {
            b.keys.insert(f.key());
        }
        if let Err(e) = std::fs::write(BASELINE_PATH, b.to_json()) {
            eprintln!("lint-hot: cannot write {BASELINE_PATH}: {e}");
            std::process::exit(2);
        }
        println!(
            "lint-hot: baseline updated — {} grandfathered finding(s) ({} files, {} fns, {} \
             reachable from {} roots)",
            b.keys.len(),
            nfiles,
            graph.functions.len(),
            nreach,
            roots_cfg.len()
        );
        return;
    }

    let keys: Vec<String> = findings.iter().map(|f| f.key()).collect();
    let drift = baseline.drift(keys.iter().map(String::as_str));

    if drift.is_clean() {
        println!(
            "lint-hot: clean — {} files, {} functions, {} reachable from {} hot roots; {} \
             baselined finding(s), 0 new (report: {REPORT_PATH})",
            nfiles,
            graph.functions.len(),
            nreach,
            roots_cfg.len(),
            baseline.keys.len()
        );
        return;
    }

    if !drift.new.is_empty() {
        eprintln!(
            "lint-hot: {} NEW hot-path purity violation(s) (not in {BASELINE_PATH}):",
            drift.new.len()
        );
        for f in &findings {
            if drift.new.contains(&f.key()) {
                eprintln!("\n  {}:{}: [{}] {} in {}", f.file, f.line, f.rule, f.detail, f.function);
                eprintln!("    via: {}", f.chain.join(" -> "));
            }
        }
        eprintln!(
            "\n  Fix the violation, add a justification marker (// ALLOC: / // LOCK: / \
             // BOUNDS: / // IO: / // TRACE: / // HOT:), or — as a last resort — \
             grandfather it:\n    cargo run -q -p dagfact-lint --bin lint-hot -- --update-baseline"
        );
    }
    if !drift.stale.is_empty() {
        eprintln!(
            "\nlint-hot: {} baseline key(s) no longer fire — debt was burned down. Record the \
             win:",
            drift.stale.len()
        );
        for k in &drift.stale {
            eprintln!("  - {k}");
        }
        eprintln!(
            "  Re-baseline:\n    cargo run -q -p dagfact-lint --bin lint-hot -- --update-baseline"
        );
    }
    std::process::exit(1);
}
