# Convenience targets. The canonical gate is `make check-robust`.

.PHONY: build test check-robust clippy

build:
	cargo build --release

test:
	cargo test -q --workspace

# Full robustness gate: the whole test suite plus the fault-injection and
# recovery suites with backtraces on, then a warning-free clippy pass.
check-robust:
	RUST_BACKTRACE=1 cargo test -q --workspace
	RUST_BACKTRACE=1 cargo test -q -p dagfact-rt --test fault_injection
	RUST_BACKTRACE=1 cargo test -q -p dagfact-core --test fault_recovery
	cargo clippy --workspace --all-targets -- -D warnings

clippy:
	cargo clippy --workspace --all-targets -- -D warnings
