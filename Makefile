# Convenience targets. The canonical gate is `make check`.

.PHONY: build test bench check check-kernels check-robust check-analysis check-memory check-trace check-concurrency check-serve check-dist check-loom check-miri check-tsan lint-safety lint-hot lint-sync lint-strict clippy

build:
	cargo build --release

test:
	cargo test -q --workspace

# Regenerate every results/ artifact (tables, figures, sweeps).
bench:
	cargo run -q --release -p dagfact-bench --bin table1
	cargo run -q --release -p dagfact-bench --bin fig2
	cargo run -q --release -p dagfact-bench --bin fig3
	cargo run -q --release -p dagfact-bench --bin fig4
	cargo run -q --release -p dagfact-bench --bin ablation
	cargo run -q --release -p dagfact-bench --bin memsweep
	cargo run -q --release -p dagfact-bench --bin tracesweep
	cargo run -q --release -p dagfact-bench --bin servesweep
	cargo run -q --release -p dagfact-bench --bin comm
	cargo run -q --release -p dagfact-bench --bin distsweep
	cargo run -q --release -p dagfact-bench --bin kernels_bench

# The full gate: kernels + robustness + static-analysis + memory-budget +
# observability + concurrency-verification + serving + distributed
# suites.
check: check-kernels check-robust check-analysis check-memory check-trace check-concurrency check-serve check-dist

# Kernel gate (DESIGN.md §15): the kernels unit suite, the differential
# SIMD-vs-portable fuzz suite, a forced-scalar build+test leg
# (--no-default-features proves the portable tier stands alone), and the
# release-mode kernel study with its >=1.5x SIMD speedup gate (skipped
# loudly on hosts without AVX2).
check-kernels:
	RUST_BACKTRACE=1 cargo test -q -p dagfact-kernels --lib
	RUST_BACKTRACE=1 cargo test -q -p dagfact-kernels --test simd_fuzz
	RUST_BACKTRACE=1 cargo test -q -p dagfact-kernels --no-default-features
	cargo run -q --release -p dagfact-bench --bin kernels_bench

# Full robustness gate: the whole test suite plus the fault-injection and
# recovery suites with backtraces on, then a warning-free clippy pass.
check-robust:
	RUST_BACKTRACE=1 cargo test -q --workspace
	RUST_BACKTRACE=1 cargo test -q -p dagfact-rt --test fault_injection
	RUST_BACKTRACE=1 cargo test -q -p dagfact-core --test fault_recovery
	cargo clippy --workspace --all-targets -- -D warnings

# Static-analysis gate: the unwrap lint, the graph-verifier suites, the
# 9-proxies x 3-factos x 3-engines sweep (release: the graphs are large),
# and a warning-free clippy pass.
check-analysis: lint-strict
	RUST_BACKTRACE=1 cargo test -q -p dagfact-rt verify
	RUST_BACKTRACE=1 cargo test -q -p dagfact-core --test verify_graph
	cargo run -q --release -p dagfact-bench --bin verify_sweep
	cargo clippy --workspace --all-targets -- -D warnings

# Memory-budget gate: the ledger unit suite, the budgeted-execution and
# reader-fuzz integration suites, and the release-mode cap sweep (50% of
# peak must complete through the degradation ladder at full accuracy).
check-memory:
	RUST_BACKTRACE=1 cargo test -q -p dagfact-rt budget
	RUST_BACKTRACE=1 cargo test -q -p dagfact-core --test memory_budget
	RUST_BACKTRACE=1 cargo test -q -p dagfact-sparse --test reader_fuzz
	cargo run -q --release -p dagfact-bench --bin memsweep

# Observability gate: the recorder/analyzer unit suite, the engine-level
# span-invariant suite, the Chrome-trace exporter tests, the CLI
# --trace/--metrics tests, and the release-mode trace sweep (3 proxies x
# 3 engines + the tracing-overhead guard).
check-trace:
	RUST_BACKTRACE=1 cargo test -q -p dagfact-rt trace
	RUST_BACKTRACE=1 cargo test -q -p dagfact-rt --test trace_spans
	RUST_BACKTRACE=1 cargo test -q -p dagfact-bench --lib
	RUST_BACKTRACE=1 cargo test -q -p dagfact-cli trace
	cargo run -q --release -p dagfact-bench --bin tracesweep

# Serving gate (DESIGN.md §12): the serve crate's unit suites, the
# job-spec mutation fuzzer, the fault-injected concurrent soak (random
# panics/alloc faults/deadlines — no contamination, typed rejections),
# the CLI serve-mode tests, and the release-mode cache-latency sweep
# (factor hits must be ≥5x faster than cold).
check-serve:
	RUST_BACKTRACE=1 cargo test -q -p dagfact-serve
	RUST_BACKTRACE=1 cargo test -q -p dagfact-serve --test jobspec_fuzz
	RUST_BACKTRACE=1 cargo test -q -p dagfact-serve --test service_soak
	RUST_BACKTRACE=1 cargo test -q -p dagfact-cli serve
	cargo run -q --release -p dagfact-bench --bin servesweep

# Distributed-execution gate (DESIGN.md §14): the dist engine's unit
# and integration suites (chaos sweep, traffic cross-check, recovery
# edge cases), the CLI dist-mode tests, and the release-mode cluster
# sweep (strong scaling + recovery overhead; wrong answers fail). The
# retransmit/ack loom model rides in check-loom.
check-dist:
	RUST_BACKTRACE=1 cargo test -q -p dagfact-core dist
	RUST_BACKTRACE=1 cargo test -q -p dagfact-core --test dist_exec
	RUST_BACKTRACE=1 cargo test -q -p dagfact-cli dist
	cargo run -q --release -p dagfact-bench --bin distsweep

# Concurrency-verification gate (DESIGN.md §11): exhaustive loom models
# of the six runtime protocols, then the best-effort real-execution
# checkers (Miri, TSan — each skips with a warning when its nightly
# component is unavailable).
check-concurrency: check-loom check-miri check-tsan

# Model-check the six runtime sync protocols (+ their negative "teeth"
# twins) under the in-repo loom-style explorer. The dedicated target dir
# keeps --cfg loom artifacts from churning the normal build cache.
check-loom:
	RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
	    cargo test -q -p dagfact-rt --release --test loom_models

# Curated unsafe-bearing suites under Miri (skips if miri is missing).
check-miri:
	tools/check-miri.sh

# Concurrency suites under ThreadSanitizer (skips without nightly +
# rust-src: a sound TSan run needs an instrumented std via -Zbuild-std).
check-tsan:
	tools/check-tsan.sh

# The SAFETY-contract / ORDERING-justification / sync-shim /
# no-unwrap lint.
lint-safety:
	cargo run -q -p dagfact-lint --bin lint-safety

# Hot-path purity analyzer (DESIGN.md §13): call-graph reachability from
# the roots in lint-hotpaths.toml, checked for allocation-, lock-,
# panic-, I/O- and trace-freedom against tools/lint-hot-baseline.json.
# New findings fail; removing baseline entries is the burn-down.
lint-hot:
	cargo run -q -p dagfact-lint --bin lint-hot

# Lock-discipline & atomics-protocol analyzer (DESIGN.md §16): lock-order
# graph with cycle witnesses, held-across-blocking rule, atomics pairing
# pass. Exact-drift baseline in tools/lint-sync-baseline.json — new
# findings fail, and so do stale keys (record the win).
lint-sync:
	cargo run -q -p dagfact-lint --bin lint-sync

# Static gates: no .unwrap() in rt/core library code (tests exempt),
# 100% SAFETY/ORDERING coverage with no shim bypasses, no new hot-path
# purity findings, and a clean synchronization-discipline pass.
lint-strict: lint-safety lint-hot lint-sync

clippy:
	cargo clippy --workspace --all-targets -- -D warnings
