//! # dagfact-suite
//!
//! Umbrella crate for the `dagfact` project: a Rust reproduction of
//! *"Taking advantage of hybrid systems for sparse direct solvers via
//! task-based runtimes"* (Lacoste, Faverge, Ramet, Thibault, Bosilca —
//! IPDPS Workshops 2014, arXiv:1405.2636).
//!
//! This crate simply re-exports the member crates so examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`sparse`] — sparse matrices, generators and Matrix Market I/O,
//! * [`order`] — fill-reducing orderings (nested dissection, RCM, …),
//! * [`symbolic`] — elimination tree, supernodes, block symbol structure,
//! * [`kernels`] — dense BLAS-like kernels and the sparse update kernels,
//! * [`rt`] — the three task-based runtimes (native, StarPU-like dataflow,
//!   PaRSEC-like parameterized task graph),
//! * [`gpusim`] — discrete-event simulator of hybrid CPU+GPU platforms,
//! * [`core`] — the supernodal solver tying everything together.
//!
//! See `examples/quickstart.rs` for a five-line tour.

pub use dagfact_core as core;
pub use dagfact_gpusim as gpusim;
pub use dagfact_kernels as kernels;
pub use dagfact_order as order;
pub use dagfact_rt as rt;
pub use dagfact_sparse as sparse;
pub use dagfact_symbolic as symbolic;
