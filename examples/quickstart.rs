//! Quickstart: factorize and solve a sparse SPD system in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dagfact_suite::core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_suite::sparse::gen::grid_laplacian_3d;
use dagfact_suite::symbolic::FactoKind;

fn main() {
    // 1. A sparse matrix: the 7-point Laplacian on a 20x20x20 grid.
    let a = grid_laplacian_3d(20, 20, 20);
    println!("matrix: {} unknowns, {} nonzeros", a.nrows(), a.nnz());

    // 2. Analyze once (ordering + symbolic factorization + task DAG).
    //    The result is value-independent and reusable across numeric
    //    factorizations.
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let stats = analysis.stats();
    println!(
        "analysis: nnz(L) = {} ({:.1}x fill), {:.2} GFlop, {} panels",
        stats.nnz_l,
        stats.nnz_l as f64 / (stats.nnz_a as f64 / 2.0),
        stats.flops_real / 1e9,
        stats.ncblk
    );

    // 3. Numeric factorization on the PaRSEC-like runtime.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t0 = std::time::Instant::now();
    let factors = analysis
        .factorize(&a, RuntimeKind::Ptg, threads)
        .expect("SPD matrix must factorize");
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "factorized in {:.3} s on {threads} threads ({:.2} GFlop/s)",
        dt,
        stats.flops_real / dt / 1e9
    );

    // 4. Solve A x = b and check the residual.
    let b = vec![1.0; a.nrows()];
    let x = factors.solve(&b);
    let mut ax = vec![0.0; a.nrows()];
    a.spmv(&x, &mut ax);
    let resid = ax
        .iter()
        .zip(&b)
        .map(|(l, r)| (l - r).abs())
        .fold(0.0f64, f64::max);
    println!("residual ‖Ax − b‖∞ = {resid:.3e}");
    assert!(resid < 1e-10);
}
