//! Steady-state heat conduction on a 3D block — the "many right-hand
//! sides against one factorization" workflow that makes direct solvers
//! attractive over iterative ones.
//!
//! A brick of material is held at 0° on its boundary; interior heat
//! sources are switched on one after the other, and each configuration
//! reuses the same Cholesky factors. The example also contrasts the
//! nested-dissection ordering against reverse Cuthill-McKee to show why
//! the analysis phase matters.
//!
//! ```text
//! cargo run --release --example heat_conduction
//! ```

use dagfact_suite::core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_suite::order::OrderingKind;
use dagfact_suite::sparse::gen::grid_laplacian_3d;
use dagfact_suite::symbolic::FactoKind;

const NX: usize = 24;

fn idx(x: usize, y: usize, z: usize) -> usize {
    (z * NX + y) * NX + x
}

fn main() {
    let a = grid_laplacian_3d(NX, NX, NX);
    let n = a.nrows();
    println!("heat conduction on a {NX}^3 brick ({n} unknowns)");

    // Ordering comparison: the elimination-tree shape decides both fill
    // and task parallelism (§III of the paper).
    for (label, ordering) in [
        ("nested dissection", OrderingKind::NestedDissection),
        ("reverse Cuthill-McKee", OrderingKind::ReverseCuthillMcKee),
    ] {
        let an = Analysis::new(
            a.pattern(),
            FactoKind::Cholesky,
            &SolverOptions {
                ordering,
                ..SolverOptions::default()
            },
        );
        let st = an.stats();
        println!(
            "  {label:<22} nnz(L) = {:>9}   flops = {:>7.2} GFlop",
            st.nnz_l,
            st.flops_real / 1e9
        );
    }

    // Factor once with the default (ND) analysis…
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    let factors = analysis.factorize(&a, RuntimeKind::Native, threads).unwrap();

    // …then sweep heat-source placements, one solve each.
    let sources = [
        ("center", idx(NX / 2, NX / 2, NX / 2)),
        ("corner region", idx(2, 2, 2)),
        ("face center", idx(NX / 2, NX / 2, 1)),
    ];
    println!("\nper-configuration solves (factorization reused):");
    for (label, s) in sources {
        let mut b = vec![0.0f64; n];
        b[s] = 100.0; // point source
        let t0 = std::time::Instant::now();
        let x = factors.solve(&b);
        let dt = t0.elapsed().as_secs_f64();
        let peak = x.iter().cloned().fold(0.0f64, f64::max);
        let hot = x.iter().filter(|&&t| t > peak * 0.5).count();
        println!(
            "  source at {label:<14} solve {dt:>8.4} s   peak T = {peak:>7.3}   hot cells (>50% peak): {hot}"
        );
    }

    // Physical sanity: temperature decays monotonically away from a
    // central source along an axis.
    let mut b = vec![0.0f64; n];
    b[idx(NX / 2, NX / 2, NX / 2)] = 100.0;
    let x = factors.solve(&b);
    let mut prev = f64::INFINITY;
    for d in 0..NX / 2 {
        let t = x[idx(NX / 2 + d, NX / 2, NX / 2)];
        assert!(t <= prev + 1e-9, "temperature must decay away from the source");
        prev = t;
    }
    println!("\ntemperature decays monotonically from the source ✓");
}
