//! Miniature of the paper's hybrid study: take one problem, analyze it
//! once, and *simulate* its factorization across schedulers, core counts
//! and GPU counts on the calibrated Mirage-node model — the same machinery
//! behind the `fig2`/`fig4` benchmark binaries, in example form.
//!
//! ```text
//! cargo run --release --example hybrid_study [grid_side]
//! ```

use dagfact_suite::core::{simulate_factorization, Analysis, SimOptions, SolverOptions};
use dagfact_suite::gpusim::{Platform, SimPolicy};
use dagfact_suite::sparse::gen::grid_laplacian_3d;
use dagfact_suite::symbolic::FactoKind;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let a = grid_laplacian_3d(side, side, side);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let st = analysis.stats();
    println!(
        "problem: {side}^3 Poisson, {} unknowns, {:.2} GFlop to factorize",
        st.n,
        st.flops_real / 1e9
    );
    let opts = SimOptions::default();

    println!("\nCPU scaling (simulated GFlop/s):");
    println!("{:>6} {:>10} {:>10} {:>10}", "cores", "PaStiX", "StarPU", "PaRSEC");
    for cores in [1usize, 3, 6, 9, 12] {
        let p = Platform::mirage(cores, 0);
        let g = |pol| simulate_factorization(&analysis, &opts, &p, pol).gflops();
        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2}",
            cores,
            g(SimPolicy::NativeStatic),
            g(SimPolicy::StarPuLike),
            g(SimPolicy::ParsecLike { streams: 1 })
        );
    }

    println!("\nadding GPUs (12 cores, simulated GFlop/s):");
    println!("{:>6} {:>10} {:>12} {:>12}", "gpus", "StarPU", "PaRSEC(1s)", "PaRSEC(3s)");
    let mut best_cpu = 0.0f64;
    let mut best_hybrid = 0.0f64;
    for gpus in 0..=3usize {
        let p = Platform::mirage(12, gpus);
        let r1 = simulate_factorization(&analysis, &opts, &p, SimPolicy::StarPuLike);
        let r2 = simulate_factorization(&analysis, &opts, &p, SimPolicy::ParsecLike { streams: 1 });
        let r3 = simulate_factorization(&analysis, &opts, &p, SimPolicy::ParsecLike { streams: 3 });
        println!(
            "{:>6} {:>10.2} {:>12.2} {:>12.2}   ({} tasks offloaded, {:.0} MB moved)",
            gpus,
            r1.gflops(),
            r2.gflops(),
            r3.gflops(),
            r3.tasks_on_gpu,
            (r3.bytes_h2d + r3.bytes_d2h) / 1e6
        );
        let best = r1.gflops().max(r2.gflops()).max(r3.gflops());
        if gpus == 0 {
            best_cpu = best;
        }
        best_hybrid = best_hybrid.max(best);
    }
    println!(
        "\nbest hybrid speedup over 12 CPU cores: x{:.2}",
        best_hybrid / best_cpu
    );
    println!("(the paper's Figure 4 shows the same study on the real Mirage node)");
}
