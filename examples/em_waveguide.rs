//! Time-harmonic electromagnetic wave propagation with absorbing (PML)
//! boundaries: a **complex symmetric** system solved with LDLᵀ — the same
//! problem family as the paper's `pmlDF` and `FilterV2` matrices.
//!
//! The Helmholtz operator `−Δ − (k² + iσ)` is not Hermitian and not
//! positive definite: Cholesky is unusable and iterative methods struggle,
//! which is precisely where a static-pivoting LDLᵀ with iterative
//! refinement shines.
//!
//! ```text
//! cargo run --release --example em_waveguide
//! ```

use dagfact_suite::core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_suite::kernels::{Scalar, C64};
use dagfact_suite::sparse::gen::helmholtz_3d;
use dagfact_suite::symbolic::FactoKind;

fn main() {
    // Waveguide-shaped domain, k² = 2, absorption σ = 0.8.
    let (nx, ny, nz) = (30usize, 12usize, 12usize);
    let a = helmholtz_3d(nx, ny, nz, 2.0, 0.8);
    let n = a.nrows();
    println!("Helmholtz waveguide: {n} unknowns, complex symmetric (Z LDLt)");
    assert!(a.is_symmetric());

    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let st = analysis.stats();
    println!(
        "analysis: nnz(L) = {}, {:.2} GFlop in Z arithmetic",
        st.nnz_l,
        st.flops_complex / 1e9
    );

    let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    let factors = analysis
        .factorize(&a, RuntimeKind::Dataflow, threads)
        .expect("static pivoting handles the indefinite diagonal");
    println!("pivots repaired by static pivoting: {}", factors.pivots_repaired);

    // Excitation: a dipole source at the waveguide entrance.
    let mut b = vec![C64::new(0.0, 0.0); n];
    let src = (nz / 2 * ny + ny / 2) * nx + 1;
    b[src] = C64::new(1.0, 0.0);

    // Solve with iterative refinement and report the backward error.
    let refined = factors.solve_refined(&a, &b, 4, 1e-14);
    println!(
        "refinement: {} correction(s), backward error {:.3e} -> {:.3e}",
        refined.iterations,
        refined.residuals.first().unwrap(),
        refined.residuals.last().unwrap()
    );

    // Field amplitude decays along the guide thanks to the iσ absorber.
    let amp = |x: usize| -> f64 {
        let i = (nz / 2 * ny + ny / 2) * nx + x;
        refined.x[i].modulus()
    };
    println!("\n|E| along the guide axis:");
    for x in (1..nx).step_by(4) {
        let bar = "#".repeat((amp(x) / amp(1) * 40.0).round() as usize);
        println!("  x={x:>3}  {:10.3e}  {bar}", amp(x));
    }
    assert!(
        amp(nx - 2) < amp(1),
        "absorbing layers must damp the outgoing wave"
    );
    println!("\nwave damped by the absorbing boundary ✓");
}
