//! Integration tests of the platform simulator against solver-generated
//! DAGs: determinism, conservation laws and performance-model sanity that
//! the paper's figures depend on.

use dagfact_suite::core::{build_sim_dag, simulate_factorization, Analysis, SimOptions, SolverOptions};
use dagfact_suite::gpusim::{simulate, Platform, SimPolicy};
use dagfact_suite::sparse::gen::grid_laplacian_3d;
use dagfact_suite::symbolic::FactoKind;

fn analysis(side: usize) -> Analysis {
    let a = grid_laplacian_3d(side, side, side);
    Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default())
}

fn all_policies() -> Vec<SimPolicy> {
    vec![
        SimPolicy::NativeStatic,
        SimPolicy::StarPuLike,
        SimPolicy::ParsecLike { streams: 1 },
        SimPolicy::ParsecLike { streams: 3 },
    ]
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let an = analysis(14);
    let opts = SimOptions::default();
    for policy in all_policies() {
        let p = Platform::mirage(8, 2);
        let a = simulate_factorization(&an, &opts, &p, policy);
        let b = simulate_factorization(&an, &opts, &p, policy);
        assert_eq!(a.makespan, b.makespan, "{policy:?}");
        assert_eq!(a.tasks_on_gpu, b.tasks_on_gpu);
        assert_eq!(a.bytes_h2d, b.bytes_h2d);
    }
}

#[test]
fn every_task_is_executed_exactly_once() {
    let an = analysis(12);
    let opts = SimOptions::default();
    for policy in all_policies() {
        let p = Platform::mirage(6, 1);
        let dag = build_sim_dag(&an, &opts, &p, policy);
        let r = simulate(&dag, &p, policy);
        assert_eq!(
            r.tasks_on_cpu + r.tasks_on_gpu,
            dag.tasks.len(),
            "{policy:?} lost tasks"
        );
    }
}

#[test]
fn makespan_bounded_by_serial_time_and_critical_path() {
    let an = analysis(14);
    let opts = SimOptions::default();
    let p1 = Platform::mirage(1, 0);
    let p12 = Platform::mirage(12, 0);
    for policy in all_policies() {
        let serial = simulate_factorization(&an, &opts, &p1, policy);
        let parallel = simulate_factorization(&an, &opts, &p12, policy);
        // Parallel never slower than serial (same policy), never more than
        // 12x faster.
        assert!(parallel.makespan <= serial.makespan * 1.001, "{policy:?}");
        assert!(
            parallel.makespan * 12.5 >= serial.makespan,
            "{policy:?} superlinear"
        );
    }
}

#[test]
fn busy_time_is_conserved_cpu_only() {
    // On a CPU-only platform, total busy time ≥ pure compute time (the
    // difference is scheduler overhead + cold reads) and the utilization
    // never exceeds 1.
    let an = analysis(14);
    let opts = SimOptions::default();
    let p = Platform::mirage(8, 0);
    for policy in all_policies() {
        let r = simulate_factorization(&an, &opts, &p, policy);
        assert!(r.cpu_utilization() <= 1.0 + 1e-9, "{policy:?}");
        let busy: f64 = r.cpu_busy.iter().sum();
        // Pure compute at the fastest possible rate bounds busy from below.
        let fastest = p.cpu.peak_gflops * p.cpu.max_efficiency * 1e9;
        assert!(
            busy >= r.total_flops / fastest * 0.99,
            "{policy:?}: busy {busy} too small"
        );
        // And busy time can never exceed workers × makespan.
        assert!(busy <= r.makespan * r.cpu_busy.len() as f64 * (1.0 + 1e-9));
    }
}

#[test]
fn gpu_transfers_only_happen_with_gpus() {
    let an = analysis(12);
    let opts = SimOptions::default();
    for policy in all_policies() {
        let r = simulate_factorization(&an, &opts, &Platform::mirage(8, 0), policy);
        assert_eq!(r.bytes_h2d, 0.0);
        assert_eq!(r.bytes_d2h, 0.0);
        assert_eq!(r.tasks_on_gpu, 0);
    }
}

#[test]
fn offloaded_work_transfers_data_both_ways() {
    let an = analysis(16);
    let opts = SimOptions::default();
    let r = simulate_factorization(
        &an,
        &opts,
        &Platform::mirage(12, 2),
        SimPolicy::ParsecLike { streams: 3 },
    );
    assert!(r.tasks_on_gpu > 0);
    assert!(r.bytes_h2d > 0.0);
    // Written panels must come home for the solve phase.
    assert!(r.bytes_d2h > 0.0);
}

#[test]
fn complex_arithmetic_quadruples_flops_but_not_speed() {
    let a = grid_laplacian_3d(14, 14, 14);
    let an = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
    let p = Platform::mirage(12, 0);
    let d = simulate_factorization(&an, &SimOptions { complex: false, ..SimOptions::default() }, &p, SimPolicy::NativeStatic);
    let z = simulate_factorization(&an, &SimOptions { complex: true, ..SimOptions::default() }, &p, SimPolicy::NativeStatic);
    // Z flops = 4x D flops on the same structure.
    assert!((z.total_flops / d.total_flops - 4.0).abs() < 0.01);
    // Takes correspondingly longer in wall-clock.
    assert!(z.makespan > 2.0 * d.makespan);
}
