//! Cross-crate integration tests: the full pipeline from generator to
//! refined solution, spanning every member crate of the workspace.

use dagfact_suite::core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_suite::kernels::{Scalar, C64};
use dagfact_suite::order::OrderingKind;
use dagfact_suite::sparse::gen;
use dagfact_suite::sparse::mm::{read_matrix_market, write_matrix_market};
use dagfact_suite::sparse::CscMatrix;
use dagfact_suite::symbolic::FactoKind;

fn residual_inf<T: Scalar>(a: &CscMatrix<T>, x: &[T], b: &[T]) -> f64 {
    let mut ax = vec![T::zero(); b.len()];
    a.spmv(x, &mut ax);
    ax.iter()
        .zip(b)
        .map(|(&l, &r)| (l - r).modulus())
        .fold(0.0, f64::max)
        / b.iter().map(|v| v.modulus()).fold(0.0f64, f64::max).max(1e-300)
}

#[test]
fn full_pipeline_every_runtime_and_ordering() {
    let a = gen::grid_laplacian_3d(9, 9, 9);
    let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect();
    for ordering in [
        OrderingKind::NestedDissection,
        OrderingKind::MinimumDegree,
        OrderingKind::ReverseCuthillMcKee,
        OrderingKind::Natural,
    ] {
        let analysis = Analysis::new(
            a.pattern(),
            FactoKind::Cholesky,
            &SolverOptions {
                ordering,
                ..SolverOptions::default()
            },
        );
        for rt in RuntimeKind::ALL {
            let f = analysis.factorize(&a, rt, 2).unwrap();
            let x = f.solve(&b);
            assert!(
                residual_inf(&a, &x, &b) < 1e-10,
                "{ordering:?} + {rt:?} failed"
            );
        }
    }
}

#[test]
fn matrix_market_roundtrip_then_factorize() {
    let a = gen::convection_diffusion_3d(5, 5, 4, 0.35);
    let mut buf = Vec::new();
    write_matrix_market(&a, &mut buf).unwrap();
    let a2: CscMatrix<f64> = read_matrix_market(&buf[..]).unwrap();
    assert_eq!(a, a2);
    let analysis = Analysis::new(a2.pattern(), FactoKind::Lu, &SolverOptions::default());
    let b = vec![1.0; a2.nrows()];
    let x = analysis
        .factorize(&a2, RuntimeKind::Ptg, 2)
        .unwrap()
        .solve(&b);
    assert!(residual_inf(&a2, &x, &b) < 1e-9);
}

#[test]
fn complex_pipeline_with_refinement() {
    let a = gen::helmholtz_3d(7, 6, 5, 1.5, 0.6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Native, 2).unwrap();
    let b: Vec<C64> = (0..a.nrows())
        .map(|i| C64::new((i % 5) as f64, -((i % 3) as f64)))
        .collect();
    let refined = f.solve_refined(&a, &b, 3, 1e-13);
    assert!(*refined.residuals.last().unwrap() < 1e-12);
}

#[test]
fn reanalysis_not_needed_for_new_values() {
    // Same pattern, different values: the analysis is reusable (static
    // pivoting ⇒ structure-only DAG).
    let a1 = gen::convection_diffusion_3d(5, 5, 5, 0.2);
    let a2 = gen::convection_diffusion_3d(5, 5, 5, 0.45);
    assert_eq!(a1.pattern(), a2.pattern());
    let analysis = Analysis::new(a1.pattern(), FactoKind::Lu, &SolverOptions::default());
    let b = vec![1.0; a1.nrows()];
    for a in [&a1, &a2] {
        let x = analysis
            .factorize(a, RuntimeKind::Dataflow, 2)
            .unwrap()
            .solve(&b);
        assert!(residual_inf(a, &x, &b) < 1e-9);
    }
}

#[test]
fn multithreaded_runs_match_single_thread() {
    let a = gen::random_spd(300, 5, 17);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let b: Vec<f64> = (0..300).map(|i| 1.0 + (i as f64).sin()).collect();
    let x1 = analysis
        .factorize(&a, RuntimeKind::Ptg, 1)
        .unwrap()
        .solve(&b);
    for threads in [2usize, 4, 8] {
        let xt = analysis
            .factorize(&a, RuntimeKind::Ptg, threads)
            .unwrap()
            .solve(&b);
        for (u, v) in x1.iter().zip(&xt) {
            // The per-target update chains force one deterministic
            // accumulation order per panel, so results match to roundoff
            // regardless of thread count.
            assert!((u - v).abs() < 1e-11, "thread count changed the result");
        }
    }
}
