//! Workspace-level property tests: random problems through the whole
//! stack, plus structural invariants that must hold for *any* input.

use dagfact_suite::core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_suite::order::{compute_ordering, OrderingKind};
use dagfact_suite::sparse::gen::random_spd;
use dagfact_suite::sparse::SparsityPattern;
use dagfact_suite::symbolic::counts::column_counts;
use dagfact_suite::symbolic::etree::{elimination_tree, is_topological, postorder, relabel_parent};
use dagfact_suite::symbolic::FactoKind;
use proptest::prelude::*;

/// Random sparse symmetric pattern with a full diagonal.
fn arb_sym_pattern(max_n: usize) -> impl Strategy<Value = SparsityPattern> {
    (2usize..max_n, 1usize..5, any::<u64>()).prop_map(|(n, per_col, seed)| {
        let mut s = seed | 1;
        let mut entries = Vec::new();
        for j in 0..n {
            entries.push((j, j));
            for _ in 0..per_col {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let i = (s as usize) % n;
                entries.push((i, j));
                entries.push((j, i));
            }
        }
        SparsityPattern::from_entries(n, n, entries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_spd_factorizes_and_solves(
        n in 20usize..160,
        per_col in 2usize..6,
        seed in 0u64..10_000,
        rt_pick in 0usize..3,
    ) {
        let a = random_spd(n, per_col, seed);
        let rt = RuntimeKind::ALL[rt_pick];
        let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let f = analysis.factorize(&a, rt, 2).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 13) as f64 - 6.0).collect();
        let x = f.solve(&b);
        let mut ax = vec![0.0; n];
        a.spmv(&x, &mut ax);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8, "{rt:?}");
        }
    }

    #[test]
    fn analysis_invariants_on_random_patterns(p in arb_sym_pattern(120)) {
        let analysis = Analysis::new(&p, FactoKind::Cholesky, &SolverOptions::default());
        // Panels tile the columns exactly.
        analysis.symbol.validate().unwrap();
        // nnz(L) is at least nnz(lower triangle of the symmetrized A).
        let sym = p.symmetrize();
        let lower = (sym.nnz() - sym.ncols()) / 2 + sym.ncols();
        prop_assert!(analysis.symbol.nnz_factor() >= lower);
        // Factor flops positive for any nonempty pattern.
        prop_assert!(analysis.stats().flops_real > 0.0);
    }

    #[test]
    fn etree_pipeline_invariants(p in arb_sym_pattern(140)) {
        let sym = p.symmetrize();
        let perm = compute_ordering(&sym, OrderingKind::NestedDissection);
        let permuted = sym.permute_symmetric(perm.perm());
        let parent = elimination_tree(&permuted);
        let post = postorder(&parent);
        let relabeled = relabel_parent(&parent, &post);
        prop_assert!(is_topological(&relabeled));
        // Column counts are at least 1 and sum to at least n.
        let mut scatter = vec![0usize; post.len()];
        for (new, &old) in post.iter().enumerate() {
            scatter[old] = new;
        }
        let reperm = permuted.permute_symmetric(&scatter);
        let (cc, nnzl) = column_counts(&reperm, &relabeled);
        prop_assert!(cc.iter().all(|&c| c >= 1));
        prop_assert_eq!(nnzl, cc.iter().sum::<usize>());
        prop_assert!(nnzl >= reperm.ncols());
    }

    #[test]
    fn orderings_are_bijections(p in arb_sym_pattern(100), kind_pick in 0usize..3) {
        let kind = [
            OrderingKind::NestedDissection,
            OrderingKind::MinimumDegree,
            OrderingKind::ReverseCuthillMcKee,
        ][kind_pick];
        let sym = p.symmetrize();
        let perm = compute_ordering(&sym, kind);
        // Permutation::from_* validates bijectivity internally; round-trip
        // a vector as a behavioural check.
        let v: Vec<usize> = (0..perm.len()).collect();
        let w = perm.apply_vec(&v);
        let back = perm.apply_inverse_vec(&w);
        prop_assert_eq!(back, v);
    }
}
