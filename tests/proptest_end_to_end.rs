//! Workspace-level property-style tests: random problems through the
//! whole stack, plus structural invariants that must hold for *any*
//! input. Cases come from a deterministic seeded sweep so failures
//! reproduce exactly.

use dagfact_suite::core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_suite::order::{compute_ordering, OrderingKind};
use dagfact_suite::sparse::gen::random_spd;
use dagfact_suite::sparse::SparsityPattern;
use dagfact_suite::symbolic::counts::column_counts;
use dagfact_suite::symbolic::etree::{elimination_tree, is_topological, postorder, relabel_parent};
use dagfact_suite::symbolic::FactoKind;

/// Deterministic parameter source (SplitMix64).
struct Params {
    state: u64,
}

impl Params {
    fn new(case: u64) -> Params {
        Params {
            state: 0xE2E_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Random sparse symmetric pattern with a full diagonal.
fn sym_pattern(p: &mut Params, max_n: usize) -> SparsityPattern {
    let n = p.range(2, max_n);
    let per_col = p.range(1, 5);
    let seed = p.next_u64();
    let mut s = seed | 1;
    let mut entries = Vec::new();
    for j in 0..n {
        entries.push((j, j));
        for _ in 0..per_col {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let i = (s as usize) % n;
            entries.push((i, j));
            entries.push((j, i));
        }
    }
    SparsityPattern::from_entries(n, n, entries)
}

const CASES: u64 = 24;

#[test]
fn random_spd_factorizes_and_solves() {
    for case in 0..CASES {
        let mut p = Params::new(case);
        let n = p.range(20, 160);
        let per_col = p.range(2, 6);
        let seed = p.next_u64() % 10_000;
        let rt = RuntimeKind::ALL[p.range(0, 3)];
        let a = random_spd(n, per_col, seed);
        let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let f = analysis.factorize(&a, rt, 2).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 13) as f64 - 6.0).collect();
        let x = f.solve(&b);
        let mut ax = vec![0.0; n];
        a.spmv(&x, &mut ax);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-8, "case {case}: {rt:?}");
        }
    }
}

#[test]
fn analysis_invariants_on_random_patterns() {
    for case in 0..CASES {
        let mut params = Params::new(1000 + case);
        let p = sym_pattern(&mut params, 120);
        let analysis = Analysis::new(&p, FactoKind::Cholesky, &SolverOptions::default());
        // Panels tile the columns exactly.
        analysis.symbol.validate().unwrap();
        // nnz(L) is at least nnz(lower triangle of the symmetrized A).
        let sym = p.symmetrize();
        let lower = (sym.nnz() - sym.ncols()) / 2 + sym.ncols();
        assert!(analysis.symbol.nnz_factor() >= lower, "case {case}");
        // Factor flops positive for any nonempty pattern.
        assert!(analysis.stats().flops_real > 0.0, "case {case}");
    }
}

#[test]
fn etree_pipeline_invariants() {
    for case in 0..CASES {
        let mut params = Params::new(2000 + case);
        let p = sym_pattern(&mut params, 140);
        let sym = p.symmetrize();
        let perm = compute_ordering(&sym, OrderingKind::NestedDissection);
        let permuted = sym.permute_symmetric(perm.perm());
        let parent = elimination_tree(&permuted);
        let post = postorder(&parent);
        let relabeled = relabel_parent(&parent, &post);
        assert!(is_topological(&relabeled), "case {case}");
        // Column counts are at least 1 and sum to at least n.
        let mut scatter = vec![0usize; post.len()];
        for (new, &old) in post.iter().enumerate() {
            scatter[old] = new;
        }
        let reperm = permuted.permute_symmetric(&scatter);
        let (cc, nnzl) = column_counts(&reperm, &relabeled);
        assert!(cc.iter().all(|&c| c >= 1), "case {case}");
        assert_eq!(nnzl, cc.iter().sum::<usize>(), "case {case}");
        assert!(nnzl >= reperm.ncols(), "case {case}");
    }
}

#[test]
fn orderings_are_bijections() {
    for case in 0..CASES {
        let mut params = Params::new(3000 + case);
        let p = sym_pattern(&mut params, 100);
        let kind = [
            OrderingKind::NestedDissection,
            OrderingKind::MinimumDegree,
            OrderingKind::ReverseCuthillMcKee,
        ][params.range(0, 3)];
        let sym = p.symmetrize();
        let perm = compute_ordering(&sym, kind);
        // Permutation::from_* validates bijectivity internally; round-trip
        // a vector as a behavioural check.
        let v: Vec<usize> = (0..perm.len()).collect();
        let w = perm.apply_vec(&v);
        let back = perm.apply_inverse_vec(&w);
        assert_eq!(back, v, "case {case}");
    }
}
