#!/bin/sh
# Forbid `.unwrap()` in runtime/solver *library* code.
#
# An unwrap in an engine or the numeric phase takes the whole worker pool
# down with a poisoned-lock cascade instead of surfacing a structured
# EngineError/SolverError through the fault-tolerant layer. Tests are
# exempt (#[cfg(test)] / #[cfg(all(test, ...))] mod blocks are stripped),
# as are comment and doc lines, and so is rt/src/model/ — the loom-style
# checker backing rt::sync cannot route through the shim it implements,
# and there a poisoned internal lock means a model thread panicked, which
# must abort exploration (the panic IS the counterexample).
#
# Usage: tools/lint-unwrap.sh [dir ...]   (default: crates/rt/src crates/core/src)
# Exits 1 listing file:line of every offender.

set -eu
cd "$(dirname "$0")/.."
dirs="${*:-crates/rt/src crates/core/src}"

# shellcheck disable=SC2086
offenders=$(find $dirs -name '*.rs' -not -path '*/rt/src/model/*' -print | sort | xargs awk '
    function braces(s,  n) {
        # net brace depth change of a line, ignoring braces in line comments
        sub(/\/\/.*$/, "", s)
        n = gsub(/{/, "", s) - gsub(/}/, "", s)
        return n
    }
    FNR == 1 { intest = 0; pending = 0; depth = 0; opened = 0 }
    {
        line = $0
        stripped = line
        sub(/^[ \t]+/, "", stripped)
        if (intest) {
            depth += braces(line)
            if (depth > 0) opened = 1
            if (opened && depth <= 0) intest = 0
            next
        }
        if (stripped ~ /^#\[cfg\((all\()?test[,)]/) { pending = 1; next }
        if (pending) {
            pending = 0
            if (stripped ~ /^(pub +)?mod / && stripped !~ /;[ \t]*$/) {
                intest = 1; depth = braces(line); opened = (depth > 0)
                if (opened && depth <= 0) intest = 0
                next
            }
        }
        if (stripped ~ /^\/\//) next
        if (index(line, ".unwrap()") > 0) print FILENAME ":" FNR ": " stripped
    }
' || true)

if [ -n "$offenders" ]; then
    echo "lint-unwrap: .unwrap() is forbidden in library code (use expect with"
    echo "a message, a structured error, or the poison-transparent rt::sync locks):"
    echo "$offenders"
    exit 1
fi
echo "lint-unwrap: clean ($dirs)"
