#!/bin/sh
# Run the runtime's concurrency-heavy test suites under ThreadSanitizer
# (`-Zsanitizer=thread`), which checks *real* executions for data races —
# complementing the loom models (exhaustive but abstracted) and Miri
# (strict but mostly single-interleaving).
#
# TSan is only sound for Rust when std itself is instrumented
# (`-Zbuild-std`): the prebuilt std/libtest carry no TSan instrumentation,
# so their internal happens-before edges (futex-based mutexes, Arc
# refcounts, libtest's test-event channel) are invisible and produce
# FALSE data-race reports on the harness and on any std-sync-guarded
# data. Building an instrumented std needs a nightly toolchain plus the
# rust-src component; when either is missing (offline containers cannot
# `rustup component add rust-src`) the gate SKIPS with a visible warning
# instead of failing or — worse — papering over reports with
# unscopeable suppressions.
#
# Usage: tools/check-tsan.sh

set -eu
cd "$(dirname "$0")/.."

if ! cargo +nightly --version >/dev/null 2>&1; then
    echo "check-tsan: WARNING: nightly toolchain unavailable — SKIPPED." >&2
    echo "check-tsan: install with: rustup toolchain install nightly" >&2
    exit 0
fi

sysroot="$(rustc +nightly --print sysroot)"
if [ ! -d "$sysroot/lib/rustlib/src/rust/library" ]; then
    echo "check-tsan: WARNING: rust-src component unavailable — SKIPPED." >&2
    echo "check-tsan: TSan needs an instrumented std (-Zbuild-std); the" >&2
    echo "check-tsan: prebuilt std is uninstrumented and yields false" >&2
    echo "check-tsan: positives (e.g. in libtest's own event channel)." >&2
    echo "check-tsan: install with: rustup +nightly component add rust-src" >&2
    exit 0
fi

target="$(rustc -vV | sed -n 's/^host: //p')"

# A dedicated target dir keeps sanitized artifacts from invalidating the
# normal build cache. -Zbuild-std compiles std with the same sanitizer
# flags so every happens-before edge is visible to TSan.
export CARGO_TARGET_DIR=target/tsan
export RUSTFLAGS="-Zsanitizer=thread"
export TSAN_OPTIONS="halt_on_error=1"

echo "check-tsan: rt unit suite (engines, deque, budget, trace, shared)"
cargo +nightly test -q -Zbuild-std -p dagfact-rt --lib --target "$target"
echo "check-tsan: rt fault-injection suite"
cargo +nightly test -q -Zbuild-std -p dagfact-rt --test fault_injection --target "$target"
echo "check-tsan: rt trace-span suite"
cargo +nightly test -q -Zbuild-std -p dagfact-rt --test trace_spans --target "$target"
echo "check-tsan: clean"
