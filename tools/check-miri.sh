#!/bin/sh
# Run a curated set of unsafe-bearing test suites under Miri
# (`cargo +nightly miri test`), the strictest UB checker available for
# the SharedSlice / coeftab pointer code.
#
# Miri needs a nightly toolchain with the miri component. When either is
# missing (offline containers cannot `rustup component add miri`), the
# gate SKIPS with a visible warning instead of failing: the loom and TSan
# gates still cover the concurrency half, and Miri runs wherever the
# component exists (developer machines, CI with network).
#
# Usage: tools/check-miri.sh

set -eu
cd "$(dirname "$0")/.."

if ! command -v cargo >/dev/null 2>&1; then
    echo "check-miri: WARNING: cargo not found — SKIPPED" >&2
    exit 0
fi
if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "check-miri: WARNING: 'cargo +nightly miri' unavailable (no nightly" >&2
    echo "check-miri: toolchain or miri component not installed) — SKIPPED." >&2
    echo "check-miri: install with: rustup +nightly component add miri" >&2
    exit 0
fi

# Curated: the suites that exercise unsafe code, kept small because Miri
# is ~100x slower than native. Isolation stays on (no files, no clocks
# needed by these tests beyond what -Zmiri-disable-isolation would give).
echo "check-miri: rt shared-slice + sync suites"
MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo +nightly miri test -p dagfact-rt shared:: sync::
echo "check-miri: kernels potrf/gemm suites"
MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo +nightly miri test -p dagfact-kernels potrf gemm
echo "check-miri: core parallel-solve suite"
MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo +nightly miri test -p dagfact-core psolve
echo "check-miri: clean"
